#!/usr/bin/env python
"""Partitionable systems: per-partition consensus via k-set agreement.

The paper's introduction motivates k > 1 with *partitionable systems that
need to reach consensus in every partition*.  This example builds exactly
that scenario: a 12-process cluster splits into three partitions (e.g. two
inter-rack links go down); within each partition communication stays
reliable forever.

Two regimes are shown:

* **clean split** (no cross-partition traffic at all): every partition
  decides its own minimum proposal — textbook per-partition consensus;
* **flapping links** (transient cross-partition packets in early rounds):
  each partition still reaches *internal* consensus (Lemma 14: members of
  one root component share their estimate), but a value may have leaked in
  through a transient packet before the skeleton stabilized, so the
  partition's value need not originate inside it.  Globally the run is
  still a 3-set agreement — ``Psrcs(3)`` holds by the partition structure.

Run with::

    python examples/partitionable_system.py
"""

from repro import (
    GroupedSourceAdversary,
    Psrcs,
    RoundSimulator,
    SimulationConfig,
    check_agreement_properties,
    make_processes,
)
from repro.analysis.reporting import format_table
from repro.graphs.condensation import root_components

PARTITIONS = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
N = 12
K = len(PARTITIONS)


def run_regime(noise: float, title: str) -> None:
    adversary = GroupedSourceAdversary(
        N,
        num_groups=K,
        groups=PARTITIONS,
        topology="clique",
        noise=noise,
        seed=3,
    )
    assert Psrcs(K).check_adversary(adversary).holds

    values = [100 + i for i in range(N)]  # partition minima: 100, 104, 108
    run = RoundSimulator(
        make_processes(N, values), adversary, SimulationConfig(max_rounds=150)
    ).run()

    report = check_agreement_properties(run, K)
    assert report.all_hold, report.summary()
    roots = root_components(run.stable_skeleton())

    rows = []
    for i, members in enumerate(PARTITIONS):
        decisions = {run.decisions[p].value for p in members}
        # Lemma 14: one root component -> one internal consensus value.
        assert len(decisions) == 1, f"partition {i} split: {decisions}"
        value = decisions.pop()
        rows.append([f"partition {i}", sorted(members), min(
            values[p] for p in members), value, value == min(
            values[p] for p in members)])
    print(
        format_table(
            ["partition", "members", "own minimum", "consensus value",
             "value is local"],
            rows,
            title=title,
        )
    )
    print(
        f"  root components: {len(roots)} == #partitions; "
        f"global distinct values: {report.num_decision_values} <= k={K}\n"
    )


def main() -> None:
    run_regime(
        noise=0.0,
        title="Clean split — every partition decides its own minimum",
    )
    run_regime(
        noise=0.15,
        title="Flapping links — internal consensus still holds; early "
        "transient packets may import a foreign value",
    )


if __name__ == "__main__":
    main()
