#!/usr/bin/env python
"""Campaign walkthrough: a parallel, resumable Monte-Carlo fleet.

The paper's guarantees are statistical over adversary ensembles, so the
interesting experiments are *campaigns*: hundreds of seeded scenarios, run
in parallel, persisted, and resumable.  This example walks the engine end
to end:

1. declare a scenario grid (cartesian product + feasibility constraints),
2. run it as a campaign journaled to a JSONL store, fanned out over
   worker processes,
3. kill half the journal and re-run — only the missing scenarios execute,
4. write the canonical summary (byte-identical for any worker count) and
   aggregate Theorem-1-shaped statistics from the records.

Run with::

    python examples/campaign_sweep.py
"""

import json
import random
import tempfile
from pathlib import Path

from repro import Campaign, ScenarioGrid
from repro.analysis.reporting import format_table


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="campaign_sweep_"))
    journal = workdir / "journal.jsonl"
    summary = workdir / "summary.jsonl"

    # ------------------------------------------------------------------
    # 1. The grid DSL: axes are ScenarioSpec fields; `where` prunes the
    #    infeasible corners (k < n, and at most k groups so Psrcs(k)
    #    holds by construction).  240 scenarios from five declarative
    #    lines.
    # ------------------------------------------------------------------
    grid = ScenarioGrid(
        n=[6, 8, 10],
        k=[2, 3],
        num_groups=[1, 2, 3],
        seed=range(8),
        noise=[0.0, 0.2],
        where=[
            lambda s: s["k"] < s["n"],
            lambda s: s["num_groups"] <= s["k"],
        ],
    )
    specs = grid.expand()
    print(f"grid expands to {len(specs)} scenarios; "
          f"first id: {specs[0].scenario_id}")

    # ------------------------------------------------------------------
    # 2. Run it as a campaign.  Every scenario is a pure function of its
    #    spec, so --jobs only changes wall-clock time, never results.
    # ------------------------------------------------------------------
    campaign = Campaign(grid, store=journal, jobs=2)
    print()
    print(campaign.run().summary())

    # ------------------------------------------------------------------
    # 3. Resume-by-hash: drop half the journal, re-run, and watch the
    #    campaign execute exactly the missing half.
    # ------------------------------------------------------------------
    lines = journal.read_text().strip().split("\n")
    random.Random(0).shuffle(lines)
    journal.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    print()
    print(Campaign(grid, store=journal, jobs=2).run().summary())

    # ------------------------------------------------------------------
    # 4. The canonical summary is grid-ordered with canonical JSON keys
    #    — byte-identical no matter how many workers produced the
    #    journal.
    # ------------------------------------------------------------------
    campaign = Campaign(grid, store=journal)
    campaign.write_summary(summary)
    records = [json.loads(line) for line in summary.read_text().splitlines()]
    print(f"\nsummary: {len(records)} canonical records at {summary}")

    # Aggregate a Theorem 1 check straight off the records: decision-
    # value counts never exceed k, and every process decided, in every
    # scenario.
    groups: dict[tuple[int, int], list[dict]] = {}
    for record in records:
        key = (record["spec"]["n"], record["spec"]["k"])
        groups.setdefault(key, []).append(record)
    rows = []
    for (n, k), group in sorted(groups.items()):
        worst = max(r["metrics"]["distinct_decisions"] for r in group)
        decided = all(r["metrics"]["all_decided"] for r in group)
        rows.append([n, k, len(group), worst, worst <= k, decided])
    print()
    print(
        format_table(
            ["n", "k", "runs", "max_values", "within_k", "all_decided"],
            rows,
            title="Theorem 1 over the whole campaign (from the JSONL store)",
        )
    )


# Workers re-import __main__ under the spawn start method (macOS,
# Windows); without the guard each worker would relaunch the campaign.
if __name__ == "__main__":
    main()
