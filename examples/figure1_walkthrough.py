#!/usr/bin/env python
"""Walk through Figure 1 of the paper, panel by panel.

Reproduces the paper's worked example: a 6-process system satisfying
``Psrcs(3)`` whose stable skeleton has the root components ``{p1, p2}`` and
``{p3, p4, p5}``, and process p6's local approximation of the stable
skeleton over rounds 1–6 — including the round labels on the edges and the
purging of outdated information.

Also exports every panel as Graphviz DOT (stdout), so the actual drawings
can be regenerated with ``dot -Tpdf``.

Run with::

    python examples/figure1_walkthrough.py [--dot]
"""

import sys

from repro.experiments.figure1 import (
    FIGURE1_N,
    figure1_panels,
    figure1_run,
    render_figure1,
)
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs, two_sources_of
from repro.viz.dot import labeled_to_dot, to_dot


def main() -> None:
    print("=" * 64)
    print("Figure 1 — 'A system of 6 processes where Psrcs(3) holds'")
    print("=" * 64)
    print()
    print(render_figure1())

    run, processes = figure1_run()
    stable = run.stable_skeleton()

    print()
    print("Checks from the paper's text:")
    print(f"  Psrcs(3) holds: {Psrcs(3).check_skeleton(stable).holds}")
    roots = root_components(stable)
    print(f"  root components: {[sorted(f'p{q+1}' for q in c) for c in roots]}")

    # A concrete 2-source certificate for one (k+1)-set, as in def. (8):
    subset = {0, 2, 5, 3}  # p1, p3, p6, p4
    certs = two_sources_of(stable, subset)
    p, q, q2 = certs[0]
    print(
        f"  2-source witness for S={{p1,p3,p4,p6}}: "
        f"p{p+1} ∈ PT(p{q+1}) ∩ PT(p{q2+1})"
    )

    print()
    print("Algorithm 1 outcome (proposals 1..6):")
    for pid in range(FIGURE1_N):
        d = run.decisions[pid]
        print(f"  p{pid+1}: decided {d.value} in round {d.round_no}")
    print(f"  distinct values: {sorted(run.decision_values())} (<= k = 3)")

    if "--dot" in sys.argv[1:]:
        panels = figure1_panels()
        print()
        print("// ---- DOT export ----")
        print(to_dot(panels.skeleton_round2, graph_name="G_cap_2"))
        print(to_dot(panels.stable_skeleton, graph_name="G_cap_inf"))
        for r, g in sorted(panels.approximations.items()):
            print(labeled_to_dot(g, graph_name=f"G_{r}_p6"))


if __name__ == "__main__":
    main()
