#!/usr/bin/env python
"""Live skeleton monitoring: watch a system's agreement capability degrade.

Operators of a ``Psrcs(k)`` deployment care about one number: how many
distinct decisions can the system still produce?  Theorem 1 + Lemma 15 make
that observable: it is the number of root components of the current
skeleton, and the tightest enforceable ``Psrcs`` level is the independence
number of the conflict graph.  Both are monotone (the skeleton only loses
edges), so the dashboard number is safe to act on at any time.

This example replays a deteriorating network — a healthy 9-node cluster
whose inter-group links fail permanently in two waves — through
:class:`repro.skeleton.SkeletonMonitor` and prints the dashboard after each
round, then confirms the monitor's prediction against an actual Algorithm 1
run on the same schedule.

Run with::

    python examples/live_monitoring.py
"""

from repro.adversaries.static import ScheduleAdversary
from repro.analysis.reporting import format_table
from repro.core.algorithm import make_processes
from repro.graphs.generators import union_of_cliques
from repro.rounds.simulator import RoundSimulator, SimulationConfig
from repro.skeleton.monitor import SkeletonMonitor

N = 9
GROUPS = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]


def deteriorating_schedule():
    """Healthy mesh -> lose group-2 uplinks -> lose group-1 uplinks."""
    # Phase 3 (the floor): three isolated cliques.
    cliques = union_of_cliques(GROUPS).with_self_loops()
    # Phase 2: cliques + links from group 0 into group 1.
    phase2 = cliques.copy()
    for u in GROUPS[0]:
        for v in GROUPS[1]:
            phase2.add_edge(u, v)
    # Phase 1 (healthy): phase2 + links from group 0 into group 2.
    phase1 = phase2.copy()
    for u in GROUPS[0]:
        for v in GROUPS[2]:
            phase1.add_edge(u, v)
    schedule = [phase1] * 4 + [phase2] * 4
    return ScheduleAdversary(N, schedule, tail=cliques)


def main() -> None:
    adversary = deteriorating_schedule()

    monitor = SkeletonMonitor(N)
    rows = []
    for r in range(1, 15):
        report = monitor.observe_graph(adversary.graph(r))
        rows.append([
            r,
            report.skeleton_edges,
            len(report.edges_lost),
            report.max_decision_values,
            report.tightest_k,
            "!" if report.roots_changed else "",
        ])
    print(format_table(
        ["round", "skeleton edges", "edges lost", "max decision values",
         "tightest Psrcs k", "roots changed"],
        rows,
        title="Dashboard: agreement capability during two failure waves",
    ))

    final = monitor.current_report
    print(f"\nmonitor's final prediction: at most "
          f"{final.max_decision_values} decision values")

    # Confirm against an actual run on the same schedule.
    run = RoundSimulator(
        make_processes(N),
        deteriorating_schedule(),
        SimulationConfig(max_rounds=60),
    ).run()
    values = sorted(run.decision_values())
    print(f"Algorithm 1 on the same schedule: {len(values)} values {values}")
    assert len(values) <= final.max_decision_values


if __name__ == "__main__":
    main()
