#!/usr/bin/env python
"""From wire latencies to k-set agreement: the round model, realized.

The paper's round model abstracts a partially synchronous system (§I):
whether an edge appears in a round's communication graph is decided by
whether the message beat the round timeout.  This example runs that whole
stack explicitly:

1. a 9-node network whose *core* links (three groups, each with a source)
   are permanently fast, while all other links exceed the timeout with
   probability 0.6 per message;
2. a timeout-driven round synthesizer turns raw deliveries into
   communication-closed rounds;
3. the synthesized stable skeleton is exactly the fast core, so
   ``Psrcs(3)`` holds — by physics, not by fiat;
4. Algorithm 1 runs unchanged on top and reaches 3-set agreement.

Then the timeout is swept to show the three regimes: too small (everyone
isolated — n decision values), calibrated (k root components), and huge
(full synchrony — consensus).

Run with::

    python examples/async_realization.py
"""

from repro.analysis.properties import check_agreement_properties
from repro.analysis.reporting import format_table
from repro.experiments.sweeps import run_algorithm1
from repro.graphs.condensation import count_root_components
from repro.predicates.psrcs import Psrcs
from repro.transport.network import Network, PartiallySynchronousLatency
from repro.transport.round_layer import (
    RoundSynthesizer,
    SynthesizedAdversary,
    grouped_core_links,
)

GROUPS = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
N, K = 9, 3


def make_adversary(timeout: float, seed: int = 4) -> SynthesizedAdversary:
    model = PartiallySynchronousLatency(
        grouped_core_links(GROUPS),
        fast_min=0.1,
        fast_max=0.9,          # core messages always arrive within 0.9
        slow_prob=0.6,
        slow_min=5.0,          # slow messages take at least 5.0
        slow_max=50.0,
        seed=seed,
    )
    return SynthesizedAdversary(
        RoundSynthesizer(Network(N, model), timeout=timeout)
    )


def main() -> None:
    # -- calibrated timeout: the paper's setting -------------------------
    adversary = make_adversary(timeout=1.0)
    stable = adversary.declared_stable_graph()
    print("calibrated timeout = 1.0 (fast band 0.1-0.9, slow band 5-50):")
    print(f"  stable skeleton = the fast core ({stable.number_of_edges()} edges)")
    print(f"  Psrcs({K}) holds: {Psrcs(K).check_skeleton(stable).holds}")
    print(f"  root components: {count_root_components(stable)}")

    run = run_algorithm1(adversary, max_rounds=100)
    report = check_agreement_properties(run, K)
    assert report.all_hold, report.summary()
    print(f"  Algorithm 1: {report.num_decision_values} value(s) "
          f"{sorted(run.decision_values())}, all decided "
          f"by round {max(d.round_no for d in run.decisions.values())}")

    # -- the timeout sweep ------------------------------------------------
    rows = []
    for timeout in (0.05, 1.0, 60.0):
        if timeout < 0.9:
            # below the fast band even core messages miss the deadline;
            # measure the empirical skeleton directly.
            model = PartiallySynchronousLatency(
                grouped_core_links(GROUPS), seed=4
            )
            synth = RoundSynthesizer(Network(N, model), timeout=timeout)
            inter = synth.synthesize_round(1).with_self_loops()
            for r in range(2, 21):
                inter = inter.intersection(
                    synth.synthesize_round(r).with_self_loops()
                )
            rows.append([timeout, count_root_components(inter),
                         "isolated: each node its own root"])
            continue
        adv = make_adversary(timeout=timeout)
        run = run_algorithm1(adv, max_rounds=120)
        rows.append([
            timeout,
            count_root_components(run.stable_skeleton()),
            f"{len(run.decision_values())} decision value(s)",
        ])
    print()
    print(format_table(
        ["timeout", "root components", "outcome"],
        rows,
        title="Timeout regimes: isolation / Psrcs(3) / full synchrony",
    ))


if __name__ == "__main__":
    main()
