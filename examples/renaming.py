#!/usr/bin/env python
"""Name-space reduction (renaming) on top of k-set agreement.

The paper (§I) notes k-set agreement "is definitely relevant in practice,
e.g., for name-space reduction (renaming) and similar problems."  This
example implements that reduction:

* ``n = 10`` clients each hold a unique 64-bit-ish identifier and need to
  map themselves onto a small set of at most ``k = 3`` shared channels
  (think: lock tables, log shards, rendezvous points);
* every client proposes its own identifier to k-set agreement;
* by k-Agreement at most ``k`` identifiers survive as decisions, so
  ``decided identifier -> channel`` is a name space of size <= k;
* by Termination every client obtains a channel, and by Validity channels
  correspond to real client identifiers (no made-up names).

The final assignment is consistent: clients that decided the same value
share a channel, and the total number of channels is at most ``k`` even
though clients started with 10 distinct names.

Run with::

    python examples/renaming.py
"""

from repro import (
    GroupedSourceAdversary,
    RoundSimulator,
    SimulationConfig,
    check_agreement_properties,
    make_processes,
)
from repro.analysis.reporting import format_table


def main() -> None:
    n, k = 10, 3
    # Unique "wide" identifiers (sparse name space to be reduced).
    identifiers = [1000 + 37 * i for i in range(n)]

    adversary = GroupedSourceAdversary(
        n, num_groups=k, seed=11, noise=0.25, topology="cycle"
    )
    processes = make_processes(n, identifiers)
    run = RoundSimulator(
        processes, adversary, SimulationConfig(max_rounds=150)
    ).run()

    report = check_agreement_properties(run, k)
    assert report.all_hold, report.summary()

    # The surviving names, in deterministic order, become channel indices.
    surviving = sorted(run.decision_values())
    channel_of = {name: idx for idx, name in enumerate(surviving)}

    rows = []
    for pid in range(n):
        decided = run.decisions[pid].value
        rows.append(
            [pid, identifiers[pid], decided, f"channel-{channel_of[decided]}"]
        )
    print(
        format_table(
            ["client", "original name", "agreed name", "new name"],
            rows,
            title=f"Renaming: {n} unique names reduced to "
            f"{len(surviving)} <= k={k} channels",
        )
    )

    assert len(surviving) <= k
    assert all(name in identifiers for name in surviving)  # validity
    print(f"\nname space reduced: {n} -> {len(surviving)} (bound k={k})")


if __name__ == "__main__":
    main()
