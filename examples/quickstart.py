#!/usr/bin/env python
"""Quickstart: solve k-set agreement with the stable-skeleton algorithm.

This walks the full pipeline of the paper on a small system:

1. pick an adversary (the "network") that guarantees ``Psrcs(k)``,
2. run Algorithm 1 (one ``SkeletonAgreementProcess`` per process),
3. verify the three k-set agreement properties on the resulting run,
4. inspect the structures the proofs talk about: the stable skeleton, its
   root components, and the decision latency against Lemma 11's bound.

Run with::

    python examples/quickstart.py
"""

from repro import (
    GroupedSourceAdversary,
    Psrcs,
    RoundSimulator,
    SimulationConfig,
    check_agreement_properties,
    decision_stats,
    make_processes,
)
from repro.analysis.reporting import format_table
from repro.graphs.condensation import root_components
from repro.viz.ascii import render_edge_list


def main() -> None:
    n, k = 9, 3

    # -- 1. The network ---------------------------------------------------
    # Three groups, each with a perpetual 2-source, plus 20% per-round
    # random noise edges.  Pigeonhole over the groups guarantees Psrcs(3).
    adversary = GroupedSourceAdversary(n, num_groups=k, seed=7, noise=0.2)
    assert Psrcs(k).check_adversary(adversary).holds

    # -- 2. The algorithm --------------------------------------------------
    # Distinct proposals 0..n-1 — the hardest case for agreement.
    processes = make_processes(n)
    run = RoundSimulator(
        processes, adversary, SimulationConfig(max_rounds=120)
    ).run()

    # -- 3. Verification ---------------------------------------------------
    report = check_agreement_properties(run, k)
    print(report.summary())
    assert report.all_hold

    # -- 4. The paper's structures ------------------------------------------
    stable = run.stable_skeleton()
    roots = root_components(stable)
    print()
    print(render_edge_list(stable, title="Stable skeleton G^∩∞ (self-loops omitted):"))
    print()
    print(f"Root components ({len(roots)} <= k={k}, Theorem 1):")
    for comp in roots:
        print(f"  {sorted(comp)}")

    stats = decision_stats(run)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["processes", n],
                ["distinct decisions", report.num_decision_values],
                ["decision values", list(report.decision_values)],
                ["skeleton stabilized at round", stats.stabilization],
                ["last decision round", stats.last_decision_round],
                ["Lemma 11 bound (r_ST + 2n - 1)", stats.lemma11_bound],
            ],
            title="Run summary",
        )
    )


if __name__ == "__main__":
    main()
