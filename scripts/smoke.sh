#!/usr/bin/env bash
# Smoke check: tier-1 tests plus a ~30-second mini-campaign that exercises
# the parallel executor, the JSONL store, resume-by-hash and the canonical
# summary — so the multiprocessing path is driven on every change, not
# just in CI benchmarks.  A final pass runs the same tiny grid on all
# three execution backends (reference simulator, per-scenario vectorized
# fast path, mega-batched fast path) and byte-compares the canonical
# summaries; the batched backend's journal bytes are additionally checked
# to be independent of the jobs count / batch partition, and a
# scheduler-planned heterogeneous-latency family leg (--jobs 2, tiny
# --batch-memory envelope) is diffed against the serial reference run.
# A mixed-n packed leg (--pack-widths --steal --jobs 4) byte-compares
# journal and summary against the serial unpacked batched run.
# A final telemetry leg records a --metrics sidecar (schema-validated,
# all four engine sections non-zero) and byte-compares the journal
# against a metrics-off run.
#
# Usage: scripts/smoke.sh [extra pytest args...]

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
store="$workdir/journal.jsonl"
summary_a="$workdir/summary_jobs2.jsonl"
summary_b="$workdir/summary_resumed.jsonl"
grid=(-n 5 6 8 -k 2 3 --seeds 4 --noise 0.0 0.2)

echo
echo "== mini-campaign: parallel run (--jobs 2) =="
python -m repro campaign run --store "$store" --jobs 2 \
    --summary "$summary_a" "${grid[@]}"

echo
echo "== mini-campaign: resume executes nothing new =="
python -m repro campaign run --store "$store" --jobs 2 "${grid[@]}" \
    | grep -E "executed now +0"

echo
echo "== mini-campaign: drop half the journal, resume only the rest =="
total=$(wc -l < "$store")
head -n $((total / 2)) "$store" > "$store.half" && mv "$store.half" "$store"
python -m repro campaign run --store "$store" --jobs 2 \
    --summary "$summary_b" "${grid[@]}"

cmp "$summary_a" "$summary_b"
echo "summaries byte-identical after resume: OK"

echo
echo "== backend equivalence: fast paths vs reference =="
eq_grid=(-n 4 6 -k 2 --seeds 3 --noise 0.0 0.25)
summary_ref="$workdir/summary_reference.jsonl"
summary_vec="$workdir/summary_vectorized.jsonl"
summary_bat="$workdir/summary_batched.jsonl"
python -m repro campaign run --store "$workdir/journal_ref.jsonl" \
    --backend reference --summary "$summary_ref" "${eq_grid[@]}"
python -m repro campaign run --store "$workdir/journal_vec.jsonl" \
    --backend vectorized --summary "$summary_vec" "${eq_grid[@]}"
python -m repro campaign run --store "$workdir/journal_bat.jsonl" \
    --backend batched --summary "$summary_bat" "${eq_grid[@]}"
cmp "$summary_ref" "$summary_vec"
cmp "$summary_ref" "$summary_bat"
echo "reference, vectorized and batched summaries byte-identical: OK"

echo
echo "== mega-batch partition invariance: --jobs 2 journal bytes =="
# The batched backend tags every supported scenario "batched" whatever
# the batch grouping, so journal records (not just summaries) must be
# byte-identical between a serial run and a chunked parallel run.
python -m repro campaign run --store "$workdir/journal_bat2.jsonl" \
    --backend batched --jobs 2 --summary "$workdir/summary_bat2.jsonl" \
    "${eq_grid[@]}" > /dev/null
cmp "$summary_bat" "$workdir/summary_bat2.jsonl"
diff <(sort "$workdir/journal_bat.jsonl") \
     <(sort "$workdir/journal_bat2.jsonl")
echo "batched journal bytes independent of jobs/partition: OK"

echo
echo "== experiment registry: every family as a campaign =="
# One small scenario grid per registered family through
# `campaign run --family`; where the family supports the vectorized fast
# path, run it on both backends and byte-compare the canonical summaries.
run_family() {
    local family="$1"; shift
    local args=("$@")
    local fdir="$workdir/family_$family"
    mkdir -p "$fdir"
    echo "-- family: $family (reference) --"
    python -m repro campaign run --family "$family" \
        --store "$fdir/ref.jsonl" --summary "$fdir/ref_summary.jsonl" \
        --backend reference "${args[@]}" > /dev/null
    # Resume executes nothing new.  (Capture, then grep: `grep -q` would
    # close the pipe early and SIGPIPE the CLI.)
    python -m repro campaign run --family "$family" \
        --store "$fdir/ref.jsonl" --backend reference "${args[@]}" \
        > "$fdir/resume.out"
    grep -qE "executed now +0" "$fdir/resume.out"
    python -m repro campaign report --family "$family" \
        --store "$fdir/ref.jsonl" "${args[@]}" > /dev/null
}

run_family_vectorized() {
    local family="$1"; shift
    local args=("$@")
    local fdir="$workdir/family_$family"
    echo "-- family: $family (vectorized vs reference) --"
    python -m repro campaign run --family "$family" \
        --store "$fdir/vec.jsonl" --summary "$fdir/vec_summary.jsonl" \
        --backend vectorized "${args[@]}" > /dev/null
    cmp "$fdir/ref_summary.jsonl" "$fdir/vec_summary.jsonl"
}

run_family_batched() {
    local family="$1"; shift
    local args=("$@")
    local fdir="$workdir/family_$family"
    echo "-- family: $family (mega-batched vs reference) --"
    python -m repro campaign run --family "$family" \
        --store "$fdir/bat.jsonl" --summary "$fdir/bat_summary.jsonl" \
        --backend batched "${args[@]}" > /dev/null
    cmp "$fdir/ref_summary.jsonl" "$fdir/bat_summary.jsonl"
}

run_family figure1
run_family theorem2 -n 6 -k 3
run_family sweeps -n 5 6 -k 2 --seeds 2 --noise 0.1
run_family_vectorized sweeps -n 5 6 -k 2 --seeds 2 --noise 0.1
run_family_batched sweeps -n 5 6 -k 2 --seeds 2 --noise 0.1
run_family termination -n 5 6 --seeds 2
run_family_vectorized termination -n 5 6 --seeds 2
run_family_batched termination -n 5 6 --seeds 2
run_family ablation -n 5 -k 2 --seeds 2
run_family duality -n 6 --density 0.1 0.3 --seeds 2
run_family eventual -n 5 --bad-rounds 0 2 --seeds 1
run_family_batched eventual -n 5 --bad-rounds 0 2 --seeds 1
run_family latency -n 5 6 --seeds 2 --noise 0.1
run_family_vectorized latency -n 5 6 --seeds 2 --noise 0.1
run_family_batched latency -n 5 6 --seeds 2 --noise 0.1
echo "all families ran as campaigns (summaries backend-identical): OK"

echo
echo "== batch scheduler: heterogeneous-latency leg (--jobs 2) vs serial reference =="
# A noise×n LATENCY-DIST grid is exactly the interleaved-heterogeneous
# shape the scheduler plans into packed, lane-compacting batches; a
# parallel auto run must byte-match the serial reference-backend
# summary (and an absurdly small --batch-memory envelope must too).
het_args=(--family latency -n 5 6 --seeds 2 --noise 0.0 0.4)
python -m repro campaign run "${het_args[@]}" --backend reference \
    --store "$workdir/het_ref.jsonl" \
    --summary "$workdir/het_ref_summary.jsonl" > /dev/null
python -m repro campaign run "${het_args[@]}" --backend auto --jobs 2 \
    --batch-memory 64 --store "$workdir/het_sched.jsonl" \
    --summary "$workdir/het_sched_summary.jsonl" > /dev/null
cmp "$workdir/het_ref_summary.jsonl" "$workdir/het_sched_summary.jsonl"
echo "scheduler-planned parallel run byte-matches serial reference: OK"

echo
echo "== cross-n packing + work stealing: mixed-n packed leg (--jobs 4) =="
# A mixed-n grid (n=4..7 share one round bucket) runs as one padded
# tensor program under --pack-widths, split and stolen across four
# workers — journal records and summary must byte-match the serial
# unpacked (PR-5 style) batched run.
pack_grid=(-n 4 5 6 7 -k 2 --seeds 3 --noise 0.0 0.3)
python -m repro campaign run "${pack_grid[@]}" --backend batched \
    --store "$workdir/pack_serial.jsonl" \
    --summary "$workdir/pack_serial_summary.jsonl" > /dev/null
python -m repro campaign run "${pack_grid[@]}" --backend batched \
    --pack-widths --steal --jobs 4 \
    --store "$workdir/pack_stolen.jsonl" \
    --summary "$workdir/pack_stolen_summary.jsonl" > /dev/null
cmp "$workdir/pack_serial_summary.jsonl" "$workdir/pack_stolen_summary.jsonl"
diff <(sort "$workdir/pack_serial.jsonl") \
     <(sort "$workdir/pack_stolen.jsonl")
echo "packed+stolen journal bytes match serial unpacked: OK"

echo
echo "== store-native aggregation: percentile table from the journal =="
python -m repro campaign report --family latency --aggregate \
    --store "$workdir/family_latency/ref.jsonl" -n 5 6 --seeds 2 \
    --noise 0.1 > "$workdir/aggregate.out"
grep -q "p50_decide" "$workdir/aggregate.out"
echo "aggregate report: OK"

echo
echo "== telemetry: --metrics sidecar, journal bytes untouched =="
# A --metrics run must write a schema-valid sidecar with non-zero
# scheduler/executor/kernel/store sections while leaving the journal
# byte-identical to a metrics-off run of the same grid.
met_args=(--family latency -n 5 6 --seeds 2 --noise 0.1)
python -m repro campaign run "${met_args[@]}" --jobs 1 \
    --store "$workdir/met_on.jsonl" --metrics --no-progress > /dev/null
python -m repro campaign run "${met_args[@]}" --jobs 1 \
    --store "$workdir/met_off.jsonl" --no-progress > /dev/null
cmp "$workdir/met_on.jsonl" "$workdir/met_off.jsonl"
echo "journal bytes identical with metrics on/off: OK"
python - "$workdir/met_on.jsonl.metrics.json" <<'PY'
import sys
from repro.engine.telemetry import read_sidecar

side = read_sidecar(sys.argv[1])  # validates schema + structure
counters = {
    **side["deterministic"]["counters"],
    **side["volatile"]["counters"],
}
for prefix in ("scheduler.", "executor.", "kernel.", "store."):
    assert any(
        name.startswith(prefix) and value > 0
        for name, value in counters.items()
    ), f"no non-zero {prefix} counters in sidecar"
print("sidecar schema and non-zero sections: OK")
PY
python -m repro campaign report "${met_args[@]}" \
    --store "$workdir/met_on.jsonl" --metrics > "$workdir/metrics.out"
grep -q "kernel.lanes" "$workdir/metrics.out"
echo "campaign report --metrics renders the sidecar: OK"

echo
echo "== fuzz family: randomized differential campaign under contracts =="
# Every fuzz case re-runs the drawn scenario on every engine and
# byte-compares canonical summaries; --contracts additionally arms the
# sampled re-derive checkpoints.  A non-zero exit means a divergence
# (with a shrunk repro in the journal) — set -e asserts it.
python -m repro campaign run --family fuzz --seeds 6 \
    --store "$workdir/fuzz.jsonl" --contracts --no-progress \
    > "$workdir/fuzz.out"
grep -q "state: ok" "$workdir/fuzz.out"
echo "fuzz campaign (6 cases, contracts on): OK"

echo
echo "== fault injection: seeded kill+torn plan reconverges byte-identically =="
# Seed 31 deterministically selects 2 kill victims (worker crashes,
# absorbed in-run by --max-retries) and 2 torn victims (truncated
# journal appends; each aborts the run once, the ledger prevents a
# refire, resume heals the tail and re-runs the scenario).  After the
# bounded retry loop the canonical summary must be byte-identical to a
# fault-free run of the same grid.
fault_grid=(-n 5 6 -k 2 --seeds 3 --noise 0.1)
python -m repro campaign run "${fault_grid[@]}" --jobs 2 \
    --store "$workdir/fault_clean.jsonl" \
    --summary "$workdir/fault_clean_summary.jsonl" --no-progress > /dev/null
fault_attempts=0
until python -m repro campaign run "${fault_grid[@]}" --jobs 2 \
        --max-retries 2 --faults "seed=31,kill=0.4,torn=0.4" \
        --store "$workdir/faulted.jsonl" \
        --summary "$workdir/faulted_summary.jsonl" --no-progress \
        > /dev/null 2> "$workdir/faulted.err"; do
    fault_attempts=$((fault_attempts + 1))
    if [ "$fault_attempts" -gt 6 ]; then
        cat "$workdir/faulted.err"
        echo "faulted campaign failed to reconverge" >&2
        exit 1
    fi
done
cmp "$workdir/fault_clean_summary.jsonl" "$workdir/faulted_summary.jsonl"
test -s "$workdir/faulted.jsonl.faults.ledger"
grep -q "^kill:" "$workdir/faulted.jsonl.faults.ledger"
grep -q "^torn:" "$workdir/faulted.jsonl.faults.ledger"
echo "faulted summary byte-identical after $fault_attempts resume(s); ledger fired: OK"

echo
echo "== campaign service: daemon-served campaigns over HTTP =="
# Boot `campaign serve` on an ephemeral port, submit the fuzz family
# (contracts armed) plus a standard latency family through the thin
# `campaign run --connect` client, check the status client, then SIGTERM
# and require a clean (exit 0) drain.
daemon_spool="$workdir/daemon_spool"
port_file="$workdir/daemon.url"
python -m repro campaign serve --port 0 --port-file "$port_file" \
    --jobs 2 --slots 2 --spool "$daemon_spool" --contracts \
    2> "$workdir/daemon.err" &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || {
        cat "$workdir/daemon.err" >&2
        echo "daemon died during startup" >&2
        exit 1
    }
    sleep 0.1
done
daemon_url="$(cat "$port_file")"
echo "daemon listening at $daemon_url"
python -m repro campaign run --connect "$daemon_url" --family fuzz \
    --seeds 4 --store "$workdir/served_fuzz.jsonl" --contracts \
    --no-progress > "$workdir/served_fuzz.out"
grep -q "state: ok" "$workdir/served_fuzz.out"
python -m repro campaign run --connect "$daemon_url" --family latency \
    -n 5 6 --seeds 2 --noise 0.1 --store "$workdir/served_lat.jsonl" \
    --no-progress > "$workdir/served_lat.out"
grep -q "state: ok" "$workdir/served_lat.out"
python -m repro campaign status --connect "$daemon_url" --family latency \
    -n 5 6 --seeds 2 --noise 0.1 --store "$workdir/served_lat.jsonl" \
    > /dev/null
kill -TERM "$daemon_pid"
wait "$daemon_pid" || {
    echo "daemon exited non-zero on SIGTERM" >&2
    cat "$workdir/daemon.err" >&2
    exit 1
}
grep -q "shutting down" "$workdir/daemon.err"
echo "daemon leg (fuzz + latency served, clean SIGTERM drain): OK"

echo
echo "== distributed execution: 2 remote workers vs serial, byte-compared =="
# Boot two `repro worker --listen` processes on ephemeral ports, ship the
# heterogeneous-latency family to them with `campaign run --workers`, and
# require the shard-merged journal AND summary to be byte-identical to
# the serial single-host run — then SIGTERM both workers and require
# clean (exit 0) shutdowns.
dist_args=(--family latency -n 5 6 --seeds 2 --noise 0.0 0.4)
python -m repro campaign run "${dist_args[@]}" --jobs 1 \
    --store "$workdir/dist_serial.jsonl" \
    --summary "$workdir/dist_serial_summary.jsonl" --no-progress > /dev/null
worker_pids=()
for i in 0 1; do
    python -m repro worker --listen 127.0.0.1:0 \
        --port-file "$workdir/worker$i.port" \
        2> "$workdir/worker$i.err" &
    worker_pids+=($!)
done
for i in 0 1; do
    for _ in $(seq 1 100); do
        [ -s "$workdir/worker$i.port" ] && break
        kill -0 "${worker_pids[$i]}" 2>/dev/null || {
            cat "$workdir/worker$i.err" >&2
            echo "worker $i died during startup" >&2
            exit 1
        }
        sleep 0.1
    done
done
dist_workers="$(cat "$workdir/worker0.port"),$(cat "$workdir/worker1.port")"
echo "workers listening at $dist_workers"
python -m repro campaign run "${dist_args[@]}" --workers "$dist_workers" \
    --store "$workdir/dist_remote.jsonl" \
    --summary "$workdir/dist_remote_summary.jsonl" --no-progress > /dev/null
cmp "$workdir/dist_serial.jsonl" "$workdir/dist_remote.jsonl"
cmp "$workdir/dist_serial_summary.jsonl" "$workdir/dist_remote_summary.jsonl"
for pid in "${worker_pids[@]}"; do
    kill -TERM "$pid"
done
for i in 0 1; do
    wait "${worker_pids[$i]}" || {
        echo "worker $i exited non-zero on SIGTERM" >&2
        cat "$workdir/worker$i.err" >&2
        exit 1
    }
done
echo "distributed journal+summary byte-identical to serial; workers drained: OK"

echo
python -m repro campaign status --store "$store" "${grid[@]}"
echo
echo "smoke: OK"
