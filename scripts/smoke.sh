#!/usr/bin/env bash
# Smoke check: tier-1 tests plus a ~30-second mini-campaign that exercises
# the parallel executor, the JSONL store, resume-by-hash and the canonical
# summary — so the multiprocessing path is driven on every change, not
# just in CI benchmarks.  A final pass runs the same tiny grid on both
# execution backends (reference simulator vs vectorized fast path) and
# byte-compares the canonical summaries.
#
# Usage: scripts/smoke.sh [extra pytest args...]

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
store="$workdir/journal.jsonl"
summary_a="$workdir/summary_jobs2.jsonl"
summary_b="$workdir/summary_resumed.jsonl"
grid=(-n 5 6 8 -k 2 3 --seeds 4 --noise 0.0 0.2)

echo
echo "== mini-campaign: parallel run (--jobs 2) =="
python -m repro campaign run --store "$store" --jobs 2 \
    --summary "$summary_a" "${grid[@]}"

echo
echo "== mini-campaign: resume executes nothing new =="
python -m repro campaign run --store "$store" --jobs 2 "${grid[@]}" \
    | grep -E "executed now +0"

echo
echo "== mini-campaign: drop half the journal, resume only the rest =="
total=$(wc -l < "$store")
head -n $((total / 2)) "$store" > "$store.half" && mv "$store.half" "$store"
python -m repro campaign run --store "$store" --jobs 2 \
    --summary "$summary_b" "${grid[@]}"

cmp "$summary_a" "$summary_b"
echo "summaries byte-identical after resume: OK"

echo
echo "== backend equivalence: vectorized fast path vs reference =="
eq_grid=(-n 4 6 -k 2 --seeds 3 --noise 0.0 0.25)
summary_ref="$workdir/summary_reference.jsonl"
summary_vec="$workdir/summary_vectorized.jsonl"
python -m repro campaign run --store "$workdir/journal_ref.jsonl" \
    --backend reference --summary "$summary_ref" "${eq_grid[@]}"
python -m repro campaign run --store "$workdir/journal_vec.jsonl" \
    --backend vectorized --summary "$summary_vec" "${eq_grid[@]}"
cmp "$summary_ref" "$summary_vec"
echo "reference and vectorized summaries byte-identical: OK"

echo
python -m repro campaign status --store "$store" "${grid[@]}"
echo
echo "smoke: OK"
