"""Plain-text result tables.

The benchmark harness prints, for every experiment, the rows the paper
would report (the paper itself is theory-only, so the rows are the
theorem-shaped quantities: root-component counts, decision-value counts,
latency vs bound, message bits vs n).  One small formatter keeps all of
them consistent and diff-friendly for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["n", "k"], [[6, 3], [12, 4]], title="demo"))
    demo
    n   k
    --  -
    6   3
    12  4
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row} has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
