"""Run analysis: agreement-property verification and statistics.

* :mod:`repro.analysis.properties` — check k-agreement, validity and
  termination on finished runs (the definitions of §II.A);
* :mod:`repro.analysis.stats` — decision-round and message-complexity
  statistics backing the ALG-TERM and MSG-COMPLEX experiments;
* :mod:`repro.analysis.reporting` — plain-text tables for the benchmark
  harness (the "rows the paper would report").
"""

from repro.analysis.properties import (
    AgreementReport,
    check_agreement_properties,
    check_k_agreement,
    check_termination,
    check_validity,
)
from repro.analysis.stats import (
    DecisionStats,
    MessageStats,
    decision_stats,
    message_stats,
)
from repro.analysis.reporting import format_table

__all__ = [
    "AgreementReport",
    "check_agreement_properties",
    "check_k_agreement",
    "check_termination",
    "check_validity",
    "DecisionStats",
    "MessageStats",
    "decision_stats",
    "message_stats",
    "format_table",
]
