"""Decision-latency and message-complexity statistics.

Backs two experiments:

* **ALG-TERM** — Lemma 11 bounds every decision by round ``r_ST + 2n - 1``
  (skeleton stabilization + approximation convergence + decide flooding).
  :func:`decision_stats` extracts the empirical latencies and the bound.
* **MSG-COMPLEX** — §V claims worst-case message *bit* complexity polynomial
  in ``n``: a message carries an estimate plus the approximation graph,
  which has at most ``n`` nodes and ``n²`` round-labeled edges, each label
  bounded by the current round — so O(n² log r) bits.  :func:`message_stats`
  measures encoded sizes from recorded runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rounds.run import Run
from repro.skeleton.analysis import stabilization_round


@dataclass(frozen=True)
class DecisionStats:
    """Per-run decision-latency summary."""

    n: int
    num_rounds: int
    num_decided: int
    first_decision_round: int | None
    last_decision_round: int | None
    stabilization: int | None
    lemma11_bound: int | None  # r_ST + 2n - 1, when r_ST is known
    stabilization_known: bool  # whether the run could even measure r_ST

    @property
    def within_bound(self) -> bool | None:
        """Whether every decision met Lemma 11's ``r_ST + 2n - 1``.

        When the recorded prefix ends *before* stabilization (the run may
        stop as soon as everyone decided), the true ``r_ST`` exceeds the
        prefix length, so the bound holds trivially for decisions inside
        the prefix.  ``None`` only when the run carries no stable-skeleton
        declaration (the bound is then unmeasurable).
        """
        if self.last_decision_round is None:
            return None
        if self.lemma11_bound is not None:
            return self.last_decision_round <= self.lemma11_bound
        if self.stabilization_known:
            # r_ST > num_rounds >= last_decision_round.
            return True
        return None


def decision_stats(run: Run) -> DecisionStats:
    """Extract decision-latency statistics from a finished run."""
    rounds = sorted(d.round_no for d in run.decisions.values())
    r_st = stabilization_round(run)
    return DecisionStats(
        n=run.n,
        num_rounds=run.num_rounds,
        num_decided=len(rounds),
        first_decision_round=rounds[0] if rounds else None,
        last_decision_round=rounds[-1] if rounds else None,
        stabilization=r_st,
        lemma11_bound=(r_st + 2 * run.n - 1) if r_st is not None else None,
        stabilization_known=run.declared_stable_graph is not None,
    )


@dataclass(frozen=True)
class MessageStats:
    """Per-run message-size summary (bits)."""

    n: int
    num_rounds: int
    num_messages: int
    max_bits: int
    mean_bits: float
    total_bits: int

    @property
    def max_bits_per_message(self) -> int:
        return self.max_bits


def message_stats(run: Run) -> MessageStats:
    """Measure encoded message sizes.

    Requires the run to have been recorded with
    ``SimulationConfig(record_messages=True)``.
    """
    # Lazy: this module sits below the engine package in the import
    # graph (the executor imports it), so the aggregation kernels are
    # resolved at call time.
    from repro.engine.aggregate import summarize_values

    sizes: list[int] = []
    for r in range(1, run.num_rounds + 1):
        for msg in run.messages(r).values():
            sizes.append(msg.bit_size())
    if not sizes:
        raise ValueError(
            "run has no recorded messages; simulate with record_messages=True"
        )
    summary = summarize_values(np.asarray(sizes, dtype=np.int64))
    return MessageStats(
        n=run.n,
        num_rounds=run.num_rounds,
        num_messages=summary["count"],
        max_bits=int(summary["max"]),
        mean_bits=summary["mean"],
        total_bits=int(summary["sum"]),
    )


def polynomial_bit_bound(n: int, round_no: int) -> int:
    """The §V-style worst-case bound used as a sanity ceiling in tests:
    an approximation graph has <= n nodes and <= n² labeled edges; with a
    generous per-edge encoding of ``3 * (ceil(log2(n)) + ceil(log2(r)))``
    bits plus headers, the bound is O(n² log(n r))."""
    import math

    word = math.ceil(math.log2(max(n, 2))) + math.ceil(math.log2(max(round_no, 2)))
    # nodes + edges * 3 fields + estimate + headers; constant factor chosen
    # loose on purpose (we assert growth *shape*, not constants).
    return 64 * (n + 3 * n * n) * word
