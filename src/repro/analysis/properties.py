"""k-set agreement property verification (§II.A).

Every process starts with a proposal value and must eventually and
irrevocably decide, subject to:

* **k-Agreement** — at most ``k`` different decision values;
* **Validity** — every decision was proposed by some process;
* **Termination** — every process eventually decides.

Irrevocability and decide-at-most-once are enforced structurally by
:class:`~repro.rounds.process.Process`; these checkers verify the three
run-level properties on a finished :class:`~repro.rounds.run.Run`.
Termination on a finite prefix means "every process decided within the
prefix" — callers size ``max_rounds`` generously (the paper's bound is
``r_ST + 2n - 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rounds.run import Run


@dataclass(frozen=True)
class PropertyCheck:
    """Outcome of a single property check."""

    name: str
    holds: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


@dataclass(frozen=True)
class AgreementReport:
    """Combined verdict for one run."""

    k: int
    k_agreement: PropertyCheck
    validity: PropertyCheck
    termination: PropertyCheck
    num_decision_values: int
    decision_values: tuple

    @property
    def all_hold(self) -> bool:
        return bool(self.k_agreement and self.validity and self.termination)

    def summary(self) -> str:
        lines = [f"k-set agreement report (k={self.k}):"]
        for check in (self.k_agreement, self.validity, self.termination):
            status = "OK " if check.holds else "FAIL"
            lines.append(f"  [{status}] {check.name}: {check.detail}")
        return "\n".join(lines)


def check_k_agreement(run: Run, k: int) -> PropertyCheck:
    """At most ``k`` distinct decision values among all decisions so far."""
    values = run.decision_values()
    holds = len(values) <= k
    return PropertyCheck(
        name="k-agreement",
        holds=holds,
        detail=f"{len(values)} distinct values {sorted(map(repr, values))} "
        f"(bound {k})",
    )


def check_validity(run: Run) -> PropertyCheck:
    """Every decided value was proposed by some process."""
    proposals = set(run.initial_values)
    bad = {
        pid: d.value
        for pid, d in run.decisions.items()
        if d.value not in proposals
    }
    return PropertyCheck(
        name="validity",
        holds=not bad,
        detail="all decisions were proposals"
        if not bad
        else f"non-proposal decisions: {bad}",
    )


def check_termination(run: Run) -> PropertyCheck:
    """Every process decided within the recorded prefix."""
    undecided = run.undecided()
    return PropertyCheck(
        name="termination",
        holds=not undecided,
        detail=f"all {run.n} processes decided"
        if not undecided
        else f"undecided after {run.num_rounds} rounds: {undecided}",
    )


def check_agreement_properties(run: Run, k: int) -> AgreementReport:
    """All three §II.A properties at once."""
    values = tuple(sorted(run.decision_values(), key=repr))
    return AgreementReport(
        k=k,
        k_agreement=check_k_agreement(run, k),
        validity=check_validity(run),
        termination=check_termination(run),
        num_decision_values=len(values),
        decision_values=values,
    )
