"""Cross-run statistical summaries.

The single-run statistics in :mod:`repro.analysis.stats` answer "did this
run meet the bound"; experiments also need distributional answers — how
decision latency scales with n, how noise affects stabilization, how often
noisy runs collapse to fewer values than root components.  This module
exposes those tables as typed rows.

All accumulation lives in :mod:`repro.engine.aggregate`: the ensembles
route through the campaign engine (seeded
:class:`~repro.engine.scenarios.ScenarioSpec` grids executed with
:func:`~repro.engine.campaign.run_campaign`, optionally parallel via
``jobs``, optionally journaled to a JSONL ``store``) and the percentile
rows here are :func:`~repro.engine.aggregate.decision_latency_summary`
applied to the journaled records — the exact same aggregation ``campaign
report --aggregate`` prints straight from a store.  The registered
``latency`` experiment family runs the same grid/aggregation as a
first-class campaign (``campaign run --family latency``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.aggregate import (
    AggregateTable,
    decision_latency_summary,
    format_ci,
    latency_table,
)
from repro.engine.campaign import run_campaign
from repro.engine.executor import require_ok
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import ScenarioSpec


@dataclass(frozen=True)
class LatencyDistribution:
    """Decision-latency distribution over a seed ensemble."""

    n: int
    num_groups: int
    noise: float
    runs: int
    p50_last_decide: float
    p95_last_decide: float
    ci95_last_decide: tuple[float, float]
    max_last_decide: int
    p50_stabilization: float
    mean_values: float
    bound_violations: int

    def as_row(self) -> list:
        return [
            self.n,
            self.num_groups,
            self.noise,
            self.runs,
            self.p50_last_decide,
            self.p95_last_decide,
            format_ci(self.ci95_last_decide),
            self.max_last_decide,
            self.p50_stabilization,
            round(self.mean_values, 2),
            self.bound_violations,
        ]

    HEADERS = [
        "n",
        "groups",
        "noise",
        "runs",
        "p50_decide",
        "p95_decide",
        "ci95_decide",
        "max_decide",
        "p50_r_ST",
        "mean_values",
        "bound_viol",
    ]


def latency_specs(
    n: int,
    num_groups: int,
    noise: float,
    seeds: Sequence[int],
    topology: str = "cycle",
) -> list[ScenarioSpec]:
    """The seed ensemble behind one latency-distribution cell."""
    return [
        ScenarioSpec(
            n=n,
            k=num_groups,
            num_groups=num_groups,
            seed=seed,
            noise=noise,
            topology=topology,
        )
        for seed in seeds
    ]


def latency_distribution(
    n: int,
    num_groups: int,
    noise: float,
    seeds: Sequence[int],
    topology: str = "cycle",
    jobs: int = 1,
    store=None,
    backend: str = "auto",
) -> LatencyDistribution:
    """Run a seed ensemble through the engine and summarize latency."""
    specs = latency_specs(n, num_groups, noise, seeds, topology=topology)
    # Infrastructure failures are not theory violations: a crashed
    # worker must not be tallied into bound_violations.
    results = require_ok(
        run_campaign(specs, store=store, jobs=jobs, backend=backend)
    )
    return LatencyDistribution(
        n=n, num_groups=num_groups, noise=noise,
        **decision_latency_summary(results),
    )


def latency_scaling_table(
    ns: Sequence[int],
    seeds: Sequence[int],
    num_groups: int = 2,
    noise: float = 0.2,
    jobs: int = 1,
    store=None,
    backend: str = "auto",
) -> list[LatencyDistribution]:
    """LATENCY-DIST: percentile latencies vs n (linear per Lemma 11)."""
    return [
        latency_distribution(
            n, min(num_groups, n), noise, seeds, jobs=jobs, store=store,
            backend=backend,
        )
        for n in ns
    ]


def noise_sensitivity_table(
    noises: Sequence[float],
    seeds: Sequence[int],
    n: int = 10,
    num_groups: int = 3,
    jobs: int = 1,
    store=None,
    backend: str = "auto",
) -> list[LatencyDistribution]:
    """How transient noise shifts stabilization and value collapse:
    more noise → later stabilization (more edges must die) but also more
    early value leakage (fewer distinct decisions)."""
    return [
        latency_distribution(
            n, num_groups, noise, seeds, jobs=jobs, store=store,
            backend=backend,
        )
        for noise in noises
    ]


# ----------------------------------------------------------------------
# Experiment-registry spec (stock-runner specs, untagged: the grid is
# hash-compatible with the journals the benchmarks already wrote).
# ----------------------------------------------------------------------
def _latency_grid(params) -> list[ScenarioSpec]:
    noises = (
        params["noise"]
        if isinstance(params["noise"], (list, tuple))
        else (params["noise"],)
    )
    specs = []
    for n in params["n"]:
        groups = min(params["groups"], n)
        for noise in noises:
            specs.extend(
                latency_specs(
                    n, groups, noise, range(params["seeds"]),
                    topology=params["topology"],
                )
            )
    return specs


def _latency_aggregate(results) -> AggregateTable:
    return latency_table(results)


def _latency_render(results) -> tuple[str, int]:
    table = latency_table(
        results,
        title="LATENCY-DIST — decision-latency percentiles per "
        "(n, groups, noise) ensemble (Lemma 11: r_ST + 2n - 1)",
    )
    ok = all(row[-1] == 0 for row in table.rows)
    return table.format(), 0 if ok else 1


register(
    ExperimentSpec(
        name="latency",
        title="LATENCY-DIST: decision-latency percentiles vs n and noise",
        build_grid=_latency_grid,
        render=_latency_render,
        headers=(
            "n",
            "groups",
            "noise",
            "seed",
            "status",
            "last_rnd",
            "r_ST",
            "bound",
            "within",
        ),
        row=lambda r: [
            r.spec.n,
            r.spec.num_groups,
            r.spec.noise,
            r.spec.seed,
            r.status,
            r.last_decision_round,
            r.stabilization,
            r.lemma11_bound,
            r.within_bound,
        ],
        aggregate=_latency_aggregate,
        defaults=(
            ("groups", 2),
            ("n", (6, 9, 12)),
            ("noise", (0.2,)),
            ("seeds", 5),
            ("topology", "cycle"),
        ),
        vectorizable=True,
    )
)
