"""Cross-run statistical summaries.

The single-run statistics in :mod:`repro.analysis.stats` answer "did this
run meet the bound"; experiments also need distributional answers — how
decision latency scales with n, how noise affects stabilization, how often
noisy runs collapse to fewer values than root components.  This module
aggregates seed ensembles into percentile tables (the closest thing to the
"figures" a systems paper would plot).

The ensembles route through the campaign engine (:mod:`repro.engine`):
each table builds seeded :class:`~repro.engine.scenarios.ScenarioSpec`
ensembles, executes them with :func:`~repro.engine.campaign.run_campaign`
(optionally parallel via ``jobs``, optionally journaled to a JSONL
``store``) and aggregates the summary records into percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.campaign import run_campaign
from repro.engine.executor import require_ok
from repro.engine.scenarios import ScenarioSpec


@dataclass(frozen=True)
class LatencyDistribution:
    """Decision-latency distribution over a seed ensemble."""

    n: int
    num_groups: int
    noise: float
    runs: int
    p50_last_decide: float
    p95_last_decide: float
    max_last_decide: int
    p50_stabilization: float
    mean_values: float
    bound_violations: int

    def as_row(self) -> list:
        return [
            self.n,
            self.num_groups,
            self.noise,
            self.runs,
            self.p50_last_decide,
            self.p95_last_decide,
            self.max_last_decide,
            self.p50_stabilization,
            round(self.mean_values, 2),
            self.bound_violations,
        ]

    HEADERS = [
        "n",
        "groups",
        "noise",
        "runs",
        "p50_decide",
        "p95_decide",
        "max_decide",
        "p50_r_ST",
        "mean_values",
        "bound_viol",
    ]


def latency_distribution(
    n: int,
    num_groups: int,
    noise: float,
    seeds: Sequence[int],
    topology: str = "cycle",
    jobs: int = 1,
    store=None,
) -> LatencyDistribution:
    """Run a seed ensemble through the engine and summarize latency."""
    specs = [
        ScenarioSpec(
            n=n,
            k=num_groups,
            num_groups=num_groups,
            seed=seed,
            noise=noise,
            topology=topology,
        )
        for seed in seeds
    ]
    # Infrastructure failures are not theory violations: a crashed
    # worker must not be tallied into bound_violations.
    results = require_ok(run_campaign(specs, store=store, jobs=jobs))
    last_rounds: list[int] = []
    stabilizations: list[int] = []
    value_counts: list[int] = []
    violations = 0
    for result in results:
        if result.last_decision_round is None:
            violations += 1
            continue
        last_rounds.append(result.last_decision_round)
        if result.stabilization is not None:
            stabilizations.append(result.stabilization)
        value_counts.append(result.distinct_decisions)
        if result.within_bound is False:
            violations += 1
    if not last_rounds:
        raise RuntimeError("no run produced decisions")
    arr = np.asarray(last_rounds, dtype=float)
    st_arr = np.asarray(stabilizations or [np.nan], dtype=float)
    return LatencyDistribution(
        n=n,
        num_groups=num_groups,
        noise=noise,
        runs=len(seeds),
        p50_last_decide=float(np.percentile(arr, 50)),
        p95_last_decide=float(np.percentile(arr, 95)),
        max_last_decide=int(arr.max()),
        p50_stabilization=float(np.nanpercentile(st_arr, 50)),
        mean_values=float(np.mean(value_counts)),
        bound_violations=violations,
    )


def latency_scaling_table(
    ns: Sequence[int],
    seeds: Sequence[int],
    num_groups: int = 2,
    noise: float = 0.2,
    jobs: int = 1,
    store=None,
) -> list[LatencyDistribution]:
    """LATENCY-DIST: percentile latencies vs n (linear per Lemma 11)."""
    return [
        latency_distribution(
            n, min(num_groups, n), noise, seeds, jobs=jobs, store=store
        )
        for n in ns
    ]


def noise_sensitivity_table(
    noises: Sequence[float],
    seeds: Sequence[int],
    n: int = 10,
    num_groups: int = 3,
    jobs: int = 1,
    store=None,
) -> list[LatencyDistribution]:
    """How transient noise shifts stabilization and value collapse:
    more noise → later stabilization (more edges must die) but also more
    early value leakage (fewer distinct decisions)."""
    return [
        latency_distribution(
            n, num_groups, noise, seeds, jobs=jobs, store=store
        )
        for noise in noises
    ]
