"""repro — a reproduction of *Solving k-Set Agreement with Stable Skeleton
Graphs* (Biely, Robinson, Schmid; IPDPS-W 2011, arXiv:1102.4423).

The package implements the paper's round-based computing model, skeleton
graphs, the ``Psrcs(k)`` communication predicate with an exact checker, the
stable-skeleton-approximation algorithm (Algorithm 1) for k-set agreement,
both impossibility constructions, classic baselines, and a benchmark harness
regenerating every figure- and theorem-shaped result.

Quickstart
----------
>>> from repro import GroupedSourceAdversary, make_processes, RoundSimulator
>>> adv = GroupedSourceAdversary(n=9, num_groups=3, seed=1, noise=0.2)
>>> run = RoundSimulator(make_processes(9), adv).run()
>>> len(run.decision_values()) <= 3   # k-agreement for k = 3
True

See ``examples/quickstart.py`` for the narrated version.
"""

from repro.adversaries import (
    Adversary,
    CrashAdversary,
    EventuallyGoodAdversary,
    GroupedSourceAdversary,
    MobileOmissionAdversary,
    PartitionAdversary,
    RecordedAdversary,
    ScheduleAdversary,
    StaticAdversary,
)
from repro.analysis import (
    AgreementReport,
    check_agreement_properties,
    decision_stats,
    message_stats,
)
from repro.core import (
    ApproximationGraph,
    SkeletonAgreementProcess,
    make_consensus_processes,
    make_processes,
)
from repro.engine import (
    AggregateTable,
    Campaign,
    CampaignReport,
    ExperimentSpec,
    ResultStore,
    ScenarioGrid,
    ScenarioResult,
    ScenarioSpec,
    agreement_grid,
    execute_scenario,
    execute_scenario_batch,
    execute_scenario_vectorized,
    execute_scenario_with_backend,
    execute_scenarios,
    family_campaign,
    family_names,
    get_family,
    latency_table,
    rollup,
    run_campaign,
    run_family,
    termination_grid,
)
from repro.experiments.sweeps import (
    SweepResult,
    agreement_sweep,
    run_algorithm1,
    termination_sweep,
)
from repro.graphs import DiGraph, RoundLabeledDigraph
from repro.predicates import Psrc, Psrcs, PTrue
from repro.rounds import (
    FastPathRun,
    FastPathTask,
    FastPathUnsupported,
    Message,
    Process,
    RoundSimulator,
    Run,
    SimulationConfig,
    simulate,
    simulate_fastpath,
    simulate_fastpath_batch,
)
from repro.skeleton import SkeletonTracker

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # rounds
    "Process",
    "Message",
    "RoundSimulator",
    "SimulationConfig",
    "Run",
    "simulate",
    "FastPathRun",
    "FastPathTask",
    "FastPathUnsupported",
    "simulate_fastpath",
    "simulate_fastpath_batch",
    # graphs
    "DiGraph",
    "RoundLabeledDigraph",
    # skeleton
    "SkeletonTracker",
    # predicates
    "Psrc",
    "Psrcs",
    "PTrue",
    # core
    "ApproximationGraph",
    "SkeletonAgreementProcess",
    "make_processes",
    "make_consensus_processes",
    # adversaries
    "Adversary",
    "RecordedAdversary",
    "StaticAdversary",
    "ScheduleAdversary",
    "GroupedSourceAdversary",
    "PartitionAdversary",
    "EventuallyGoodAdversary",
    "CrashAdversary",
    "MobileOmissionAdversary",
    # analysis
    "AgreementReport",
    "check_agreement_properties",
    "decision_stats",
    "message_stats",
    # experiments
    "SweepResult",
    "agreement_sweep",
    "run_algorithm1",
    "termination_sweep",
    # engine
    "AggregateTable",
    "Campaign",
    "CampaignReport",
    "ExperimentSpec",
    "ResultStore",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "agreement_grid",
    "execute_scenario",
    "execute_scenario_batch",
    "execute_scenario_vectorized",
    "execute_scenario_with_backend",
    "execute_scenarios",
    "family_campaign",
    "family_names",
    "get_family",
    "latency_table",
    "rollup",
    "run_campaign",
    "run_family",
    "termination_grid",
]
