"""Santoro–Widmayer style mobile omission faults.

Santoro and Widmayer's "Time is not a healer" model — cited by the paper as
the origin of the unified treatment of asynchrony and failures — allows a
bounded number of *end-to-end communication failures* per round, striking
arbitrary (moving) links.  This adversary implements that: each round it
removes up to ``per_round_omissions`` non-core edges from the complete
graph, choosing victims at random.

A *core* graph of protected edges is never touched.  Two uses:

* core = a grouped-source stable structure → a ``Psrcs(k)`` system under
  heavy transient lossage (stress test for Algorithm 1's approximation);
* core = self-loops only → no perpetual guarantee at all; ``Psrcs(n-1)``
  may or may not hold, and Algorithm 1's *approximation* must still be
  correct (Lemmas 3–8 are predicate-independent — the ALG-APPROX
  experiment exercises exactly this).
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class MobileOmissionAdversary(Adversary):
    """Per-round mobile omissions on top of a protected core.

    Parameters
    ----------
    n:
        Number of processes.
    per_round_omissions:
        Maximum number of (non-core, non-self-loop) edges removed per round.
    seed:
        Base RNG seed; per-round randomness derives from ``(seed, round)``.
    core:
        Edges never removed.  Defaults to self-loops only.  The declared
        stable skeleton is exactly the core plus self-loops *only if*
        omissions actually recur on every other edge; to make the
        declaration exact, every ``sweep_period`` rounds the adversary
        removes every non-core edge once (a "sweep" round), guaranteeing no
        non-core edge is timely forever.
    sweep_period:
        How often the sweep rounds occur (>= 1).
    """

    def __init__(
        self,
        n: int,
        per_round_omissions: int,
        seed: int = 0,
        core: DiGraph | None = None,
        sweep_period: int = 7,
    ) -> None:
        super().__init__(n)
        if per_round_omissions < 0:
            raise ValueError("per_round_omissions must be >= 0")
        if sweep_period < 1:
            raise ValueError("sweep_period must be >= 1")
        self.per_round_omissions = per_round_omissions
        self.seed = seed
        self.sweep_period = sweep_period
        base = self.base_graph()
        if core is not None:
            for u, v in core.iter_edges():
                base.add_edge(u, v)
        self._core = base
        # All removable edges (complete graph minus core minus self-loops).
        self._removable = [
            (u, v)
            for u in range(n)
            for v in range(n)
            if u != v and not self._core.has_edge(u, v)
        ]

    def graph(self, round_no: int) -> DiGraph:
        if round_no < 1:
            raise ValueError("rounds are 1-indexed")
        g = DiGraph.complete(range(self.n), self_loops=True)
        if round_no % self.sweep_period == 0:
            # Sweep round: only the core survives, so no non-core edge can
            # be timely in all rounds — the declaration is exact.
            return self._core.copy()
        if self.per_round_omissions and self._removable:
            rng = np.random.default_rng([self.seed, round_no])
            count = min(self.per_round_omissions, len(self._removable))
            idx = rng.choice(len(self._removable), size=count, replace=False)
            for i in np.atleast_1d(idx).tolist():
                g.discard_edge(*self._removable[i])
        return g

    def declared_stable_graph(self) -> DiGraph:
        return self._core
