"""Adversary interface.

An adversary chooses the communication graph of every round.  Because the
paper's predicates quantify over *infinite* runs (``PT(p)`` intersects all
rounds), a finite simulation can only evaluate them exactly if the adversary
*commits* to the edges it will keep timely forever.  Hence the two-method
interface:

* :meth:`Adversary.graph` — the round-``r`` communication graph; must be a
  supergraph of the declared stable edges in every round.
* :meth:`Adversary.declared_stable_graph` — the committed stable skeleton
  ``G^∩∞`` (or ``None`` if the adversary makes no commitment, e.g. ``Ptrue``).

:class:`RecordedAdversary` wraps any adversary and remembers the produced
graphs, so a run can be replayed deterministically (useful to feed the same
graph sequence to two different algorithms — the BASELINE experiment).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.graphs.digraph import DiGraph


class Adversary(abc.ABC):
    """Abstract adversary over a fixed process set ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("adversary needs at least one process")
        self.n = n

    @abc.abstractmethod
    def graph(self, round_no: int) -> DiGraph:
        """The communication graph ``G^r`` for round ``round_no`` (>= 1).

        Must contain exactly the nodes ``0..n-1`` and every edge of
        :meth:`declared_stable_graph` (when one is declared); the simulator
        adds missing self-loops when self-delivery is enforced.
        """

    def adjacency_stack(self, rounds: int, start: int = 1) -> np.ndarray:
        """A block of the run as one boolean tensor: ``stack[i]`` is the
        adjacency matrix of ``G^(start + i)`` for ``rounds`` consecutive
        rounds beginning at ``start``.

        This is the batch entry point of the vectorized simulation fast
        path (:mod:`repro.rounds.fastpath`), which pulls the schedule in
        blocks so early-deciding runs never pay for the full round budget.
        The contract is exactness: ``stack[i]`` must equal
        ``to_adjacency(self.graph(start + i), n)`` bit for bit — same
        seeds, same RNG streams — so that the fast path and the reference
        :class:`~repro.rounds.simulator.RoundSimulator` observe the *same*
        run.  This default honors the contract by falling back through
        :meth:`graph`; subclasses with vectorizable randomness override it
        to build the tensor without materializing per-round
        :class:`DiGraph` objects.
        """
        from repro.graphs.generators import to_adjacency

        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if start < 1:
            raise ValueError("rounds are 1-indexed")
        stack = np.zeros((rounds, self.n, self.n), dtype=bool)
        for i in range(rounds):
            stack[i] = to_adjacency(self.graph(start + i), self.n)
        return stack

    def schedule_fingerprint(self, rounds: int, start: int = 1) -> str:
        """A content hash of the ``[start, start + rounds)`` schedule block.

        Purity witness for the :meth:`adjacency_stack` contract: because
        the stack must be a pure function of ``(rounds, start)``, calling
        this twice — or on a fresh adversary built from the same spec —
        must return the same digest.  The runtime contract layer
        (``repro.engine.contracts``, checkpoint
        ``adversary.block_fetch_purity``) enforces the same invariant by
        re-fetching sampled blocks inside the kernels; this helper is the
        cheap, kernel-free way for tests and fuzzers to compare whole
        schedules across adversary instances."""
        import hashlib

        stack = np.ascontiguousarray(
            np.asarray(self.adjacency_stack(rounds, start), dtype=bool)
        )
        digest = hashlib.sha256()
        digest.update(f"{self.n}:{rounds}:{start}".encode())
        digest.update(np.packbits(stack).tobytes())
        return digest.hexdigest()

    def _constant_stack(self, graph: DiGraph, rounds: int, start: int) -> np.ndarray:
        """One conversion of ``graph`` broadcast across ``rounds`` rounds —
        the :meth:`adjacency_stack` body shared by every adversary whose
        run is static (partition, static, ...)."""
        from repro.graphs.generators import to_adjacency

        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if start < 1:
            raise ValueError("rounds are 1-indexed")
        base = to_adjacency(graph, self.n)
        return np.broadcast_to(base, (rounds, self.n, self.n)).copy()

    def declared_stable_matrix(self) -> np.ndarray | None:
        """The declared stable skeleton as a boolean adjacency matrix
        (``None`` when the adversary makes no commitment)."""
        from repro.graphs.generators import to_adjacency

        stable = self.declared_stable_graph()
        if stable is None:
            return None
        return to_adjacency(stable, self.n)

    def declared_stable_graph(self) -> DiGraph | None:
        """The committed-forever edge set, i.e. the true ``G^∩∞``.

        Subclasses that construct runs satisfying a predicate *by design*
        override this; the default makes no commitment.
        """
        return None

    def base_graph(self) -> DiGraph:
        """An all-nodes, self-loops-only starting graph (helper)."""
        g = DiGraph(nodes=range(self.n))
        for p in range(self.n):
            g.add_edge(p, p)
        return g

    def _validate_stable_subset(self, graph: DiGraph, round_no: int) -> DiGraph:
        """Debug helper: assert the declared stable edges are present."""
        stable = self.declared_stable_graph()
        if stable is not None:
            missing = [
                e for e in stable.iter_edges() if not graph.has_edge(*e)
            ]
            if missing:
                raise AssertionError(
                    f"round {round_no}: adversary dropped declared stable "
                    f"edges {missing}"
                )
        return graph


class RecordedAdversary(Adversary):
    """Wraps an adversary, recording every produced graph for replay.

    The wrapped adversary is consulted the first time each round is
    requested; repeated requests for the same round return the recorded
    graph, so two simulations driven by the same :class:`RecordedAdversary`
    instance observe the *same* run (graph-sequence-wise).
    """

    def __init__(self, inner: Adversary) -> None:
        super().__init__(inner.n)
        self.inner = inner
        self._recorded: dict[int, DiGraph] = {}

    def graph(self, round_no: int) -> DiGraph:
        if round_no not in self._recorded:
            self._recorded[round_no] = self.inner.graph(round_no)
        return self._recorded[round_no]

    def declared_stable_graph(self) -> DiGraph | None:
        return self.inner.declared_stable_graph()

    def recorded_rounds(self) -> list[int]:
        return sorted(self._recorded)


class ReplayAdversary(Adversary):
    """Replays an explicit pre-recorded graph sequence.

    Rounds beyond the sequence repeat the last graph (a run must be
    extensible to infinity; repeating the tail preserves any predicate the
    tail satisfies).
    """

    def __init__(
        self,
        n: int,
        graphs: list[DiGraph],
        stable: DiGraph | None = None,
    ) -> None:
        super().__init__(n)
        if not graphs:
            raise ValueError("replay needs at least one graph")
        self.graphs = list(graphs)
        self._stable = stable

    def graph(self, round_no: int) -> DiGraph:
        idx = min(round_no - 1, len(self.graphs) - 1)
        return self.graphs[idx]

    def declared_stable_graph(self) -> DiGraph | None:
        if self._stable is not None:
            return self._stable
        # The tail repeats the final graph forever, so the true stable
        # skeleton is the intersection of all scheduled graphs.
        stable = self.graphs[0].copy()
        for g in self.graphs[1:]:
            stable = stable.intersection(g)
        return stable
