"""Adversary interface.

An adversary chooses the communication graph of every round.  Because the
paper's predicates quantify over *infinite* runs (``PT(p)`` intersects all
rounds), a finite simulation can only evaluate them exactly if the adversary
*commits* to the edges it will keep timely forever.  Hence the two-method
interface:

* :meth:`Adversary.graph` — the round-``r`` communication graph; must be a
  supergraph of the declared stable edges in every round.
* :meth:`Adversary.declared_stable_graph` — the committed stable skeleton
  ``G^∩∞`` (or ``None`` if the adversary makes no commitment, e.g. ``Ptrue``).

:class:`RecordedAdversary` wraps any adversary and remembers the produced
graphs, so a run can be replayed deterministically (useful to feed the same
graph sequence to two different algorithms — the BASELINE experiment).
"""

from __future__ import annotations

import abc

from repro.graphs.digraph import DiGraph


class Adversary(abc.ABC):
    """Abstract adversary over a fixed process set ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("adversary needs at least one process")
        self.n = n

    @abc.abstractmethod
    def graph(self, round_no: int) -> DiGraph:
        """The communication graph ``G^r`` for round ``round_no`` (>= 1).

        Must contain exactly the nodes ``0..n-1`` and every edge of
        :meth:`declared_stable_graph` (when one is declared); the simulator
        adds missing self-loops when self-delivery is enforced.
        """

    def declared_stable_graph(self) -> DiGraph | None:
        """The committed-forever edge set, i.e. the true ``G^∩∞``.

        Subclasses that construct runs satisfying a predicate *by design*
        override this; the default makes no commitment.
        """
        return None

    def base_graph(self) -> DiGraph:
        """An all-nodes, self-loops-only starting graph (helper)."""
        g = DiGraph(nodes=range(self.n))
        for p in range(self.n):
            g.add_edge(p, p)
        return g

    def _validate_stable_subset(self, graph: DiGraph, round_no: int) -> DiGraph:
        """Debug helper: assert the declared stable edges are present."""
        stable = self.declared_stable_graph()
        if stable is not None:
            missing = [
                e for e in stable.iter_edges() if not graph.has_edge(*e)
            ]
            if missing:
                raise AssertionError(
                    f"round {round_no}: adversary dropped declared stable "
                    f"edges {missing}"
                )
        return graph


class RecordedAdversary(Adversary):
    """Wraps an adversary, recording every produced graph for replay.

    The wrapped adversary is consulted the first time each round is
    requested; repeated requests for the same round return the recorded
    graph, so two simulations driven by the same :class:`RecordedAdversary`
    instance observe the *same* run (graph-sequence-wise).
    """

    def __init__(self, inner: Adversary) -> None:
        super().__init__(inner.n)
        self.inner = inner
        self._recorded: dict[int, DiGraph] = {}

    def graph(self, round_no: int) -> DiGraph:
        if round_no not in self._recorded:
            self._recorded[round_no] = self.inner.graph(round_no)
        return self._recorded[round_no]

    def declared_stable_graph(self) -> DiGraph | None:
        return self.inner.declared_stable_graph()

    def recorded_rounds(self) -> list[int]:
        return sorted(self._recorded)


class ReplayAdversary(Adversary):
    """Replays an explicit pre-recorded graph sequence.

    Rounds beyond the sequence repeat the last graph (a run must be
    extensible to infinity; repeating the tail preserves any predicate the
    tail satisfies).
    """

    def __init__(
        self,
        n: int,
        graphs: list[DiGraph],
        stable: DiGraph | None = None,
    ) -> None:
        super().__init__(n)
        if not graphs:
            raise ValueError("replay needs at least one graph")
        self.graphs = list(graphs)
        self._stable = stable

    def graph(self, round_no: int) -> DiGraph:
        idx = min(round_no - 1, len(self.graphs) - 1)
        return self.graphs[idx]

    def declared_stable_graph(self) -> DiGraph | None:
        if self._stable is not None:
            return self._stable
        # The tail repeats the final graph forever, so the true stable
        # skeleton is the intersection of all scheduled graphs.
        stable = self.graphs[0].copy()
        for g in self.graphs[1:]:
            stable = stable.intersection(g)
        return stable
