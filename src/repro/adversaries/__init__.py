"""Adversaries: the network side of a run.

In the paper's model, a run is determined by the initial states and the
sequence of communication graphs — the latter is chosen by an *adversary*
constrained only by the system's communication predicate.  Each adversary in
this package produces a per-round :class:`~repro.graphs.digraph.DiGraph` and
*declares* the set of edges it guarantees to keep timely forever, so the
analysis layer can compute the true stable skeleton ``G^∩∞`` and evaluate
predicates exactly on finite prefixes.

Inventory
---------
* :class:`~repro.adversaries.static.StaticAdversary` — the same graph every
  round (fully synchronous special case).
* :class:`~repro.adversaries.static.ScheduleAdversary` — an explicit finite
  schedule with a static tail (used to encode Figure 1).
* :class:`~repro.adversaries.grouped.GroupedSourceAdversary` — the workhorse:
  constructs runs satisfying ``Psrcs(k)`` *by design* with a tunable number
  of root components plus per-round random noise.
* :class:`~repro.adversaries.partition.PartitionAdversary` — the Theorem 2
  impossibility construction (`k-1` loners + one 2-source).
* :class:`~repro.adversaries.eventual.EventuallyGoodAdversary` — ``♦Psrcs``:
  an arbitrary bad prefix followed by a good adversary.
* :class:`~repro.adversaries.crash.CrashAdversary` — classic synchronous
  crash faults (crashed = internally correct, outgoing edges removed).
* :class:`~repro.adversaries.mobile.MobileOmissionAdversary` — Santoro-
  Widmayer style per-round mobile omission faults.
"""

from repro.adversaries.base import Adversary, RecordedAdversary, ReplayAdversary
from repro.adversaries.static import StaticAdversary, ScheduleAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.adversaries.eventual import EventuallyGoodAdversary
from repro.adversaries.crash import CrashAdversary
from repro.adversaries.mobile import MobileOmissionAdversary
from repro.adversaries.synthesis import SkeletonRealizingAdversary

__all__ = [
    "Adversary",
    "RecordedAdversary",
    "ReplayAdversary",
    "StaticAdversary",
    "ScheduleAdversary",
    "GroupedSourceAdversary",
    "PartitionAdversary",
    "EventuallyGoodAdversary",
    "CrashAdversary",
    "MobileOmissionAdversary",
    "SkeletonRealizingAdversary",
]
