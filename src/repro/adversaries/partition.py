"""The Theorem 2 impossibility construction.

Theorem 2 proves that no algorithm solves ``(k-1)``-set agreement in system
``Psrcs(k)`` by exhibiting a run ``α`` with ``k`` forced decision values:

* a set ``L`` of ``k - 1`` *loners* that only ever hear from themselves
  (``PT(p) = {p}`` and — crucially for the indistinguishability argument —
  no transient in-edges either, so they can never learn another value);
* one process ``s`` such that every process outside ``L`` hears exactly from
  itself and ``s``: ``PT(p) = {p, s}``.

``Psrcs(k)`` holds: for any ``S`` with ``|S| = k + 1``, the set ``S \\ L``
has at least two members, each of which permanently hears from ``s`` — so
``s`` is the 2-source (the paper's proof verbatim).

Validity + termination force each loner and ``s`` to decide their own input;
with pairwise distinct inputs that is ``k`` distinct values.  Running
Algorithm 1 on this adversary therefore must produce *exactly* ``k`` values —
the THM2 experiment checks this.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class PartitionAdversary(Adversary):
    """The run ``α`` from the proof of Theorem 2.

    Parameters
    ----------
    n:
        Number of processes (needs ``n > k`` so that ``Π \\ L`` has >= 2
        members, matching the theorem's ``1 < k < n``).
    k:
        The agreement parameter: the construction produces ``k - 1`` loners
        and forces ``k`` decision values.
    loners:
        Explicit loner set (default: processes ``1..k-1``).
    source:
        The 2-source ``s`` (default: process ``0``); must not be a loner.
    """

    def __init__(
        self,
        n: int,
        k: int,
        loners: Sequence[int] | None = None,
        source: int = 0,
    ) -> None:
        super().__init__(n)
        if not 1 <= k < n:
            raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
        if loners is None:
            loners = [p for p in range(n) if p != source][: k - 1]
        self.loners = frozenset(loners)
        if len(self.loners) != k - 1:
            raise ValueError(
                f"need exactly k-1={k-1} loners, got {len(self.loners)}"
            )
        if source in self.loners:
            raise ValueError("the source must not be a loner")
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range")
        self.k = k
        self.source = source
        g = self.base_graph()
        for p in range(n):
            if p not in self.loners:
                g.add_edge(source, p)
        self._graph = g

    def graph(self, round_no: int) -> DiGraph:
        # The construction is fully static: the indistinguishability argument
        # needs loners (and s) to receive nothing extra in *any* round.
        return self._graph

    def adjacency_stack(self, rounds: int, start: int = 1):
        """One conversion, broadcast across all rounds (the run is static)."""
        return self._constant_stack(self._graph, rounds, start)

    def declared_stable_graph(self) -> DiGraph:
        return self._graph

    def forced_decision_count(self) -> int:
        """The number of decision values any correct algorithm must produce
        on this run with pairwise distinct inputs: ``k`` (the ``k-1`` loners
        plus ``s`` each decide their own input)."""
        return self.k

    def isolated_deciders(self) -> frozenset[int]:
        """Processes forced to decide their own value: ``L ∪ {s}``."""
        return self.loners | {self.source}
