"""Classic synchronous crash faults.

The HO-style modeling of §II: a crashed process is an "internally correct"
process that no other process receives messages from after it crashes.  The
simulator keeps executing it; this adversary removes its outgoing edges
(except the self-loop — a process always hears itself).

Semantics of a crash at round ``r_c`` (``clean=False``):

* rounds ``< r_c``: all outgoing edges present;
* round ``r_c``: an arbitrary adversary-chosen subset of receivers still
  gets the message (the classic "crash during broadcast" partial delivery);
* rounds ``> r_c``: no outgoing edges.

With ``clean=True`` the crash round delivers to nobody.

This is the substrate for the BASELINE experiment: FloodMin assumes this
fault model (at most ``f`` crashes, everything else synchronous); the
skeleton-agreement algorithm works here too, since the stable skeleton of a
crash run contains the complete graph among never-crashed processes —
a single root component, so Algorithm 1 even reaches consensus (the §V
remark that the algorithm solves consensus in well-behaved runs).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class CrashAdversary(Adversary):
    """At most ``f`` crash faults in an otherwise fully synchronous system.

    Parameters
    ----------
    n:
        Number of processes.
    crash_rounds:
        Mapping ``pid -> round`` of crash times (round >= 1).
    seed:
        Seed for the partial-delivery choices in crash rounds.
    clean:
        If True, a crashing process delivers to nobody in its crash round.
    """

    def __init__(
        self,
        n: int,
        crash_rounds: Mapping[int, int],
        seed: int = 0,
        clean: bool = False,
    ) -> None:
        super().__init__(n)
        for pid, rnd in crash_rounds.items():
            if not 0 <= pid < n:
                raise ValueError(f"crashing pid {pid} out of range")
            if rnd < 1:
                raise ValueError(f"crash round {rnd} must be >= 1")
        if len(crash_rounds) >= n:
            raise ValueError("at least one process must never crash")
        self.crash_rounds = dict(crash_rounds)
        self.seed = seed
        self.clean = clean
        survivors = [p for p in range(n) if p not in self.crash_rounds]
        # Stable skeleton: self-loops + every edge whose sender never
        # crashes.  (A crashed sender's edges disappear from its crash round
        # on, so they are not timely in all rounds.)
        g = self.base_graph()
        for u in survivors:
            for v in range(n):
                g.add_edge(u, v)
        self._stable = g
        self.survivors = frozenset(survivors)

    @property
    def f(self) -> int:
        """Number of crash faults."""
        return len(self.crash_rounds)

    def graph(self, round_no: int) -> DiGraph:
        if round_no < 1:
            raise ValueError("rounds are 1-indexed")
        g = self.base_graph()
        for u in range(self.n):
            crash = self.crash_rounds.get(u)
            if crash is None or round_no < crash:
                receivers = range(self.n)
            elif round_no == crash and not self.clean:
                # Partial delivery: a per-(process, round) deterministic
                # random subset of receivers.
                rng = np.random.default_rng([self.seed, u, round_no])
                mask = rng.random(self.n) < 0.5
                receivers = [v for v in range(self.n) if mask[v]]
            else:
                receivers = []
            for v in receivers:
                g.add_edge(u, v)
        return g

    def adjacency_stack(self, rounds: int, start: int = 1) -> np.ndarray:
        """A block of the run in one pass: all-ones rows, crashed senders'
        rows cleared from their crash round on, one ``(seed, u, crash)``
        partial-delivery draw per crash — the identical streams
        :meth:`graph` consumes, so the tensor matches it bit for bit."""
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if start < 1:
            raise ValueError("rounds are 1-indexed")
        n = self.n
        stack = np.ones((rounds, n, n), dtype=bool)
        end = start + rounds - 1
        for u, crash in self.crash_rounds.items():
            if crash < start:
                stack[:, u, :] = False
            elif crash <= end:
                local = crash - start
                stack[local + 1 :, u, :] = False
                if self.clean:
                    stack[local, u, :] = False
                else:
                    rng = np.random.default_rng([self.seed, u, crash])
                    stack[local, u, :] = rng.random(n) < 0.5
        # base_graph() self-loops: a process always hears itself.
        idx = np.arange(n)
        stack[:, idx, idx] = True
        return stack

    def declared_stable_graph(self) -> DiGraph:
        return self._stable
