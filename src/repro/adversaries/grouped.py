"""The grouped-source adversary: ``Psrcs(k)`` runs by construction.

Construction
------------
Partition the process set into ``m`` nonempty groups; in each group ``i``
designate a *source* ``s_i`` and keep the edges ``s_i -> q`` timely forever
for every member ``q`` of group ``i``.

**Why this satisfies** ``Psrcs(m)`` (and hence ``Psrcs(k)`` for every
``k >= m``, by monotonicity): any set ``S`` of ``m + 1`` processes contains —
pigeonhole over the ``m`` groups — two distinct processes ``q, q'`` of the
same group ``i``; its source satisfies ``s_i ∈ PT(q) ∩ PT(q')``, so ``s_i``
is the required 2-source.  This mirrors exactly how Theorem 2's run satisfies
the predicate (there ``m = k`` with ``k-1`` singleton groups and one big
group around ``s``).

Group topologies (stable intra-group edges on top of the mandatory out-star
from the source):

* ``"star"`` — only ``s_i -> members``.  Each source is a singleton root
  component; other members are non-root singletons.
* ``"cycle"`` — a bidirectional cycle through the group's members plus the
  star.  The whole group is one strongly connected root component.
* ``"clique"`` — all-to-all inside the group; likewise one root component.

With ``m`` groups and no stable cross-group edges, the stable skeleton has
exactly ``m`` root components, making Theorem 1's ``<= k`` bound tight at
``m = k``.  Optional ``extra_stable_edges`` let experiments add stable
cross-group edges (turning target groups into non-root components).

Noise: on top of the stable edges, every other ordered pair appears in a
given round independently with probability ``noise``.  To keep the declared
stable skeleton *exact* (not just a lower bound), every ``quiet_period``-th
round plays exactly the stable graph — hence no noise edge is timely in all
rounds, and the true ``G^∩∞`` equals the declaration.

Randomness is derived per round from ``(seed, round_no)``, so the adversary
is a pure function of the round number — replays and repeated queries are
consistent by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class GroupedSourceAdversary(Adversary):
    """See module docstring.

    Parameters
    ----------
    n:
        Number of processes.
    num_groups:
        ``m`` — number of groups; guarantees ``Psrcs(m)``.
    seed:
        Base seed for the per-round noise RNG.
    noise:
        Probability for each non-stable ordered pair to appear in a noisy
        round.
    quiet_period:
        Every ``quiet_period``-th round is noise-free (must be >= 1; with 1
        every round is exactly the stable graph).
    topology:
        ``"star"``, ``"cycle"`` or ``"clique"`` (see module docstring).
    groups:
        Explicit partition (list of disjoint, covering member lists; the
        first member of each is its source).  Defaults to contiguous
        near-equal blocks.
    extra_stable_edges:
        Additional edges kept timely forever (e.g. cross-group downstream
        links).
    """

    def __init__(
        self,
        n: int,
        num_groups: int,
        seed: int = 0,
        noise: float = 0.0,
        quiet_period: int = 5,
        topology: str = "cycle",
        groups: Sequence[Sequence[int]] | None = None,
        extra_stable_edges: Iterable[tuple[int, int]] = (),
    ) -> None:
        super().__init__(n)
        if groups is None:
            groups = _contiguous_partition(n, num_groups)
        self.groups = [list(g) for g in groups]
        _validate_partition(n, self.groups)
        if len(self.groups) != num_groups:
            raise ValueError(
                f"expected {num_groups} groups, got {len(self.groups)}"
            )
        if topology not in ("star", "cycle", "clique"):
            raise ValueError(f"unknown topology {topology!r}")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        if quiet_period < 1:
            raise ValueError("quiet_period must be >= 1")
        self.num_groups = num_groups
        self.seed = seed
        self.noise = noise
        self.quiet_period = quiet_period
        self.topology = topology
        self.sources = [g[0] for g in self.groups]
        self._stable = self._build_stable(extra_stable_edges)
        # Lazily cached adjacency of the stable graph (adjacency_stack).
        self._stable_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _build_stable(self, extra: Iterable[tuple[int, int]]) -> DiGraph:
        g = self.base_graph()  # self-loops everywhere
        for group in self.groups:
            source = group[0]
            for member in group:
                g.add_edge(source, member)  # the mandatory out-star
            if self.topology == "cycle" and len(group) > 1:
                for i in range(len(group)):
                    a, b = group[i], group[(i + 1) % len(group)]
                    g.add_edge(a, b)
                    g.add_edge(b, a)
            elif self.topology == "clique":
                for a in group:
                    for b in group:
                        g.add_edge(a, b)
        for u, v in extra:
            g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    def graph(self, round_no: int) -> DiGraph:
        if round_no < 1:
            raise ValueError("rounds are 1-indexed")
        g = self._stable.copy()
        if self.noise > 0.0 and round_no % self.quiet_period != 0:
            rng = np.random.default_rng([self.seed, round_no])
            mask = rng.random((self.n, self.n)) < self.noise
            rows, cols = np.nonzero(mask)
            for u, v in zip(rows.tolist(), cols.tolist()):
                g.add_edge(u, v)
        return g

    def adjacency_stack(self, rounds: int, start: int = 1) -> np.ndarray:
        """A block of the run as one tensor, without per-round ``DiGraph``
        objects: the stable matrix broadcast across rounds, OR-ed with the
        per-round Bernoulli noise masks.  Each mask comes from the same
        ``(seed, round)`` RNG stream :meth:`graph` uses, so the tensor is
        bit-identical to the per-round graphs."""
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if start < 1:
            raise ValueError("rounds are 1-indexed")
        from repro.graphs.generators import to_adjacency

        if self._stable_matrix is None:
            self._stable_matrix = to_adjacency(self._stable, self.n)
        stack = np.broadcast_to(
            self._stable_matrix, (rounds, self.n, self.n)
        ).copy()
        if self.noise > 0.0:
            for i in range(rounds):
                r = start + i
                if r % self.quiet_period != 0:
                    rng = np.random.default_rng([self.seed, r])
                    stack[i] |= rng.random((self.n, self.n)) < self.noise
        return stack

    def declared_stable_graph(self) -> DiGraph:
        return self._stable

    # ------------------------------------------------------------------
    def group_of(self, pid: int) -> int:
        """Index of the group containing ``pid``."""
        for idx, group in enumerate(self.groups):
            if pid in group:
                return idx
        raise KeyError(pid)

    def two_source_for(self, subset: Iterable[int]) -> tuple[int, int, int]:
        """A certified 2-source witness ``(p, q, q')`` for ``subset``.

        For any subset with two members in the same group this returns that
        group's source and the two members — the constructive content of the
        pigeonhole argument.  Raises if the subset has at most one member
        per group (only possible for ``|subset| <= m``).
        """
        seen: dict[int, int] = {}
        for q in subset:
            gid = self.group_of(q)
            if gid in seen:
                return (self.sources[gid], seen[gid], q)
            seen[gid] = q
        raise ValueError(
            f"subset {sorted(subset)} has at most one member per group; "
            "no pigeonhole witness"
        )


def _contiguous_partition(n: int, m: int) -> list[list[int]]:
    """Split ``0..n-1`` into ``m`` contiguous near-equal blocks."""
    if not 1 <= m <= n:
        raise ValueError(f"need 1 <= num_groups <= n, got m={m}, n={n}")
    bounds = np.linspace(0, n, m + 1).astype(int)
    return [list(range(bounds[i], bounds[i + 1])) for i in range(m)]


def _validate_partition(n: int, groups: list[list[int]]) -> None:
    flat = [p for g in groups for p in g]
    if sorted(flat) != list(range(n)):
        raise ValueError(
            "groups must be disjoint, nonempty and cover exactly 0..n-1"
        )
    if any(not g for g in groups):
        raise ValueError("groups must be nonempty")
