"""``♦Psrcs(k)``: the eventually-good adversary.

Section III argues that the *eventual* variant of the predicate — (8) holds
only from some round on — is too weak for k-set agreement: it admits runs
where every process forms a root component by itself for a finite number of
rounds, during which a correct algorithm (unable to distinguish this prefix
from the infinite all-isolated run) must decide on its own value.  With a
long enough bad prefix, **all n processes decide n distinct values**.

:class:`EventuallyGoodAdversary` realizes exactly that: ``bad_rounds``
rounds of a (default: self-loops-only) bad graph, then delegation to any
good adversary.  The declared stable skeleton is the intersection of the bad
graph with the good adversary's declaration — for the default bad graph,
just the self-loops.

The EVENTUAL-LB experiment sweeps ``bad_rounds`` and shows the number of
distinct decisions of Algorithm 1 jumping from ``<= k`` (short prefixes,
decisions happen after stabilization) to ``n`` once the prefix exceeds the
decision latency — the paper's lower-bound intuition made quantitative.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class EventuallyGoodAdversary(Adversary):
    """A bad prefix followed by a good adversary.

    Parameters
    ----------
    good:
        The adversary controlling rounds ``> bad_rounds``.
    bad_rounds:
        Length of the bad prefix.
    bad_graph:
        Communication graph during the prefix; defaults to self-loops only
        (every process a root component by itself — the paper's scenario).
    """

    def __init__(
        self,
        good: Adversary,
        bad_rounds: int,
        bad_graph: DiGraph | None = None,
    ) -> None:
        super().__init__(good.n)
        if bad_rounds < 0:
            raise ValueError("bad_rounds must be >= 0")
        self.good = good
        self.bad_rounds = bad_rounds
        self._bad = bad_graph.with_self_loops() if bad_graph is not None else self.base_graph()
        if self._bad.nodes() != frozenset(range(self.n)):
            raise ValueError("bad graph nodes must be exactly 0..n-1")

    def graph(self, round_no: int) -> DiGraph:
        if round_no <= self.bad_rounds:
            return self._bad
        return self.good.graph(round_no)

    def adjacency_stack(self, rounds: int, start: int = 1) -> np.ndarray:
        """One bad-matrix broadcast for the prefix, then the good
        adversary's own batch API for the tail — bit-identical to the
        per-round :meth:`graph` sequence (the good adversary's stack is
        keyed by absolute round numbers, so the handoff is seamless)."""
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if start < 1:
            raise ValueError("rounds are 1-indexed")
        from repro.graphs.generators import to_adjacency

        stack = np.empty((rounds, self.n, self.n), dtype=bool)
        bad_count = max(0, min(self.bad_rounds - start + 1, rounds))
        if bad_count:
            stack[:bad_count] = to_adjacency(self._bad, self.n)
        if bad_count < rounds:
            stack[bad_count:] = self.good.adjacency_stack(
                rounds - bad_count, start + bad_count
            )
        return stack

    def declared_stable_graph(self) -> DiGraph | None:
        good_stable = self.good.declared_stable_graph()
        if good_stable is None:
            return None
        if self.bad_rounds == 0:
            return good_stable
        return good_stable.intersection(self._bad)

    def holds_from_round(self) -> int:
        """The round from which the good predicate holds (``bad_rounds+1``)."""
        return self.bad_rounds + 1
