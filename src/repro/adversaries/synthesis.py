"""Adversary synthesis: realize an arbitrary target stable skeleton.

The duality experiments (§V exploration) need *runs* whose stable skeleton
is an arbitrary given graph — e.g. the directed chain with its unbounded
``α − rc`` gap.  :class:`SkeletonRealizingAdversary` takes any target
digraph and produces a run whose stable skeleton is exactly that graph:

* every round contains all target edges (plus self-loops);
* non-target edges appear as recurring noise, but every ``quiet_period``-th
  round is noise-free, so no noise edge is timely forever — the declaration
  is exact, as with the grouped adversary.

This closes the loop on the characterization question: Theorem 1 bounds
decision values by ``k`` whenever ``Psrcs(k)`` holds, but Algorithm 1's
actual guarantee tracks the *root components* of the realized skeleton
(Lemma 15).  On a directed chain (``rc = 1``, ``α = ⌈n/2⌉``) the synthesized
run shows Algorithm 1 deciding a single value even though the tightest
``Psrcs`` level is huge — the predicate is sufficient, not necessary.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class SkeletonRealizingAdversary(Adversary):
    """A run with a prescribed stable skeleton.

    Parameters
    ----------
    target:
        The desired stable skeleton on nodes ``0..n-1``.  Self-loops are
        added (the model's convention).
    seed, noise, quiet_period:
        Same semantics as the grouped adversary: per-round noise over
        non-target ordered pairs, with recurring noise-free rounds keeping
        the declaration exact.
    """

    def __init__(
        self,
        target: DiGraph,
        seed: int = 0,
        noise: float = 0.0,
        quiet_period: int = 5,
    ) -> None:
        nodes = target.nodes()
        n = len(nodes)
        if nodes != frozenset(range(n)):
            raise ValueError("target nodes must be exactly 0..n-1")
        super().__init__(n)
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        if quiet_period < 1:
            raise ValueError("quiet_period must be >= 1")
        self._stable = target.with_self_loops()
        self.seed = seed
        self.noise = noise
        self.quiet_period = quiet_period

    def graph(self, round_no: int) -> DiGraph:
        if round_no < 1:
            raise ValueError("rounds are 1-indexed")
        g = self._stable.copy()
        if self.noise > 0.0 and round_no % self.quiet_period != 0:
            rng = np.random.default_rng([self.seed, round_no])
            mask = rng.random((self.n, self.n)) < self.noise
            rows, cols = np.nonzero(mask)
            for u, v in zip(rows.tolist(), cols.tolist()):
                g.add_edge(u, v)
        return g

    def declared_stable_graph(self) -> DiGraph:
        return self._stable
