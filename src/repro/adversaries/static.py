"""Static and scheduled adversaries.

:class:`StaticAdversary` plays the same graph in every round — the fully
"perpetually synchronous" special case where ``G^r = G^∩r = G^∩∞`` for all
``r``.  :class:`ScheduleAdversary` plays an explicit finite schedule and then
a static tail; Figure 1's run is encoded this way (extra edges in the early
rounds that later turn untimely).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph


class StaticAdversary(Adversary):
    """The same communication graph in every round."""

    def __init__(self, n: int, graph: DiGraph, self_loops: bool = True) -> None:
        super().__init__(n)
        g = graph.with_self_loops() if self_loops else graph.copy()
        if g.nodes() != frozenset(range(n)):
            raise ValueError(
                f"graph nodes {sorted(g.nodes(), key=repr)} do not match 0..{n-1}"
            )
        self._graph = g

    def graph(self, round_no: int) -> DiGraph:
        return self._graph

    def adjacency_stack(self, rounds: int, start: int = 1):
        """One conversion, broadcast across all rounds (the run is static)."""
        return self._constant_stack(self._graph, rounds, start)

    def declared_stable_graph(self) -> DiGraph:
        return self._graph


class ScheduleAdversary(Adversary):
    """An explicit schedule of graphs followed by a static tail.

    Parameters
    ----------
    n:
        Number of processes.
    schedule:
        Graphs for rounds ``1..len(schedule)``.
    tail:
        Graph for every round after the schedule.  Defaults to the last
        scheduled graph.  The declared stable skeleton is the intersection
        of all scheduled graphs and the tail (exact, since the tail repeats
        forever).
    self_loops:
        Add self-loops to every graph (the paper's convention).
    """

    def __init__(
        self,
        n: int,
        schedule: Sequence[DiGraph],
        tail: DiGraph | None = None,
        self_loops: bool = True,
    ) -> None:
        super().__init__(n)
        if not schedule and tail is None:
            raise ValueError("need a schedule or a tail")
        fix = (lambda g: g.with_self_loops()) if self_loops else (lambda g: g.copy())
        self._schedule = [fix(g) for g in schedule]
        self._tail = fix(tail) if tail is not None else self._schedule[-1]
        for idx, g in enumerate([*self._schedule, self._tail]):
            if g.nodes() != frozenset(range(n)):
                raise ValueError(f"graph #{idx} nodes do not match 0..{n-1}")
        stable = self._tail.copy()
        for g in self._schedule:
            stable = stable.intersection(g)
        self._stable = stable

    def graph(self, round_no: int) -> DiGraph:
        if round_no < 1:
            raise ValueError("rounds are 1-indexed")
        if round_no <= len(self._schedule):
            return self._schedule[round_no - 1]
        return self._tail

    def declared_stable_graph(self) -> DiGraph:
        return self._stable
