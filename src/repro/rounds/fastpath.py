"""Vectorized fast-path execution of Algorithm 1.

The reference :class:`~repro.rounds.simulator.RoundSimulator` is exact but
allocation-bound: every (process, round) builds a :class:`Message`, a
received-dict and a :class:`RoundLabeledDigraph` merge — O(n · rounds)
Python objects per run, which profiling shows dominates the campaign
ensembles.  This module re-expresses one *whole run* as tensor algebra so
each round costs a handful of NumPy kernel calls, independent of ``n`` at
the Python level:

* the communication schedule is an ``(R, n, n)`` boolean adjacency tensor
  (:meth:`~repro.adversaries.base.Adversary.adjacency_stack`);
* the ``n`` per-process timely sets ``PT_p`` live in one ``(n, n)`` mask,
  updated per round by one transposed AND (equation (7));
* the ``n`` per-process approximation graphs ``G_p`` live in one
  ``(n, n, n)`` round-label tensor (``labels[p, i, j]`` = the label of
  edge ``i -> j`` in ``G_p``, 0 = absent).  Lines 14–23 (reset, fresh
  in-edges, max-merge over received graphs) become a masked maximum over
  the sender axis; line 24 (purge) is a threshold; line 25 (prune) and
  line 28 (strong connectivity) come from one batched transitive closure
  (:func:`repro.graphs.matrices.batched_transitive_closure`);
* min-estimate propagation (line 27) and decide adoption (lines 10–13)
  are masked reductions over the beginning-of-round estimate vector.

Equivalence with the reference simulator is a hard contract, not a
best-effort approximation: the update order mirrors Algorithm 1's
line-by-line semantics (including adoption from the *smallest* decided
sender id and decided processes continuing their graph updates), and
``tests/test_fastpath_equivalence.py`` asserts identical metrics across a
randomized scenario grid.  Workloads that need per-round state or message
histories (``figure1``, the lemma checkers, message-complexity analysis)
are out of scope by design and must raise :class:`FastPathUnsupported` at
the backend layer so callers fall back to the reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.matrices import (
    batched_transitive_closure,
    prefix_intersections,
)


class FastPathUnsupported(RuntimeError):
    """The scenario needs features only the reference simulator provides
    (state/message histories, non-integer estimates, algorithms other than
    Algorithm 1).  ``backend="auto"`` catches this and falls back."""


# Cap on the lines 14–23 merge intermediate; owners are chunked so the
# buffer never exceeds roughly this many bytes (see simulate_fastpath).
_MERGE_BUF_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class FastPathRun:
    """The summary record of one vectorized run.

    Holds exactly what the sweep / latency / distribution analyses consume
    — decisions plus the executed adjacency prefix (from which every
    skeleton object derives) — and none of the per-round object state the
    reference :class:`~repro.rounds.run.Run` carries.
    """

    n: int
    num_rounds: int
    initial_values: tuple
    decided: np.ndarray  # (n,) bool
    decision_round: np.ndarray  # (n,) int; valid where ``decided``
    decision_value: np.ndarray  # (n,) int; valid where ``decided``
    adjacency: np.ndarray  # (num_rounds, n, n) bool, self-delivery applied

    # ------------------------------------------------------------------
    def all_decided(self) -> bool:
        return bool(self.decided.all())

    def decision_rounds(self) -> dict[int, int]:
        """Process id -> decision round (decided processes only)."""
        return {
            int(p): int(self.decision_round[p])
            for p in np.nonzero(self.decided)[0]
        }

    def decision_values(self) -> set[int]:
        """The set of distinct decided values (k-agreement quantity)."""
        return {
            int(self.decision_value[p]) for p in np.nonzero(self.decided)[0]
        }

    def undecided(self) -> list[int]:
        return [int(p) for p in np.nonzero(~self.decided)[0]]

    # ------------------------------------------------------------------
    def skeleton_stack(self) -> np.ndarray:
        """All prefix skeletons ``G^∩r`` as one ``(R, n, n)`` tensor."""
        return prefix_intersections(self.adjacency)

    def final_skeleton_matrix(self) -> np.ndarray:
        """``G^∩R`` for the executed prefix."""
        if self.num_rounds == 0:
            raise ValueError("run has no rounds")
        return self.skeleton_stack()[-1]

    def stabilization_round(self, stable_matrix: np.ndarray | None) -> int | None:
        """The exact ``r_ST`` against a declared stable skeleton matrix:
        the first executed round with ``G^∩r == G^∩∞`` (``None`` without a
        declaration or when the prefix never stabilized) — the matrix twin
        of :func:`repro.skeleton.analysis.stabilization_round`."""
        if stable_matrix is None or self.num_rounds == 0:
            return None
        target = np.asarray(stable_matrix, dtype=bool)
        matches = np.all(self.skeleton_stack() == target, axis=(1, 2))
        hits = np.nonzero(matches)[0]
        return int(hits[0]) + 1 if hits.size else None


def _as_int_estimates(values: Sequence) -> np.ndarray:
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise FastPathUnsupported(
                f"fast path needs integer proposal values, got {v!r}"
            )
    return np.asarray([int(v) for v in values], dtype=np.int64)


def simulate_fastpath(
    adjacency,
    initial_values: Sequence[int],
    purge_window: int | None = None,
    prune_unreachable: bool = True,
    stop_when_all_decided: bool = True,
    enforce_self_delivery: bool = True,
    max_rounds: int | None = None,
) -> FastPathRun:
    """Execute Algorithm 1 with distinct-per-process tensor state.

    Parameters
    ----------
    adjacency:
        Either an ``(R, n, n)`` boolean tensor (``adjacency[r - 1]`` is
        the round-``r`` communication graph) or a *schedule provider*
        ``provider(count, start) -> (count, n, n)`` tensor for rounds
        ``start..start + count - 1`` — exactly the signature of
        :meth:`~repro.adversaries.base.Adversary.adjacency_stack`, so an
        adversary's bound method can be passed directly.  With a provider
        the schedule is pulled lazily in ~``n``-round blocks, so a run
        that decides at ``~r_ST + 2n`` never pays for its full
        ``max_rounds`` budget of RNG draws.
    initial_values:
        Proposal values ``v_p`` (must be integers — the min-reduction of
        line 27 runs on an int64 vector).
    purge_window, prune_unreachable:
        Algorithm 1's design knobs, with the same semantics and defaults
        as :class:`~repro.core.approximation.ApproximationGraph`.
    stop_when_all_decided, enforce_self_delivery:
        As in :class:`~repro.rounds.simulator.SimulationConfig` (grace
        rounds are not supported — sweeps never use them).
    max_rounds:
        Round budget; required with a schedule provider, defaults to the
        tensor length otherwise.
    """
    n = len(initial_values)
    if callable(adjacency):
        if max_rounds is None:
            raise ValueError("max_rounds is required with a schedule provider")
        provider = adjacency
    else:
        arr = np.asarray(adjacency, dtype=bool)
        if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
            raise ValueError(
                f"expected (rounds, n, n) tensor, got {arr.shape}"
            )
        if arr.shape[1] != n:
            raise ValueError(
                f"tensor is for n={arr.shape[1]}, got {n} initial values"
            )
        if max_rounds is None:
            max_rounds = arr.shape[0]
        elif max_rounds > arr.shape[0]:
            raise ValueError(
                f"max_rounds={max_rounds} exceeds scheduled {arr.shape[0]}"
            )
        provider = lambda count, start=1: arr[start - 1 : start - 1 + count]
    if max_rounds < 1:
        raise ValueError("need at least one scheduled round")
    if n < 1:
        raise ValueError("need at least one process")
    window = n if purge_window is None else purge_window
    if window < 1:
        raise ValueError("purge window must be >= 1")

    idx = np.arange(n)
    eye = np.eye(n, dtype=bool)

    # The schedule, materialized block-wise.  ``filled`` rounds are ready;
    # blocks are fetched ~n rounds at a time (a decision needs r > n, so
    # the first block can never be wasted work).
    schedule = np.zeros((max_rounds, n, n), dtype=bool)
    filled = 0
    block = max(n + 1, 8)

    def ensure(upto: int) -> None:
        nonlocal filled
        upto = min(max(upto, min(filled + block, max_rounds)), max_rounds)
        if upto <= filled:
            return
        fetched = np.asarray(
            provider(upto - filled, filled + 1), dtype=bool
        )
        if fetched.shape != (upto - filled, n, n):
            raise ValueError(
                f"schedule provider returned shape {fetched.shape}, "
                f"expected {(upto - filled, n, n)}"
            )
        schedule[filled:upto] = fetched
        if enforce_self_delivery:
            schedule[filled:upto, idx, idx] = True
        filled = upto

    # State tensors (one slot per process; see module docstring).
    pt = np.ones((n, n), dtype=bool)  # line 1: PT_p = Π
    est = _as_int_estimates(initial_values)  # line 2: x_p = v_p
    labels = np.zeros((n, n, n), dtype=np.int32)  # line 3: G_p = <{p}, ∅>
    nodes = eye.copy()
    decided = np.zeros(n, dtype=bool)  # line 4
    dec_round = np.zeros(n, dtype=np.int64)
    dec_value = np.zeros(n, dtype=np.int64)
    big = np.iinfo(np.int64).max

    # The lines 14–23 merge needs a (owners, senders, n, n) intermediate;
    # a full (n, n, n, n) buffer would grow quartically, so owners are
    # processed in blocks that cap the buffer at ~_MERGE_BUF_BYTES (one
    # block covers every n the experiments use; only very large n pay
    # extra Python-level iterations).
    owner_block = max(1, min(n, _MERGE_BUF_BYTES // max(1, 4 * n * n * n)))
    merge_buf = np.empty((owner_block, n, n, n), dtype=np.int32)
    num_rounds = max_rounds
    for r in range(1, max_rounds + 1):
        if r > filled:
            ensure(r)
        any_decided = bool(decided.any())
        # Sending phase: the copies below freeze beginning-of-round state.
        # Until the first decision, est is only written *after* its last
        # read of the round (the min-reduction), so no copy is needed.
        sent_est = est.copy() if any_decided else est

        # Line 9 / equation (7): PT_p ∩= this round's heard-of set.
        pt &= schedule[r - 1].T

        # Lines 10–13: adopt a decision from the smallest decided sender
        # in PT_p (argmax on a boolean row = first True = smallest id).
        # Senders' decided flags are beginning-of-round state; nothing
        # below this block sets ``decided`` before it is read again.
        if any_decided:
            adoptable = pt & decided[None, :]
            adopt = adoptable.any(axis=1) & ~decided
            if adopt.any():
                first_decider = np.argmax(adoptable, axis=1)
                est[adopt] = sent_est[first_decider[adopt]]
                decided |= adopt
                dec_round[adopt] = r
                dec_value[adopt] = est[adopt]

        # Lines 14–23: reset + fresh in-edges + max-merge, batched.  The
        # masked maximum over the sender axis q realizes the per-pair
        # max-label merge of all graphs received from PT_p; the fresh
        # label-r in-edges (q --r--> p) dominate every older label.
        new_labels = np.empty_like(labels)
        for lo in range(0, n, owner_block):
            hi = min(lo + owner_block, n)
            buf = merge_buf[: hi - lo]
            np.multiply(
                pt[lo:hi, :, None, None], labels[None, :, :, :], out=buf
            )
            buf.max(axis=1, out=new_labels[lo:hi])
        ps, qs = np.nonzero(pt)
        new_labels[ps, qs, ps] = r
        # Node union (line 18): V_p = {p} ∪ ⋃_{q ∈ PT_p} V_q.
        new_nodes = (pt @ nodes) | eye

        # Line 24 fused with the edge mask: labels re <= r - window die,
        # the survivors are the present edges.
        present = new_labels > max(r - window, 0)
        new_labels *= present

        # One batched closure serves both line 25 and line 28.  Pruning
        # cannot cut a path between two kept nodes (every intermediate
        # node of such a path reaches the owner too), so the closure of
        # the unpruned graph restricted to kept nodes *is* the closure of
        # the pruned graph.
        closure = batched_transitive_closure(
            present, reflexive=True, fixed_iterations=True
        )
        reaches_owner = closure[idx, :, idx] & new_nodes  # i -> p
        if prune_unreachable:
            # Line 25: keep exactly the nodes from which p is reachable.
            new_nodes = reaches_owner
            new_labels *= (
                reaches_owner[:, :, None] & reaches_owner[:, None, :]
            )

        undecided = ~decided
        if undecided.any():
            # Line 27: x_p <- min over beginning-of-round estimates of PT_p.
            # Under self-delivery PT_p always contains p (the diagonal of
            # every scheduled graph is True and pt starts full), so the
            # empty-PT retain-guard only matters without it.
            candidate = np.where(pt, sent_est[None, :], big).min(axis=1)
            if enforce_self_delivery:
                update = undecided
            else:
                update = undecided & pt.any(axis=1)
            est[update] = candidate[update]
            # Lines 28–30: decide when r > n and G_p is strongly connected.
            # Hub criterion: the owner p is always a node of G_p, so G_p is
            # strongly connected iff every node of V_p both reaches p and
            # is reached from p (i -> p -> j connects any ordered pair).
            # Single-node graphs pass trivially.
            if r > n:
                reached_by_owner = closure[idx, idx, :]  # p -> j
                mutual = reaches_owner & reached_by_owner
                strongly_connected = (mutual | ~new_nodes).all(axis=1)
                newly = undecided & strongly_connected
                if newly.any():
                    decided |= newly
                    dec_round[newly] = r
                    dec_value[newly] = est[newly]

        labels = new_labels
        nodes = new_nodes
        if stop_when_all_decided and decided.all():
            num_rounds = r
            break

    return FastPathRun(
        n=n,
        num_rounds=num_rounds,
        initial_values=tuple(int(v) for v in initial_values),
        decided=decided,
        decision_round=dec_round,
        decision_value=dec_value,
        adjacency=schedule[:num_rounds],
    )
