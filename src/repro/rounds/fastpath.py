"""Vectorized fast-path execution of Algorithm 1.

The reference :class:`~repro.rounds.simulator.RoundSimulator` is exact but
allocation-bound: every (process, round) builds a :class:`Message`, a
received-dict and a :class:`RoundLabeledDigraph` merge — O(n · rounds)
Python objects per run, which profiling shows dominates the campaign
ensembles.  This module re-expresses one *whole run* as tensor algebra so
each round costs a handful of NumPy kernel calls, independent of ``n`` at
the Python level:

* the communication schedule is an ``(R, n, n)`` boolean adjacency tensor
  (:meth:`~repro.adversaries.base.Adversary.adjacency_stack`);
* the ``n`` per-process timely sets ``PT_p`` live in one ``(n, n)`` mask,
  updated per round by one transposed AND (equation (7));
* the ``n`` per-process approximation graphs ``G_p`` live in one
  ``(n, n, n)`` round-label tensor (``labels[p, i, j]`` = the label of
  edge ``i -> j`` in ``G_p``, 0 = absent).  Lines 14–23 (reset, fresh
  in-edges, max-merge over received graphs) become a masked maximum over
  the sender axis; line 24 (purge) is a threshold; line 25 (prune) and
  line 28 (strong connectivity) come from one batched transitive closure
  (:func:`repro.graphs.matrices.batched_transitive_closure`);
* min-estimate propagation (line 27) and decide adoption (lines 10–13)
  are masked reductions over the beginning-of-round estimate vector.

Equivalence with the reference simulator is a hard contract, not a
best-effort approximation: the update order mirrors Algorithm 1's
line-by-line semantics (including adoption from the *smallest* decided
sender id and decided processes continuing their graph updates), and
``tests/test_fastpath_equivalence.py`` asserts identical metrics across a
randomized scenario grid.  Workloads that need per-round state or message
histories (``figure1``, the lemma checkers, message-complexity analysis)
are out of scope by design and must raise :class:`FastPathUnsupported` at
the backend layer so callers fall back to the reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.matrices import (
    batched_transitive_closure,
    prefix_intersections,
)
from repro.rounds.array_backend import KernelNamespace, resolve_namespace


class FastPathUnsupported(RuntimeError):
    """The scenario needs features only the reference simulator provides
    (state/message histories, non-integer estimates, algorithms other than
    Algorithm 1).  ``backend="auto"`` catches this and falls back."""


def _get_contracts():
    """The active runtime-contracts object, resolved lazily.

    Imported at call time: :mod:`repro.engine.contracts` lives in the
    ``repro.engine`` package, whose ``__init__`` imports (transitively)
    this module — a top-level import here would be circular.  When
    contracts are off this is one memoized-lookup call per fetched
    block, dwarfed by the RNG work it guards."""
    from repro.engine.contracts import get

    return get()


# Cap on the lines 14–23 merge intermediate; owners are chunked so the
# buffer never exceeds roughly this many bytes (see simulate_fastpath).
_MERGE_BUF_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class FastPathRun:
    """The summary record of one vectorized run.

    Holds exactly what the sweep / latency / distribution analyses consume
    — decisions plus the executed adjacency prefix (from which every
    skeleton object derives) — and none of the per-round object state the
    reference :class:`~repro.rounds.run.Run` carries.
    """

    n: int
    num_rounds: int
    initial_values: tuple
    decided: np.ndarray  # (n,) bool
    decision_round: np.ndarray  # (n,) int; valid where ``decided``
    decision_value: np.ndarray  # (n,) int; valid where ``decided``
    adjacency: np.ndarray  # (num_rounds, n, n) bool, self-delivery applied

    # ------------------------------------------------------------------
    def all_decided(self) -> bool:
        return bool(self.decided.all())

    def decision_rounds(self) -> dict[int, int]:
        """Process id -> decision round (decided processes only)."""
        return {
            int(p): int(self.decision_round[p])
            for p in np.nonzero(self.decided)[0]
        }

    def decision_values(self) -> set[int]:
        """The set of distinct decided values (k-agreement quantity)."""
        return {
            int(self.decision_value[p]) for p in np.nonzero(self.decided)[0]
        }

    def undecided(self) -> list[int]:
        return [int(p) for p in np.nonzero(~self.decided)[0]]

    # ------------------------------------------------------------------
    def skeleton_stack(self) -> np.ndarray:
        """All prefix skeletons ``G^∩r`` as one ``(R, n, n)`` tensor."""
        return prefix_intersections(self.adjacency)

    def final_skeleton_matrix(self) -> np.ndarray:
        """``G^∩R`` for the executed prefix."""
        if self.num_rounds == 0:
            raise ValueError("run has no rounds")
        return self.skeleton_stack()[-1]

    def stabilization_round(self, stable_matrix: np.ndarray | None) -> int | None:
        """The exact ``r_ST`` against a declared stable skeleton matrix:
        the first executed round with ``G^∩r == G^∩∞`` (``None`` without a
        declaration or when the prefix never stabilized) — the matrix twin
        of :func:`repro.skeleton.analysis.stabilization_round`."""
        if stable_matrix is None or self.num_rounds == 0:
            return None
        target = np.asarray(stable_matrix, dtype=bool)
        matches = np.all(self.skeleton_stack() == target, axis=(1, 2))
        hits = np.nonzero(matches)[0]
        return int(hits[0]) + 1 if hits.size else None


def _as_int_estimates(values: Sequence) -> np.ndarray:
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise FastPathUnsupported(
                f"fast path needs integer proposal values, got {v!r}"
            )
    return np.asarray([int(v) for v in values], dtype=np.int64)


def _normalize_schedule(adjacency, n: int, max_rounds: int | None):
    """``(provider, max_rounds)`` from a tensor or provider input.

    The shared prologue of both kernels: a callable is a schedule
    provider (``max_rounds`` required); anything else must be an
    ``(R, n, n)`` boolean tensor, wrapped into a slicing provider with
    ``max_rounds`` defaulting to (and capped by) the scheduled length.
    """
    if callable(adjacency):
        if max_rounds is None:
            raise ValueError("max_rounds is required with a schedule provider")
        return adjacency, max_rounds
    arr = np.asarray(adjacency, dtype=bool)
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError(f"expected (rounds, n, n) tensor, got {arr.shape}")
    if arr.shape[1] != n:
        raise ValueError(
            f"tensor is for n={arr.shape[1]}, got {n} initial values"
        )
    if max_rounds is None:
        max_rounds = arr.shape[0]
    elif max_rounds > arr.shape[0]:
        raise ValueError(
            f"max_rounds={max_rounds} exceeds scheduled {arr.shape[0]}"
        )
    provider = lambda count, start=1: arr[start - 1 : start - 1 + count]
    return provider, max_rounds


def _closure_iterations(n: int) -> int:
    """Squarings one fixed-iterations transitive closure performs for
    ``n`` nodes (mirrors the doubling loop in
    :func:`repro.graphs.matrices.batched_transitive_closure`)."""
    length, iters = 1, 0
    while length < n - 1:
        length *= 2
        iters += 1
    return iters


def simulate_fastpath(
    adjacency,
    initial_values: Sequence[int],
    purge_window: int | None = None,
    prune_unreachable: bool = True,
    stop_when_all_decided: bool = True,
    enforce_self_delivery: bool = True,
    max_rounds: int | None = None,
    recorder=None,
) -> FastPathRun:
    """Execute Algorithm 1 with distinct-per-process tensor state.

    Parameters
    ----------
    adjacency:
        Either an ``(R, n, n)`` boolean tensor (``adjacency[r - 1]`` is
        the round-``r`` communication graph) or a *schedule provider*
        ``provider(count, start) -> (count, n, n)`` tensor for rounds
        ``start..start + count - 1`` — exactly the signature of
        :meth:`~repro.adversaries.base.Adversary.adjacency_stack`, so an
        adversary's bound method can be passed directly.  With a provider
        the schedule is pulled lazily in ~``n``-round blocks, so a run
        that decides at ``~r_ST + 2n`` never pays for its full
        ``max_rounds`` budget of RNG draws.
    initial_values:
        Proposal values ``v_p`` (must be integers — the min-reduction of
        line 27 runs on an int64 vector).
    purge_window, prune_unreachable:
        Algorithm 1's design knobs, with the same semantics and defaults
        as :class:`~repro.core.approximation.ApproximationGraph`.
    stop_when_all_decided, enforce_self_delivery:
        As in :class:`~repro.rounds.simulator.SimulationConfig` (grace
        rounds are not supported — sweeps never use them).
    max_rounds:
        Round budget; required with a schedule provider, defaults to the
        tensor length otherwise.
    recorder:
        Optional :class:`~repro.engine.telemetry.Recorder`.  Kernel
        counters are accumulated in plain locals and flushed once at
        (successful) return, so the disabled path costs one branch.
    """
    n = len(initial_values)
    provider, max_rounds = _normalize_schedule(adjacency, n, max_rounds)
    if max_rounds < 1:
        raise ValueError("need at least one scheduled round")
    if n < 1:
        raise ValueError("need at least one process")
    window = n if purge_window is None else purge_window
    if window < 1:
        raise ValueError("purge window must be >= 1")

    idx = np.arange(n)
    eye = np.eye(n, dtype=bool)

    # The schedule, materialized block-wise.  ``filled`` rounds are ready;
    # blocks are fetched ~n rounds at a time (a decision needs r > n, so
    # the first block can never be wasted work).
    schedule = np.zeros((max_rounds, n, n), dtype=bool)
    filled = 0
    block = max(n + 1, 8)
    rng_fetches = rng_tail_fetches = rng_rounds_fetched = 0

    def ensure(upto: int) -> None:
        nonlocal filled, rng_fetches, rng_tail_fetches, rng_rounds_fetched
        upto = min(max(upto, min(filled + block, max_rounds)), max_rounds)
        if upto <= filled:
            return
        rng_fetches += 1
        if filled > 0:
            rng_tail_fetches += 1
        rng_rounds_fetched += upto - filled
        fetched = np.asarray(
            provider(upto - filled, filled + 1), dtype=bool
        )
        if fetched.shape != (upto - filled, n, n):
            raise ValueError(
                f"schedule provider returned shape {fetched.shape}, "
                f"expected {(upto - filled, n, n)}"
            )
        contracts = _get_contracts()
        if contracts and contracts.sample("kernel.block_fetch"):
            contracts.check_block_fetch(
                provider, upto - filled, filled + 1, fetched,
                context={"n": n, "kernel": "simulate_fastpath"},
            )
        schedule[filled:upto] = fetched
        if enforce_self_delivery:
            schedule[filled:upto, idx, idx] = True
        filled = upto

    # State tensors (one slot per process; see module docstring).
    pt = np.ones((n, n), dtype=bool)  # line 1: PT_p = Π
    est = _as_int_estimates(initial_values)  # line 2: x_p = v_p
    labels = np.zeros((n, n, n), dtype=np.int32)  # line 3: G_p = <{p}, ∅>
    nodes = eye.copy()
    decided = np.zeros(n, dtype=bool)  # line 4
    dec_round = np.zeros(n, dtype=np.int64)
    dec_value = np.zeros(n, dtype=np.int64)
    big = np.iinfo(np.int64).max

    # The lines 14–23 merge needs a (owners, senders, n, n) intermediate;
    # a full (n, n, n, n) buffer would grow quartically, so owners are
    # processed in blocks that cap the buffer at ~_MERGE_BUF_BYTES (one
    # block covers every n the experiments use; only very large n pay
    # extra Python-level iterations).
    owner_block = max(1, min(n, _MERGE_BUF_BYTES // max(1, 4 * n * n * n)))
    merge_buf = np.empty((owner_block, n, n, n), dtype=np.int32)
    num_rounds = max_rounds
    for r in range(1, max_rounds + 1):
        if r > filled:
            ensure(r)
        any_decided = bool(decided.any())
        # Sending phase: the copies below freeze beginning-of-round state.
        # Until the first decision, est is only written *after* its last
        # read of the round (the min-reduction), so no copy is needed.
        sent_est = est.copy() if any_decided else est

        # Line 9 / equation (7): PT_p ∩= this round's heard-of set.
        pt &= schedule[r - 1].T

        # Lines 10–13: adopt a decision from the smallest decided sender
        # in PT_p (argmax on a boolean row = first True = smallest id).
        # Senders' decided flags are beginning-of-round state; nothing
        # below this block sets ``decided`` before it is read again.
        if any_decided:
            adoptable = pt & decided[None, :]
            adopt = adoptable.any(axis=1) & ~decided
            if adopt.any():
                first_decider = np.argmax(adoptable, axis=1)
                est[adopt] = sent_est[first_decider[adopt]]
                decided |= adopt
                dec_round[adopt] = r
                dec_value[adopt] = est[adopt]

        # Lines 14–23: reset + fresh in-edges + max-merge, batched.  The
        # masked maximum over the sender axis q realizes the per-pair
        # max-label merge of all graphs received from PT_p; the fresh
        # label-r in-edges (q --r--> p) dominate every older label.
        new_labels = np.empty_like(labels)
        for lo in range(0, n, owner_block):
            hi = min(lo + owner_block, n)
            buf = merge_buf[: hi - lo]
            np.multiply(
                pt[lo:hi, :, None, None], labels[None, :, :, :], out=buf
            )
            buf.max(axis=1, out=new_labels[lo:hi])
        ps, qs = np.nonzero(pt)
        new_labels[ps, qs, ps] = r
        # Node union (line 18): V_p = {p} ∪ ⋃_{q ∈ PT_p} V_q.
        new_nodes = (pt @ nodes) | eye

        # Line 24 fused with the edge mask: labels re <= r - window die,
        # the survivors are the present edges.
        present = new_labels > max(r - window, 0)
        new_labels *= present

        # One batched closure serves both line 25 and line 28.  Pruning
        # cannot cut a path between two kept nodes (every intermediate
        # node of such a path reaches the owner too), so the closure of
        # the unpruned graph restricted to kept nodes *is* the closure of
        # the pruned graph.
        closure = batched_transitive_closure(
            present, reflexive=True, fixed_iterations=True
        )
        reaches_owner = closure[idx, :, idx] & new_nodes  # i -> p
        if prune_unreachable:
            # Line 25: keep exactly the nodes from which p is reachable.
            new_nodes = reaches_owner
            new_labels *= (
                reaches_owner[:, :, None] & reaches_owner[:, None, :]
            )

        undecided = ~decided
        if undecided.any():
            # Line 27: x_p <- min over beginning-of-round estimates of PT_p.
            # Under self-delivery PT_p always contains p (the diagonal of
            # every scheduled graph is True and pt starts full), so the
            # empty-PT retain-guard only matters without it.
            candidate = np.where(pt, sent_est[None, :], big).min(axis=1)
            if enforce_self_delivery:
                update = undecided
            else:
                update = undecided & pt.any(axis=1)
            est[update] = candidate[update]
            # Lines 28–30: decide when r > n and G_p is strongly connected.
            # Hub criterion: the owner p is always a node of G_p, so G_p is
            # strongly connected iff every node of V_p both reaches p and
            # is reached from p (i -> p -> j connects any ordered pair).
            # Single-node graphs pass trivially.
            if r > n:
                reached_by_owner = closure[idx, idx, :]  # p -> j
                mutual = reaches_owner & reached_by_owner
                strongly_connected = (mutual | ~new_nodes).all(axis=1)
                newly = undecided & strongly_connected
                if newly.any():
                    decided |= newly
                    dec_round[newly] = r
                    dec_value[newly] = est[newly]

        labels = new_labels
        nodes = new_nodes
        if stop_when_all_decided and decided.all():
            num_rounds = r
            break

    if recorder:
        # Deterministic plane: pure functions of the scenario.
        recorder.inc("kernel.lanes")
        recorder.inc("kernel.lane_rounds", num_rounds)
        recorder.observe("kernel.lane_rounds", num_rounds)
        recorder.inc("kernel.decisions", int(decided.sum()))
        recorder.inc("kernel.rng_fetches", rng_fetches)
        recorder.inc("kernel.rng_tail_fetches", rng_tail_fetches)
        recorder.inc("kernel.rng_rounds_fetched", rng_rounds_fetched)
        # Volatile plane: one loop iteration == one closure call here.
        recorder.vinc("kernel.loop_rounds", num_rounds)
        recorder.vinc("kernel.closure_calls", num_rounds)
        recorder.vinc(
            "kernel.closure_iterations", num_rounds * _closure_iterations(n)
        )
    return FastPathRun(
        n=n,
        num_rounds=num_rounds,
        initial_values=tuple(int(v) for v in initial_values),
        decided=decided,
        decision_round=dec_round,
        decision_value=dec_value,
        adjacency=schedule[:num_rounds],
    )


# ----------------------------------------------------------------------
# Mega-batching: many same-n scenarios through one tensor program
# ----------------------------------------------------------------------
# Per-batch working-set budget for :func:`default_batch_size` (schedule
# prefix + label tensors + closure buffers), plus a hard lane cap — the
# per-round Python overhead is already fully amortized well before it.
_BATCH_BUDGET_BYTES = 192 * 1024 * 1024
_MAX_BATCH = 64


@dataclass(frozen=True)
class FastPathTask:
    """One lane of a mega-batched fast-path execution.

    Mirrors the per-lane parameters of :func:`simulate_fastpath`:
    ``adjacency`` is an ``(R, n, n)`` tensor or a schedule provider
    (an adversary's bound ``adjacency_stack``), the design knobs have the
    same semantics and defaults.  Lanes may differ in **everything**,
    including ``n``: smaller-``n`` lanes are padded to the batch's widest
    lane (cross-``n`` packing), with the padded rows/cols masked out of
    every commit point so each lane's result is bit-identical to its
    standalone run.
    """

    adjacency: object
    initial_values: tuple
    purge_window: int | None = None
    prune_unreachable: bool = True
    max_rounds: int | None = None


def lane_bytes(n: int, max_rounds: int) -> int:
    """Working-set bytes one lane of width ``n`` pins in a mega-batch:
    its slice of the ``(S, R, n, n)`` schedule, the two ``(S, n, n, n)``
    int32 label tensors, the ``(S·n, n, n)`` float32 closure and its
    squaring buffer, and the presence mask.  Under cross-``n`` packing
    ``n`` must be the *padded* batch width — a packed lane occupies the
    widest lane's slice regardless of its own nominal ``n`` (the
    scheduler's ``estimate_batch_bytes`` builds on this)."""
    if n < 1 or max_rounds < 1:
        raise ValueError("need n >= 1 and max_rounds >= 1")
    return (
        max_rounds * n * n  # schedule prefix (bool)
        + 2 * 4 * n**3  # labels + new_labels (int32)
        + 2 * 4 * n**3  # closure + squaring buffer (float32)
        + n**3  # presence mask (bool)
    )


def default_batch_size(
    n: int, max_rounds: int, budget_bytes: int | None = None
) -> int:
    """How many width-``n`` lanes one mega-batch should hold.

    Sized so the batch working set (:func:`lane_bytes` per lane) stays
    under ``budget_bytes`` (default ``_BATCH_BUDGET_BYTES``), capped at
    ``_MAX_BATCH`` lanes (per-round Python overhead is fully amortized
    long before that).  ``budget_bytes`` is the ``campaign run
    --batch-memory`` envelope: results are byte-identical whatever the
    envelope, only the batch packing changes.  For packed mixed-``n``
    batches callers must pass the *padded* width, not a member's
    nominal ``n``.
    """
    budget = _BATCH_BUDGET_BYTES if budget_bytes is None else budget_bytes
    return max(1, min(_MAX_BATCH, budget // lane_bytes(n, max_rounds)))


# Compaction trigger: compress the lane axis when live lanes drop to
# <= 3/4 of the allocated width (bounding masked-lane waste at ~33%)
# or — with pending lanes queued — on any retirement, so freed width is
# refilled immediately.
_COMPACT_NUM, _COMPACT_DEN = 3, 4


def simulate_fastpath_batch(
    tasks: Sequence[FastPathTask],
    stop_when_all_decided: bool = True,
    enforce_self_delivery: bool = True,
    width: int | None = None,
    compact: bool = True,
    recorder=None,
    namespace=None,
) -> list[FastPathRun]:
    """Execute a whole stack of Algorithm 1 runs at once.

    The batched twin of :func:`simulate_fastpath`: the live lanes share
    every kernel call, so one ensemble round costs one batched BLAS
    closure and a handful of ``(S, n, ...)`` reductions instead of ``S``
    separate sets of kernel launches — this is what amortizes the
    per-round call overhead that caps the per-scenario fast path's
    small-``n`` speedup.

    Semantics are *exactly* :func:`simulate_fastpath` per lane:

    * every lane pulls its own schedule through its own provider (same
      block-fetch contract, so RNG streams are bit-identical to a
      per-scenario run — providers must be pure functions of
      ``(count, start)``, which :meth:`Adversary.adjacency_stack`
      guarantees);
    * lanes that terminate early (everyone decided, or the lane's own
      ``max_rounds`` budget ran out) retire: their results are harvested
      immediately and — with ``compact`` on — the surviving lanes are
      compressed into a dense tensor program once enough width has been
      freed, so a heterogeneous batch's kernel cost tracks the *live*
      lane count instead of the allocated width (``compact=False``
      reproduces the mask-only behavior: retired lanes stay allocated
      and are merely masked out of the commit points);
    * per-lane knobs (``purge_window``, ``prune_unreachable``,
      ``max_rounds``) are vectorized, and lanes may even differ in
      ``n``: the batch runs at the widest lane's width and smaller
      lanes are *packed* — their padded rows/cols are masked out of the
      schedule (pad entries stay ``False``, so the round-1 ``PT``
      intersection removes every padded sender before anything reads
      it), the decide test (a lane becomes eligible at its *own*
      ``r > n_lane``, and padded owner slots never decide), and the RNG
      block fetches (block sizes derive from the lane's own ``n``, so
      each lane's ``(count, start)`` stream is untouched by packing).

    The tensor core is expressed through the Python Array API standard
    via a :class:`~repro.rounds.array_backend.KernelNamespace`
    (``namespace`` accepts a namespace object or a device string; the
    default resolves the ``REPRO_DEVICE`` environment variable and falls
    back to NumPy).  On NumPy the host/device transfer seams are
    identity functions and the kernel is byte-identical to the pre-port
    code; on CuPy/torch the closure/label tensors live on the device and
    only the per-lane bookkeeping (round clocks, RNG fetches, harvest)
    touches the host.

    ``width`` caps the *concurrent* lane count: the first ``width`` tasks
    are admitted up front and the rest queue, refilling freed width as
    lanes retire (each late-admitted lane runs its own round clock — a
    per-lane offset against the global loop counter — and fetches its
    schedule through the same block contract, so admission time is
    invisible to the result).  ``width=None`` admits every task at once.
    With ``compact=False`` the queue instead drains in width-sized
    *generations* — the next wave is admitted only once the current one
    has fully retired — so the concurrent lane count (and therefore the
    memory envelope) never exceeds ``width`` in either mode.

    Returns one :class:`FastPathRun` per task, in task order, each
    bit-identical to what ``simulate_fastpath`` would have produced for
    that lane alone — the differential suite
    (``tests/test_batched_equivalence.py``) enforces this across the
    randomized scenario grid, every batch partition, compaction on/off
    and every ``width``.
    """
    if not tasks:
        return []
    ns = resolve_namespace(namespace)
    xp = ns.xp
    T = len(tasks)
    # Per-task parameters, resolved up front (admission can happen
    # mid-run; validation errors must surface before any lane executes).
    t_n = np.empty(T, dtype=np.int64)
    t_est: list[np.ndarray] = []
    t_provider: list = []
    t_mr = np.empty(T, dtype=np.int64)
    t_window = np.empty(T, dtype=np.int64)
    t_prune = np.zeros(T, dtype=bool)
    for t, task in enumerate(tasks):
        lane_n = len(task.initial_values)
        if lane_n < 1:
            raise ValueError("need at least one process")
        t_n[t] = lane_n
        t_est.append(_as_int_estimates(task.initial_values))
        provider, lane_mr = _normalize_schedule(
            task.adjacency, lane_n, task.max_rounds
        )
        if lane_mr < 1:
            raise ValueError("need at least one scheduled round")
        w = lane_n if task.purge_window is None else task.purge_window
        if w < 1:
            raise ValueError("purge window must be >= 1")
        t_provider.append(provider)
        t_mr[t] = lane_mr
        t_window[t] = w
        t_prune[t] = task.prune_unreachable
    # The batch runs at the widest lane's width; narrower lanes are
    # padded up to it and masked (cross-n packing).
    n = int(t_n.max())

    width_limit = T if width is None else max(1, int(width))
    idx = np.arange(n)
    eye = xp.eye(n, dtype=xp.bool)
    big = int(np.iinfo(np.int64).max)
    big0 = xp.asarray(big, dtype=xp.int64)

    def stack_est(task_ids) -> np.ndarray:
        """Per-lane initial estimates, padded to width ``n`` with +inf
        sentinels (padded owner slots never adopt a real estimate)."""
        out = np.full((len(task_ids), n), big, dtype=np.int64)
        for i, t in enumerate(task_ids):
            v = t_est[int(t)]
            out[i, : v.size] = v
        return out

    # Kernel telemetry, accumulated in plain locals and flushed once at
    # successful return — a crashed batch (whose lanes the backend
    # retries as singletons) therefore contributes nothing, which keeps
    # the deterministic plane a pure function of the scenario set.
    rng_fetches = rng_tail_fetches = rng_rounds_fetched = 0
    compactions = lanes_refilled = 0

    results: list[FastPathRun | None] = [None] * T

    # Lane state, axis 0 = lane.  ``origin`` maps a lane back to its
    # task; ``offset`` is the global round at which the lane was admitted
    # (its local round clock is ``r - offset``), so late-admitted lanes
    # run the exact per-lane program of simulate_fastpath.  Bookkeeping
    # vectors stay host NumPy; the heavy tensors live in the active
    # namespace (identical objects on the NumPy default).
    S = min(T, width_limit)
    origin = np.arange(S, dtype=np.int64)
    offset = np.zeros(S, dtype=np.int64)
    mr = t_mr[:S].copy()
    window = t_window[:S].copy()
    prune = t_prune[:S].copy()
    ln = t_n[:S].copy()  # per-lane nominal n (<= padded width n)
    filled = np.zeros(S, dtype=np.int64)
    schedule = xp.zeros((S, int(mr.max()), n, n), dtype=xp.bool)
    pt = xp.ones((S, n, n), dtype=xp.bool)
    est = ns.from_host(stack_est(range(S)))
    labels = xp.zeros((S, n, n, n), dtype=xp.int32)
    nodes = xp.asarray(xp.broadcast_to(eye, (S, n, n)), copy=True)
    decided = xp.zeros((S, n), dtype=xp.bool)
    dec_round = xp.zeros((S, n), dtype=xp.int64)
    dec_value = xp.zeros((S, n), dtype=xp.int64)
    active = np.ones(S, dtype=bool)
    next_task = S
    new_labels = xp.empty_like(labels)
    # Until the first mid-run admission every lane shares the global
    # clock (offset 0), and the per-round schedule gather degrades to
    # the plain slice view of the uniform-clock kernel — the common
    # case for homogeneous batches, kept allocation-free.
    has_offsets = False
    # Lane-composition invariants, recomputed only when lanes change.
    prune_all = bool(prune.all())
    prune_any = bool(prune.any())
    lane_ok = idx[None, :] < ln[:, None]  # host (S, n): real owner slots
    has_padding = bool((ln < n).any())
    pad_dev = ns.from_host(~lane_ok) if has_padding else None

    def ensure(targets: np.ndarray, lanes: np.ndarray) -> None:
        """Fetch each lane's schedule up to its local target round.

        Block sizes derive from the lane's *own* ``n`` (never the padded
        batch width): the first block covers rounds ``1..n+1`` (no
        decision can land before round ``n+1``, so it is never wasted);
        tail blocks are deliberately small so the batch never pays RNG
        draws for rounds nobody executes.  Block boundaries are
        invisible by the adjacency_stack contract (pure function of
        ``(count, start)``), and because the sizes ignore batchmates,
        each lane's fetch stream is bit-identical under any packing.
        """
        nonlocal rng_fetches, rng_tail_fetches, rng_rounds_fetched
        for s in np.nonzero(lanes)[0]:
            lane_cap = int(mr[s])
            have = int(filled[s])
            if have >= min(int(targets[s]), lane_cap):
                continue
            lane_n = int(ln[s])
            block = (
                max(lane_n + 1, 8) if have == 0 else max(4, (lane_n + 1) // 4)
            )
            upto = min(
                max(int(targets[s]), min(have + block, lane_cap)), lane_cap
            )
            rng_fetches += 1
            if have > 0:
                rng_tail_fetches += 1
            rng_rounds_fetched += upto - have
            fetched = np.asarray(
                t_provider[int(origin[s])](upto - have, have + 1), dtype=bool
            )
            if fetched.shape != (upto - have, lane_n, lane_n):
                raise ValueError(
                    f"schedule provider returned shape {fetched.shape}, "
                    f"expected {(upto - have, lane_n, lane_n)}"
                )
            contracts = _get_contracts()
            if contracts and contracts.sample("kernel.block_fetch"):
                contracts.check_block_fetch(
                    t_provider[int(origin[s])], upto - have, have + 1,
                    fetched,
                    context={
                        "n": lane_n,
                        "lane": int(s),
                        "kernel": "simulate_fastpath_batch",
                    },
                )
            # Padded rows/cols (>= lane_n) stay False: the round-1 PT
            # intersection then removes every padded sender before any
            # commit point reads it.
            schedule[s, have:upto, :lane_n, :lane_n] = ns.from_host(fetched)
            if enforce_self_delivery:
                d = idx[:lane_n]
                schedule[s, have:upto, d, d] = True
            filled[s] = upto

    def harvest(s: int, local_round: int) -> None:
        lane_n = int(ln[s])
        results[int(origin[s])] = FastPathRun(
            n=lane_n,
            num_rounds=local_round,
            initial_values=tuple(
                int(v) for v in tasks[int(origin[s])].initial_values
            ),
            decided=ns.to_host(decided[s])[:lane_n].copy(),
            decision_round=ns.to_host(dec_round[s])[:lane_n].copy(),
            decision_value=ns.to_host(dec_value[s])[:lane_n].copy(),
            adjacency=ns.to_host(schedule[s, :local_round])[
                :, :lane_n, :lane_n
            ].copy(),
        )

    r = 0
    while active.any() or next_task < T:
        r += 1
        S = origin.size
        r_loc = r - offset  # per-lane local round numbers
        need = active & (filled < r_loc)
        if need.any():
            ensure(r_loc, need)
        act = ns.from_host(active)[:, None]
        # Sending phase: freeze beginning-of-round estimates for every
        # lane (cheap at (S, n); the per-scenario copy-elision would need
        # a per-lane branch).
        sent_est = xp.asarray(est, copy=True)

        # Line 9 / equation (7), all lanes at once.  Retired lanes not
        # yet compacted away have stale clocks; clamp their row index —
        # their state is frozen out of every commit point by ``act``.
        if has_offsets:
            rows = np.minimum(r_loc, schedule.shape[1]) - 1
            sched_now = schedule[np.arange(S), rows]
        else:
            sched_now = schedule[:, r - 1]
        pt &= xp.permute_dims(sched_now, (0, 2, 1))

        # Lines 10-13: adopt from the smallest decided sender in PT_p.
        if bool(xp.any(decided)):
            adoptable = pt & decided[:, None, :]
            adopt = xp.any(adoptable, axis=2) & ~decided & act
            if bool(xp.any(adopt)):
                first_decider = xp.argmax(
                    xp.astype(adoptable, xp.int8), axis=2
                )
                adopted = xp.take_along_axis(sent_est, first_decider, axis=1)
                rl_mat = ns.from_host(np.broadcast_to(r_loc[:, None], (S, n)))
                est[adopt] = adopted[adopt]
                decided |= adopt
                dec_round[adopt] = rl_mat[adopt]
                dec_value[adopt] = est[adopt]

        # Lines 14-23: reset + fresh in-edges + max-merge over senders.
        # The namespace's masked sender-max never materializes the full
        # (S, n, n, n, n) product intermediate (NumPy runs the fused
        # where-reduce into ``new_labels``; devices chunk it), which
        # halves the traffic of the batch's one O(n^4)-per-lane kernel.
        new_labels = ns.masked_sender_max(labels, pt, new_labels)
        ss, ps, qs = xp.nonzero(pt)
        new_labels[ss, ps, qs, ps] = ns.from_host(r_loc)[ss]
        new_nodes = ns.bool_matmul(pt, nodes) | eye

        # Line 24: purge, with per-lane windows on per-lane clocks.
        purge_floor = ns.from_host(np.maximum(r_loc - window, 0))
        present = new_labels > purge_floor[:, None, None, None]
        new_labels *= present

        # Lines 25 + 28 from one batched closure over all S·n graphs.
        closure = xp.reshape(
            ns.batched_closure(xp.reshape(present, (S * n, n, n))),
            (S, n, n, n),
        )
        # [s, p, i] — i reaches the owner p in G_p of lane s.
        reaches_owner = (
            xp.moveaxis(closure[:, idx, :, idx], 0, 1) & new_nodes
        )
        if prune_all:
            new_nodes = reaches_owner
            new_labels *= (
                reaches_owner[:, :, :, None] & reaches_owner[:, :, None, :]
            )
        elif prune_any:
            keep = (
                reaches_owner[:, :, :, None] & reaches_owner[:, :, None, :]
            )
            lane = ns.from_host(prune)[:, None, None]
            new_nodes = xp.where(lane, reaches_owner, new_nodes)
            new_labels *= xp.where(
                lane[..., None], keep, xp.ones((), dtype=xp.bool)
            )

        undecided = ~decided
        # Line 27: min over beginning-of-round estimates of PT_p.
        candidate = xp.min(xp.where(pt, sent_est[:, None, :], big0), axis=2)
        if enforce_self_delivery:
            update = undecided & act
        else:
            update = undecided & act & xp.any(pt, axis=2)
        est[update] = candidate[update]
        # Lines 28-30: hub-criterion decide once the lane's *own* clock
        # passes its *own* n — packed narrow lanes become eligible
        # before the padded width would, late-admitted lanes later.
        elig = r_loc > ln
        if bool(elig.any()):
            reached_by_owner = closure[:, idx, idx, :]  # [s, p, j]: p -> j
            mutual = reaches_owner & reached_by_owner
            strongly_connected = xp.all(mutual | ~new_nodes, axis=2)
            newly = undecided & strongly_connected & act
            if has_padding or not bool(elig.all()):
                # Gate out ineligible lanes and padded owner slots
                # (their trivial {p} components would "decide").
                newly &= ns.from_host(elig[:, None] & lane_ok)
            if bool(xp.any(newly)):
                rl_mat = ns.from_host(np.broadcast_to(r_loc[:, None], (S, n)))
                decided |= newly
                dec_round[newly] = rl_mat[newly]
                dec_value[newly] = est[newly]

        labels, new_labels = new_labels, labels
        nodes = new_nodes
        # Retire lanes: everyone decided, or the lane's own round budget
        # is spent — either way its local clock is its round count.
        # Padded owner slots never decide, so completion ignores them.
        retire = np.zeros(S, dtype=bool)
        if stop_when_all_decided:
            done = decided | pad_dev if has_padding else decided
            retire |= active & ns.to_host(xp.all(done, axis=1))
        retire |= active & (r_loc >= mr)
        if retire.any():
            for s in np.nonzero(retire)[0]:
                harvest(int(s), int(r_loc[s]))
            active &= ~retire

        live = int(active.sum())
        lanes_changed = False
        # Compress the lane axis: with compaction on, whenever enough
        # width has been freed (or pending lanes wait on it); with
        # compaction off, only once a whole generation has retired —
        # results are already harvested, and dropping the dead
        # generation is what keeps the concurrent lane count (and the
        # memory envelope) capped at ``width`` even without compaction.
        if (live < S and compact and (
            next_task < T or live * _COMPACT_DEN <= S * _COMPACT_NUM
        )) or (live == 0 and S > 0 and next_task < T):
            lanes_changed = True
            compactions += 1
            keep = active
            keep_dev = ns.from_host(keep)
            origin = origin[keep]
            offset = offset[keep]
            mr = mr[keep]
            window = window[keep]
            prune = prune[keep]
            ln = ln[keep]
            filled = filled[keep]
            schedule = schedule[keep_dev]
            pt = pt[keep_dev]
            est = est[keep_dev]
            labels = labels[keep_dev]
            nodes = nodes[keep_dev]
            decided = decided[keep_dev]
            dec_round = dec_round[keep_dev]
            dec_value = dec_value[keep_dev]
            active = active[keep]
            live = origin.size
        # Admission: with compaction on, refill freed width mid-run;
        # with compaction off, start the next width-sized generation
        # only once the current one has fully retired (mask-only
        # semantics within each generation, width never exceeded).
        if next_task < T and live < width_limit and (compact or live == 0):
            lanes_changed = True
            take = min(width_limit - live, T - next_task)
            lanes_refilled += take
            admitted = np.arange(next_task, next_task + take, dtype=np.int64)
            next_task += take
            rmax = int(t_mr[admitted].max())
            if origin.size == 0:
                schedule = xp.zeros((0, rmax, n, n), dtype=xp.bool)
            elif schedule.shape[1] < rmax:
                grown = xp.zeros(
                    (origin.size, rmax, n, n), dtype=xp.bool
                )
                grown[:, : schedule.shape[1]] = schedule
                schedule = grown
            else:
                rmax = schedule.shape[1]
            origin = np.concatenate([origin, admitted])
            offset = np.concatenate(
                [offset, np.full(take, r, dtype=np.int64)]
            )
            has_offsets = True  # admissions only happen mid-run (r >= 1)
            mr = np.concatenate([mr, t_mr[admitted]])
            window = np.concatenate([window, t_window[admitted]])
            prune = np.concatenate([prune, t_prune[admitted]])
            ln = np.concatenate([ln, t_n[admitted]])
            filled = np.concatenate(
                [filled, np.zeros(take, dtype=np.int64)]
            )
            schedule = xp.concat(
                [schedule, xp.zeros((take, rmax, n, n), dtype=xp.bool)]
            )
            pt = xp.concat([pt, xp.ones((take, n, n), dtype=xp.bool)])
            est = xp.concat([est, ns.from_host(stack_est(admitted))])
            labels = xp.concat(
                [labels, xp.zeros((take, n, n, n), dtype=xp.int32)]
            )
            nodes = xp.concat(
                [
                    nodes,
                    xp.asarray(xp.broadcast_to(eye, (take, n, n)), copy=True),
                ]
            )
            decided = xp.concat(
                [decided, xp.zeros((take, n), dtype=xp.bool)]
            )
            dec_round = xp.concat(
                [dec_round, xp.zeros((take, n), dtype=xp.int64)]
            )
            dec_value = xp.concat(
                [dec_value, xp.zeros((take, n), dtype=xp.int64)]
            )
            active = np.concatenate([active, np.ones(take, dtype=bool)])
        if lanes_changed:
            if new_labels.shape != labels.shape:
                new_labels = xp.empty_like(labels)
            prune_all = bool(prune.all())
            prune_any = bool(prune.any())
            lane_ok = idx[None, :] < ln[:, None]
            has_padding = bool((ln < n).any())
            pad_dev = ns.from_host(~lane_ok) if has_padding else None

    if recorder:
        # Deterministic plane: per-lane quantities, invariant across
        # batch cuts, admission order, and compaction (each lane runs
        # the exact per-scenario program).
        total_rounds = total_decided = 0
        for run in results:
            total_rounds += run.num_rounds
            total_decided += int(run.decided.sum())
            recorder.observe("kernel.lane_rounds", run.num_rounds)
        recorder.inc("kernel.lanes", T)
        recorder.inc("kernel.lane_rounds", total_rounds)
        recorder.inc("kernel.decisions", total_decided)
        recorder.inc("kernel.rng_fetches", rng_fetches)
        recorder.inc("kernel.rng_tail_fetches", rng_tail_fetches)
        recorder.inc("kernel.rng_rounds_fetched", rng_rounds_fetched)
        # Volatile plane: execution shape (depends on batch packing).
        recorder.vinc("kernel.loop_rounds", r)
        recorder.vinc("kernel.compactions", compactions)
        recorder.vinc("kernel.lanes_refilled", lanes_refilled)
        recorder.vinc("kernel.closure_calls", r)
        recorder.vinc(
            "kernel.closure_iterations", r * _closure_iterations(n)
        )
    return results
