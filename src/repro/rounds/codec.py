"""Compact binary encoding of Algorithm 1 messages.

The JSON-based :meth:`~repro.rounds.messages.Message.bit_size` is a
convenient proxy, but the paper's §V claim is about *worst-case message bit
complexity*, so the MSG-COMPLEX experiment also measures a real wire
format.  The codec packs a ``(kind, x, Gp)`` message as:

========  ======================================================
field     encoding
========  ======================================================
header    1 byte: version (4 bits) | kind (4 bits)
sender    varint
round     varint
estimate  varint (zigzag for negative values)
|V|       varint, then each node id as a varint
|E|       varint, then per edge: (u, v, label) as three varints
========  ======================================================

Varints are LEB128 (7 bits per byte).  With node ids < n and labels <= r
this realizes the O(n² log(nr)) bound the analysis module asserts: at most
``n²`` edges, each costing ``O(log n + log r)`` bits.

The codec round-trips exactly (tested), so it could serve as an actual
transport format; the simulator keeps passing Python objects for speed and
uses the codec only for measurement.
"""

from __future__ import annotations

from repro.graphs.labeled import RoundLabeledDigraph
from repro.rounds.messages import Message

_VERSION = 1
_KINDS = {"prop": 0, "decide": 1, "floodmin": 2, "flood": 3, "localmin": 4}
_KIND_NAMES = {v: k for k, v in _KINDS.items()}


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint requires non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_message(msg: Message) -> bytes:
    """Encode a skeleton-agreement message (``prop``/``decide`` with an
    ``{"x": int, "graph": RoundLabeledDigraph}`` payload) to bytes.

    Raises
    ------
    ValueError
        For unknown kinds or non-integer estimates (the codec is for the
        paper's algorithm; ``xp ∈ N`` per the pseudocode).
    """
    if msg.kind not in _KINDS:
        raise ValueError(f"unknown message kind {msg.kind!r}")
    payload = msg.payload or {}
    estimate = payload.get("x", 0)
    if not isinstance(estimate, int):
        raise ValueError(f"codec requires integer estimates, got {estimate!r}")
    graph = payload.get("graph")
    out = bytearray()
    out.append((_VERSION << 4) | _KINDS[msg.kind])
    _write_varint(out, msg.sender)
    _write_varint(out, msg.round_no)
    _write_varint(out, _zigzag(estimate))
    if graph is None:
        _write_varint(out, 0)
        _write_varint(out, 0)
        return bytes(out)
    nodes = sorted(graph.nodes())
    _write_varint(out, len(nodes))
    for node in nodes:
        _write_varint(out, node)
    edges = sorted(graph.iter_labeled_edges())
    _write_varint(out, len(edges))
    for u, v, lbl in edges:
        _write_varint(out, u)
        _write_varint(out, v)
        _write_varint(out, lbl)
    return bytes(out)


def decode_message(data: bytes) -> Message:
    """Inverse of :func:`encode_message`."""
    if not data:
        raise ValueError("empty message")
    version, kind_code = data[0] >> 4, data[0] & 0x0F
    if version != _VERSION:
        raise ValueError(f"unsupported codec version {version}")
    if kind_code not in _KIND_NAMES:
        raise ValueError(f"unknown kind code {kind_code}")
    pos = 1
    sender, pos = _read_varint(data, pos)
    round_no, pos = _read_varint(data, pos)
    z, pos = _read_varint(data, pos)
    estimate = _unzigzag(z)
    num_nodes, pos = _read_varint(data, pos)
    nodes = []
    for _ in range(num_nodes):
        node, pos = _read_varint(data, pos)
        nodes.append(node)
    num_edges, pos = _read_varint(data, pos)
    graph = RoundLabeledDigraph(nodes=nodes)
    for _ in range(num_edges):
        u, pos = _read_varint(data, pos)
        v, pos = _read_varint(data, pos)
        lbl, pos = _read_varint(data, pos)
        graph.add_edge(u, v, lbl)
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes")
    return Message(
        sender=sender,
        round_no=round_no,
        kind=_KIND_NAMES[kind_code],
        payload={"x": estimate, "graph": graph},
    )


def encoded_bit_size(msg: Message) -> int:
    """Exact wire size in bits under the binary codec."""
    return 8 * len(encode_message(msg))


def worst_case_bits(n: int, round_no: int) -> int:
    """Analytic worst case for the codec: complete approximation graph.

    ``n`` nodes and ``n²`` labeled edges; each varint of a value ``v``
    costs ``8 * ceil(bits(v) / 7)`` bits.
    """

    def varint_bits(value: int) -> int:
        value = max(value, 1)
        return 8 * ((value.bit_length() + 6) // 7)

    header = 8 + varint_bits(n) + varint_bits(round_no) + varint_bits(2 * round_no)
    nodes = varint_bits(n) + n * varint_bits(n - 1)
    edges = varint_bits(n * n) + n * n * (
        2 * varint_bits(n - 1) + varint_bits(round_no)
    )
    return header + nodes + edges
