"""Array-API namespace injection for the fast-path kernels.

The mega-batched kernel (:func:`repro.rounds.fastpath.simulate_fastpath_batch`)
is a pure tensor program — a batched boolean closure over ``S·n`` graphs
per round plus a handful of ``(S, n, ...)`` reductions — which makes it
portable across array libraries that implement the `Python Array API
standard <https://data-apis.org/array-api/>`_.  This module is the
``array_api_compat``-style seam: the kernel takes a
:class:`KernelNamespace` and performs every *namespace-level* call
(``xp.zeros``, ``xp.concat``, ``xp.permute_dims``, ...) through it, using
the standard's names only, plus three kernel-extension ops the standard
has no fused spelling for (the masked sender-max merge, a boolean matmul,
and the fixed-iteration batched transitive closure).

Backends:

* ``"numpy"`` (default) — NumPy >= 2.0 is itself an Array-API namespace;
  the extension ops keep the exact fused NumPy implementations the
  kernel always used (``np.maximum.reduce(where=...)``, BLAS closure),
  so results are **byte-identical** to the pre-injection kernel and the
  overhead is one attribute indirection.
* ``"cupy"`` / ``"torch"`` — resolved only when the library is
  importable (never a hard dependency: this environment must run
  without them).  Schedules are still drawn on the host — RNG streams
  are part of the bit-identical-journal contract — and shipped to the
  device per block; results are copied back at lane harvest.  Arrays
  must support NumPy-style advanced indexing and in-place updates
  (NumPy, CuPy and torch all do; immutable-array libraries are out of
  scope).
* ``"strict"`` — a test-only wrapper around NumPy that exposes *only*
  the Array-API-standard functions the kernel is allowed to call (plus
  the extension ops), so any non-standard NumPy call in the kernel
  fails loudly in the differential suite instead of silently pinning
  the kernel to NumPy.

Device selection follows the repo's process-global hardening idiom
(compare ``REPRO_CONTRACTS``): ``activate_device``/``--device`` set the
``REPRO_DEVICE`` environment variable, which pool workers inherit, and
:func:`resolve_namespace` reads it lazily — no signature threading
through the executor.  The choice is a pure execution-shape knob:
journal bytes are identical across namespaces (the differential suite
pins NumPy vs the strict wrapper; CuPy/torch are covered where
installed).
"""

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np

DEVICE_ENV = "REPRO_DEVICE"


class DeviceUnavailableError(RuntimeError):
    """A known device whose optional library is not installed here.

    Distinct from the ``ValueError`` an *unknown* device raises, so the
    CLI can turn both into a clean exit-2 message without swallowing
    unrelated ``RuntimeError``s."""

#: Accepted ``--device`` spellings, normalized to a backend name.
_ALIASES = {
    None: "numpy",
    "": "numpy",
    "numpy": "numpy",
    "np": "numpy",
    "cpu": "numpy",
    "cupy": "cupy",
    "cuda": "cupy",
    "gpu": "cupy",
    "torch": "torch",
    "strict": "strict",
}

# Owner-axis chunk cap for the generic (non-NumPy) sender-max merge: the
# where+max fallback materializes an (owners, S, n, n, n) intermediate,
# so owners are chunked to bound it (mirrors the per-scenario kernel's
# _MERGE_BUF_BYTES discipline).
_GENERIC_MERGE_BYTES = 64 * 1024 * 1024


class KernelNamespace:
    """One resolved array namespace plus the kernel's extension ops.

    ``xp`` is the Array-API namespace the kernel calls standard
    functions on.  ``from_host``/``to_host`` move arrays across the
    host/device seam (identity for NumPy).  The three extension ops
    cover the fused kernels the standard cannot express efficiently.
    """

    def __init__(
        self,
        name: str,
        xp: Any,
        from_host: Callable | None = None,
        to_host: Callable | None = None,
    ) -> None:
        self.name = name
        self.xp = xp
        self.is_numpy = name in ("numpy", "strict")
        self._from_host = from_host
        self._to_host = to_host

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"KernelNamespace({self.name!r})"

    # -- host/device seam ------------------------------------------------
    def from_host(self, arr):
        """A device array with the host array's values (NumPy: no-op)."""
        if self._from_host is not None:
            return self._from_host(arr)
        return np.asarray(arr)

    def to_host(self, arr) -> np.ndarray:
        """A host ``np.ndarray`` view/copy of a device array."""
        if self._to_host is not None:
            return self._to_host(arr)
        return np.asarray(arr)

    # -- kernel extension ops --------------------------------------------
    def masked_sender_max(self, labels, pt, out):
        """Lines 14-23 of Algorithm 1, batched: per-owner max over the
        labels of the senders in ``PT_p``.

        ``labels`` is ``(S, n, n, n)`` int32, ``pt`` is ``(S, n, n)``
        bool; the result is ``(S, n, n, n)``.  NumPy keeps the fused
        ``maximum.reduce(where=)`` over a broadcast view (no
        ``(S, n, n, n, n)`` intermediate); generic namespaces fall back
        to owner-chunked ``where`` + ``max``, returning a fresh array
        (``out`` is only written on the NumPy path).
        """
        if self.is_numpy:
            S, n = labels.shape[0], labels.shape[1]
            np.maximum.reduce(
                np.broadcast_to(labels[:, None], (S, n, n, n, n)),
                axis=2,
                where=pt[:, :, :, None, None],
                initial=0,
                out=out,
            )
            return out
        xp = self.xp
        S, n = int(labels.shape[0]), int(labels.shape[1])
        zero = xp.zeros((), dtype=labels.dtype)
        per_owner = max(1, S * n * n * n * 4)
        chunk = max(1, min(n, _GENERIC_MERGE_BYTES // per_owner))
        parts = []
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            masked = xp.where(
                pt[:, lo:hi, :, None, None], labels[:, None, :, :, :], zero
            )
            parts.append(xp.max(masked, axis=2))
        return parts[0] if len(parts) == 1 else xp.concat(parts, axis=1)

    def bool_matmul(self, a, b):
        """Boolean matrix product (``a @ b`` over OR/AND semantics)."""
        if self.is_numpy:
            return a @ b
        xp = self.xp
        prod = xp.matmul(
            xp.astype(a, xp.float32), xp.astype(b, xp.float32)
        )
        return prod > 0.5

    def batched_closure(self, stack):
        """Reflexive transitive closure of a ``(b, n, n)`` bool stack,
        fixed-iteration squaring (the decide/prune kernel)."""
        if self.is_numpy:
            from repro.graphs.matrices import batched_transitive_closure

            return batched_transitive_closure(
                stack, reflexive=True, fixed_iterations=True
            )
        xp = self.xp
        n = int(stack.shape[-1])
        closure = xp.astype(stack, xp.float32)
        closure = xp.minimum(
            closure + xp.eye(n, dtype=xp.float32),
            xp.ones((), dtype=xp.float32),
        )
        one = xp.ones((), dtype=xp.float32)
        length = 1
        while length < n - 1:
            closure = xp.minimum(xp.matmul(closure, closure), one)
            length *= 2
        return closure > 0.5


# ----------------------------------------------------------------------
# Strict wrapper: the conformance harness for the kernel's namespace use
# ----------------------------------------------------------------------
#: Namespace-level names the kernel may call — the Array API standard's
#: creation/manipulation/reduction functions plus dtypes and ``iinfo``.
#: Anything outside this set raises, which is how the differential suite
#: catches a non-standard NumPy call sneaking into the kernel.
STRICT_ALLOWED = frozenset(
    {
        # creation
        "arange", "asarray", "empty", "empty_like", "eye", "full",
        "full_like", "linspace", "meshgrid", "ones", "ones_like",
        "tril", "triu", "zeros", "zeros_like",
        # manipulation
        "broadcast_to", "concat", "expand_dims", "flip", "moveaxis",
        "permute_dims", "repeat", "reshape", "roll", "squeeze", "stack",
        "tile",
        # element-wise / logic
        "abs", "add", "astype", "bitwise_and", "bitwise_or", "equal",
        "greater", "greater_equal", "less", "less_equal", "logical_and",
        "logical_not", "logical_or", "maximum", "minimum", "multiply",
        "not_equal", "subtract", "where",
        # reductions / search / sorting
        "all", "any", "argmax", "argmin", "count_nonzero", "max", "min",
        "nonzero", "prod", "sum", "take", "take_along_axis",
        # linear algebra
        "matmul", "tensordot", "vecdot",
        # dtypes & introspection
        "bool", "float32", "float64", "int8", "int16", "int32", "int64",
        "uint8", "finfo", "iinfo", "isdtype", "result_type",
    }
)


class StrictNamespace:
    """NumPy behind an Array-API-standard allowlist (test harness).

    Only the names in :data:`STRICT_ALLOWED` resolve; anything else —
    ``concatenate`` instead of ``concat``, ``maximum.reduce``,
    ``fill_diagonal``, ... — raises :class:`AttributeError`, so the
    batched-equivalence suite proves the kernel speaks the standard.
    """

    def __getattr__(self, name: str):
        if name in STRICT_ALLOWED:
            return getattr(np, name)
        raise AttributeError(
            f"strict Array-API namespace has no {name!r}: the fast-path "
            "kernel may only use Array-API-standard functions "
            "(see repro.rounds.array_backend.STRICT_ALLOWED)"
        )


class _AliasNamespace:
    """A thin standard-name shim over an almost-Array-API module.

    Used for CuPy/torch installs without ``array_api_compat``: standard
    names resolve on the wrapped module first, then through a small
    alias table (``concat`` -> ``concatenate``, function-style
    ``astype``/``permute_dims``, torch's tuple-returning ``nonzero``).
    """

    def __init__(self, mod: Any) -> None:
        self._mod = mod

    def __getattr__(self, name: str):
        mod = self._mod
        attr = getattr(mod, name, None)
        if attr is not None:
            return attr
        if name == "concat":
            return mod.concatenate
        if name == "astype":
            return lambda x, dtype, copy=True: x.astype(dtype)
        if name == "permute_dims":
            return lambda x, axes: x.transpose(axes)
        if name == "moveaxis" and hasattr(mod, "movedim"):  # torch
            return mod.movedim
        if name == "nonzero" and hasattr(mod, "nonzero"):  # pragma: no cover
            return lambda x: mod.nonzero(x, as_tuple=True)
        raise AttributeError(
            f"array namespace {mod.__name__!r} has no Array-API "
            f"function {name!r}; install array_api_compat for full "
            "coverage"
        )


def _numpy_namespace() -> KernelNamespace:
    return KernelNamespace("numpy", np)


def _strict_namespace() -> KernelNamespace:
    return KernelNamespace("strict", StrictNamespace())


def _cupy_namespace() -> KernelNamespace:  # pragma: no cover - needs GPU
    try:
        import cupy
    except ImportError as exc:
        raise DeviceUnavailableError(
            "--device cupy/cuda needs CuPy installed (pip install "
            "cupy-cuda12x for CUDA 12); the numpy default needs nothing"
        ) from exc
    try:
        from array_api_compat import cupy as xp  # type: ignore
    except ImportError:
        xp = _AliasNamespace(cupy)
    return KernelNamespace(
        "cupy", xp, from_host=cupy.asarray, to_host=cupy.asnumpy
    )


def _torch_namespace() -> KernelNamespace:  # pragma: no cover - optional
    try:
        import torch
    except ImportError as exc:
        raise DeviceUnavailableError(
            "--device torch needs PyTorch installed; the numpy default "
            "needs nothing"
        ) from exc
    try:
        from array_api_compat import torch as xp  # type: ignore
    except ImportError:
        xp = _AliasNamespace(torch)
    return KernelNamespace(
        "torch",
        xp,
        from_host=lambda a: torch.from_numpy(np.ascontiguousarray(a)),
        to_host=lambda a: a.detach().cpu().numpy(),
    )


_FACTORIES = {
    "numpy": _numpy_namespace,
    "strict": _strict_namespace,
    "cupy": _cupy_namespace,
    "torch": _torch_namespace,
}

_RESOLVED: dict[str, KernelNamespace] = {}


def resolve_namespace(device: str | None = None) -> KernelNamespace:
    """The :class:`KernelNamespace` for a device spelling.

    ``None`` reads the ``REPRO_DEVICE`` environment variable (set by
    ``--device``; inherited by pool workers), defaulting to NumPy.  An
    already-resolved :class:`KernelNamespace` passes through unchanged.
    Unknown devices and missing optional libraries raise with an
    install hint — never a silent fallback, an explicit choice must not
    silently execute elsewhere.
    """
    if isinstance(device, KernelNamespace):
        return device
    if device is None:
        device = os.environ.get(DEVICE_ENV) or None
    key = device.lower() if isinstance(device, str) else device
    name = _ALIASES.get(key)
    if name is None:
        raise ValueError(
            f"unknown device {device!r}; known: "
            "numpy/cpu (default), cupy/cuda, torch, strict"
        )
    if name not in _RESOLVED:
        _RESOLVED[name] = _FACTORIES[name]()
    return _RESOLVED[name]


def activate_device(device: str | None) -> KernelNamespace:
    """Validate a ``--device`` choice and make it the process default.

    Resolves eagerly (so a missing library fails at the CLI boundary,
    not mid-campaign in a worker) and exports ``REPRO_DEVICE`` so pool
    workers inherit the choice.
    """
    ns = resolve_namespace(device)
    if ns.name == "numpy":
        os.environ.pop(DEVICE_ENV, None)
    else:
        os.environ[DEVICE_ENV] = ns.name
    return ns
