"""Round messages.

Every algorithm in this repository broadcasts exactly one message per round
(the paper's sending function produces one message, delivered to whichever
processes the round's communication graph dictates).  :class:`Message` is a
thin immutable envelope; algorithm-specific payloads subclass it or use the
generic ``kind``/``payload`` fields.

Messages also know how to estimate their *encoded size in bits*, which backs
the MSG-COMPLEX experiment (§V of the paper claims worst-case message bit
complexity polynomial in n).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """An immutable round message.

    Attributes
    ----------
    sender:
        Process id of the sender.
    round_no:
        The round in which the message was sent (communication-closed: it can
        only be received in this round).
    kind:
        Message discriminator; Algorithm 1 uses ``"prop"`` and ``"decide"``.
    payload:
        Arbitrary JSON-serializable content.
    """

    sender: int
    round_no: int
    kind: str = "prop"
    payload: Any = field(default=None)

    def bit_size(self) -> int:
        """Estimated encoded size in bits.

        We count the JSON encoding length — a stable, implementation-
        independent proxy adequate for *asymptotic* comparisons (the
        MSG-COMPLEX experiment cares about growth in n, not constants).
        """
        encoded = json.dumps(
            {
                "sender": self.sender,
                "round": self.round_no,
                "kind": self.kind,
                "payload": _jsonable(self.payload),
            },
            separators=(",", ":"),
            sort_keys=True,
            default=str,
        )
        return 8 * len(encoded)


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of payloads to JSON-serializable form."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_jsonable(x) for x in obj), key=repr)
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return repr(obj)
