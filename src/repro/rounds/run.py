"""The record of a (finite prefix of a) run.

A run of an algorithm is completely determined by the initial states and the
sequence of communication graphs (§II).  :class:`Run` stores everything the
analysis layer needs:

* the per-round communication graphs ``G^r`` (1-indexed, as in the paper),
* per-round state snapshots and messages (optional, for tracing),
* all decision events,
* derived skeleton objects: ``G^∩r``, timely neighborhoods ``PT(p, r)``, the
  final skeleton, and — when the adversary declares its stable edges — the
  true stable skeleton ``G^∩∞``.

Skeletons are computed incrementally and cached; computing every
``G^∩r`` for a run of R rounds costs O(R · |E|) total, not O(R² · |E|).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.digraph import DiGraph
from repro.rounds.messages import Message
from repro.rounds.process import DecisionRecord


@dataclass
class RoundRecord:
    """Everything that happened in one round."""

    round_no: int
    graph: DiGraph
    messages: dict[int, Message] = field(default_factory=dict)
    state_snapshots: dict[int, dict] = field(default_factory=dict)
    decisions: list[DecisionRecord] = field(default_factory=list)


class Run:
    """A finite run prefix.

    Parameters
    ----------
    n:
        Number of processes.
    initial_values:
        Proposal values ``v_p`` indexed by process id.
    declared_stable_graph:
        Optional: the adversary's declared stable skeleton ``G^∩∞`` — the
        set of edges it guarantees to keep timely in *every* round, forever.
        When present, predicate checks and ``PT(p)`` are exact instead of
        finite-prefix approximations.
    """

    def __init__(
        self,
        n: int,
        initial_values: list[Any],
        declared_stable_graph: DiGraph | None = None,
    ) -> None:
        if len(initial_values) != n:
            raise ValueError(
                f"expected {n} initial values, got {len(initial_values)}"
            )
        self.n = n
        self.initial_values = list(initial_values)
        self.declared_stable_graph = declared_stable_graph
        self.rounds: list[RoundRecord] = []
        self.decisions: dict[int, DecisionRecord] = {}
        # Incrementally maintained skeleton sequence; _skeletons[r-1] = G^∩r.
        self._skeletons: list[DiGraph] = []

    # ------------------------------------------------------------------
    # Recording (called by the simulator)
    # ------------------------------------------------------------------
    def append_round(self, record: RoundRecord) -> None:
        expected = len(self.rounds) + 1
        if record.round_no != expected:
            raise ValueError(
                f"round records must be contiguous: expected round {expected}, "
                f"got {record.round_no}"
            )
        self.rounds.append(record)
        if self._skeletons:
            skeleton = self._skeletons[-1].intersection(record.graph)
        else:
            skeleton = record.graph.copy()
        self._skeletons.append(skeleton)
        for decision in record.decisions:
            if decision.process in self.decisions:
                raise ValueError(
                    f"duplicate decision for process {decision.process}"
                )
            self.decisions[decision.process] = decision

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Number of recorded rounds R (rounds are ``1..R``)."""
        return len(self.rounds)

    def graph(self, round_no: int) -> DiGraph:
        """The communication graph ``G^r`` (1-indexed)."""
        self._check_round(round_no)
        return self.rounds[round_no - 1].graph

    def graphs(self) -> list[DiGraph]:
        """All per-round communication graphs, in order."""
        return [rec.graph for rec in self.rounds]

    def messages(self, round_no: int) -> dict[int, Message]:
        """Messages broadcast in ``round_no`` (sender -> message)."""
        self._check_round(round_no)
        return self.rounds[round_no - 1].messages

    def _check_round(self, round_no: int) -> None:
        if not 1 <= round_no <= len(self.rounds):
            raise IndexError(
                f"round {round_no} out of range 1..{len(self.rounds)}"
            )

    # ------------------------------------------------------------------
    # Skeleton accessors (the paper's derived objects)
    # ------------------------------------------------------------------
    def skeleton(self, round_no: int) -> DiGraph:
        """The round-``r`` skeleton ``G^∩r = ∩_{0 < r' <= r} G^{r'}``."""
        self._check_round(round_no)
        return self._skeletons[round_no - 1]

    def final_skeleton(self) -> DiGraph:
        """``G^∩R`` for the last recorded round R.

        For any finite prefix ``G^∩R ⊇ G^∩∞`` (property (1)); equality holds
        from the stabilization round on.
        """
        if not self._skeletons:
            raise ValueError("run has no rounds")
        return self._skeletons[-1]

    def stable_skeleton(self) -> DiGraph:
        """The stable skeleton ``G^∩∞``.

        Uses the adversary's declaration when available (exact); otherwise
        falls back to the final-prefix skeleton, which is an over-
        approximation per property (1).
        """
        if self.declared_stable_graph is not None:
            return self.declared_stable_graph
        return self.final_skeleton()

    def timely_neighborhood(self, pid: int, round_no: int) -> frozenset[int]:
        """``PT(p, r) = {q | (q -> p) ∈ G^∩r}`` — in-neighbors of ``p`` in
        the round-``r`` skeleton."""
        return self.skeleton(round_no).predecessors(pid)

    def perpetual_timely_neighborhood(self, pid: int) -> frozenset[int]:
        """``PT(p) = ∩_r PT(p, r)`` — from the stable skeleton."""
        return self.stable_skeleton().predecessors(pid)

    def skeleton_stabilization_round(self) -> int | None:
        """The earliest recorded round ``r_ST`` with
        ``G^∩r = final skeleton`` for all later recorded rounds.

        Returns ``None`` for an empty run.  Note this is relative to the
        recorded prefix; with a declared stable graph, compare against
        :meth:`stable_skeleton` via :meth:`has_stabilized`.
        """
        if not self._skeletons:
            return None
        final = self._skeletons[-1]
        r_st = len(self._skeletons)
        for idx in range(len(self._skeletons) - 1, -1, -1):
            if self._skeletons[idx] == final:
                r_st = idx + 1
            else:
                break
        return r_st

    def has_stabilized(self) -> bool:
        """Whether the recorded prefix already reached ``G^∩∞`` (requires a
        declared stable graph to be meaningful)."""
        if self.declared_stable_graph is None or not self._skeletons:
            return False
        return self._skeletons[-1] == self.declared_stable_graph

    # ------------------------------------------------------------------
    # Decision accessors
    # ------------------------------------------------------------------
    def decision_values(self) -> set:
        """The set of distinct decided values (the k-agreement quantity)."""
        return {d.value for d in self.decisions.values()}

    def decision_rounds(self) -> dict[int, int]:
        """Process id -> round of decision."""
        return {pid: d.round_no for pid, d in self.decisions.items()}

    def all_decided(self) -> bool:
        """Whether every process has decided (termination on this prefix)."""
        return len(self.decisions) == self.n

    def undecided(self) -> list[int]:
        """Process ids that have not decided yet."""
        return [p for p in range(self.n) if p not in self.decisions]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly summary (graphs + decisions; no message bodies)."""
        return {
            "n": self.n,
            "initial_values": self.initial_values,
            "num_rounds": self.num_rounds,
            "graphs": [rec.graph.to_dict() for rec in self.rounds],
            "decisions": {
                str(pid): {"round": d.round_no, "value": d.value}
                for pid, d in sorted(self.decisions.items())
            },
            "stable_skeleton": self.stable_skeleton().to_dict()
            if (self.declared_stable_graph is not None or self.rounds)
            else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Run":
        """Rebuild a run from :meth:`to_dict` output (graphs + decisions).

        Message bodies and state snapshots are not serialized, so the
        reconstructed run supports all skeleton/decision analysis but not
        :func:`repro.analysis.stats.message_stats`.
        """
        stable = (
            DiGraph.from_dict(data["stable_skeleton"])
            if data.get("stable_skeleton")
            else None
        )
        run = cls(
            n=data["n"],
            initial_values=list(data["initial_values"]),
            declared_stable_graph=stable,
        )
        decisions_by_round: dict[int, list[DecisionRecord]] = {}
        for pid_str, d in data.get("decisions", {}).items():
            rec = DecisionRecord(
                process=int(pid_str), round_no=d["round"], value=d["value"]
            )
            decisions_by_round.setdefault(rec.round_no, []).append(rec)
        for idx, graph_data in enumerate(data["graphs"], start=1):
            run.append_round(
                RoundRecord(
                    round_no=idx,
                    graph=DiGraph.from_dict(graph_data),
                    decisions=decisions_by_round.get(idx, []),
                )
            )
        return run

    def replay_adversary(self):
        """An adversary that replays this run's graph sequence — feed the
        same network schedule to a different algorithm (BASELINE-style
        apples-to-apples comparisons, or offline re-execution)."""
        from repro.adversaries.base import ReplayAdversary

        return ReplayAdversary(
            self.n, self.graphs(), stable=self.declared_stable_graph
        )

    def __repr__(self) -> str:
        return (
            f"Run(n={self.n}, rounds={self.num_rounds}, "
            f"decided={len(self.decisions)}/{self.n}, "
            f"values={sorted(map(repr, self.decision_values()))})"
        )
