"""The round executor.

Implements §II's execution model exactly:

1. At the beginning of round ``r``, every process's sending function is
   evaluated on its current state (all of them *before* any delivery —
   communication-closed rounds).
2. The adversary supplies the round's communication graph ``G^r``; process
   ``p`` receives the round-``r`` message of ``q`` iff ``(q -> p) ∈ G^r``.
3. Every process's transition function is applied to its received vector.

Crashed processes are "internally correct" (§II / HO model): the simulator
keeps executing them; it is the *adversary* that removes their outgoing
edges, so nobody hears from them.

Self-delivery: the paper assumes ``∀p: p ∈ PT(p)`` (Figure 1 caption), i.e.
``(p -> p) ∈ G^r`` for every round.  The simulator enforces this by default;
it can be disabled for adversarial experiments that need it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.graphs.digraph import DiGraph
from repro.rounds.messages import Message
from repro.rounds.process import Process
from repro.rounds.run import Run, RoundRecord

# An invariant hook receives (run, round_no, processes) after each round and
# may raise AssertionError to abort; used by the lemma checkers.
InvariantHook = Callable[[Run, int, Sequence[Process]], None]


@dataclass
class SimulationConfig:
    """Execution knobs.

    Attributes
    ----------
    max_rounds:
        Hard stop: simulate at most this many rounds.
    stop_when_all_decided:
        Stop early once every process has decided (plus ``grace_rounds``).
    grace_rounds:
        Extra rounds to run after all processes decided — useful when the
        analysis wants to observe post-decision skeleton evolution.
    enforce_self_delivery:
        Add ``(p -> p)`` to every round graph (the paper's convention).
    record_messages:
        Keep per-round message objects in the run record (needed by the
        message-complexity analysis; off for large sweeps to save memory).
    record_states:
        Keep per-round state snapshots (needed by the lemma checkers).
    """

    max_rounds: int = 1000
    stop_when_all_decided: bool = True
    grace_rounds: int = 0
    enforce_self_delivery: bool = True
    record_messages: bool = False
    record_states: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.grace_rounds < 0:
            raise ValueError("grace_rounds must be >= 0")


class RoundSimulator:
    """Executes an algorithm against an adversary.

    Parameters
    ----------
    processes:
        One :class:`Process` per id ``0..n-1`` (order = id).
    adversary:
        Any object with ``graph(round_no: int) -> DiGraph`` yielding the
        round's communication graph, and optionally
        ``declared_stable_graph() -> DiGraph | None``
        (see :class:`repro.adversaries.base.Adversary`).
    config:
        Execution knobs; defaults are sensible for correctness tests.
    invariant_hooks:
        Callables invoked after every round (lemma checkers).
    """

    def __init__(
        self,
        processes: Sequence[Process],
        adversary: Any,
        config: SimulationConfig | None = None,
        invariant_hooks: Sequence[InvariantHook] = (),
    ) -> None:
        self.processes = list(processes)
        self.n = len(self.processes)
        if self.n == 0:
            raise ValueError("need at least one process")
        for expected, proc in enumerate(self.processes):
            if proc.pid != expected:
                raise ValueError(
                    f"process at index {expected} has pid {proc.pid}; "
                    "processes must be ordered by pid"
                )
        self.adversary = adversary
        self.config = config or SimulationConfig()
        self.invariant_hooks = list(invariant_hooks)

    # ------------------------------------------------------------------
    def run(self) -> Run:
        """Execute rounds until a stop condition fires; return the record."""
        declared = None
        getter = getattr(self.adversary, "declared_stable_graph", None)
        if callable(getter):
            declared = getter()
        run = Run(
            n=self.n,
            initial_values=[p.initial_value for p in self.processes],
            declared_stable_graph=declared,
        )
        rounds_after_all_decided = 0
        for round_no in range(1, self.config.max_rounds + 1):
            self._execute_round(run, round_no)
            for hook in self.invariant_hooks:
                hook(run, round_no, self.processes)
            if self.config.stop_when_all_decided and run.all_decided():
                if rounds_after_all_decided >= self.config.grace_rounds:
                    break
                rounds_after_all_decided += 1
        return run

    # ------------------------------------------------------------------
    def _execute_round(self, run: Run, round_no: int) -> None:
        # Phase 1: evaluate all sending functions on beginning-of-round state.
        outbound: dict[int, Message] = {}
        for proc in self.processes:
            msg = proc.send(round_no)
            if msg.sender != proc.pid:
                raise ValueError(
                    f"process {proc.pid} produced a message claiming sender "
                    f"{msg.sender}"
                )
            if msg.round_no != round_no:
                raise ValueError(
                    f"process {proc.pid} produced a round-{msg.round_no} "
                    f"message in round {round_no} (communication-closed "
                    "rounds forbid cross-round messages)"
                )
            outbound[proc.pid] = msg

        # Phase 2: the adversary picks the communication graph.
        graph = self.adversary.graph(round_no)
        graph = self._validate_graph(graph, round_no)

        # Phase 3: deliver and apply transition functions.
        decided_before = {p.pid for p in self.processes if p.decided}
        record = RoundRecord(round_no=round_no, graph=graph)
        if self.config.record_messages:
            record.messages = dict(outbound)
        for proc in self.processes:
            # iter_predecessors avoids a frozenset copy per (process,
            # round) — the dominant allocation for large n.
            received = {
                sender: outbound[sender]
                for sender in graph.iter_predecessors(proc.pid)
            }
            proc.transition(round_no, received)
        for proc in self.processes:
            if proc.decided and proc.pid not in decided_before:
                record.decisions.append(proc.decision)
            if self.config.record_states:
                record.state_snapshots[proc.pid] = proc.state_snapshot()
        run.append_round(record)

    # ------------------------------------------------------------------
    def _validate_graph(self, graph: DiGraph, round_no: int) -> DiGraph:
        nodes = graph.nodes()
        expected = frozenset(range(self.n))
        if nodes != expected:
            raise ValueError(
                f"adversary produced a round-{round_no} graph on nodes "
                f"{sorted(nodes, key=repr)}; expected exactly 0..{self.n - 1}"
            )
        if self.config.enforce_self_delivery and not all(
            graph.has_edge(p, p) for p in range(self.n)
        ):
            # Only copy when an edge is actually missing: well-behaved
            # adversaries (every one in repro.adversaries) already include
            # all self-loops, so the common path is a short-circuiting
            # scan with no allocation.
            graph = graph.copy()
            for p in range(self.n):
                graph.add_edge(p, p)
        return graph


def simulate(
    processes: Sequence[Process],
    adversary: Any,
    config: SimulationConfig | None = None,
    invariant_hooks: Sequence[InvariantHook] = (),
) -> Run:
    """Convenience one-shot wrapper around :class:`RoundSimulator`."""
    return RoundSimulator(processes, adversary, config, invariant_hooks).run()
