"""Round-based message-passing simulation kernel (Heard-Of style).

The paper's computing model (§II): an algorithm is a pair of a *sending
function* ``S_p^r`` and a *transition function* ``T_p^r``; communication is
organized in communication-closed rounds; a run is fully determined by the
initial states and the sequence of communication graphs ``G^r``.

This package implements that model directly:

* :class:`~repro.rounds.process.Process` — the algorithm interface,
* :class:`~repro.rounds.simulator.RoundSimulator` — executes rounds against
  an adversary-supplied graph sequence,
* :class:`~repro.rounds.run.Run` — the complete record of a finite run
  prefix (graphs, states, messages, decisions) with skeleton accessors.
"""

from repro.rounds.process import Process, DecisionRecord
from repro.rounds.fastpath import (
    FastPathRun,
    FastPathTask,
    FastPathUnsupported,
    simulate_fastpath,
    simulate_fastpath_batch,
)
from repro.rounds.messages import Message
from repro.rounds.run import Run, RoundRecord
from repro.rounds.simulator import RoundSimulator, SimulationConfig, simulate

__all__ = [
    "Process",
    "DecisionRecord",
    "FastPathRun",
    "FastPathTask",
    "FastPathUnsupported",
    "Message",
    "Run",
    "RoundRecord",
    "RoundSimulator",
    "SimulationConfig",
    "simulate",
    "simulate_fastpath",
    "simulate_fastpath_batch",
]
