"""The algorithm interface: sending and transition functions.

Per §II of the paper, an algorithm is composed of two functions:

* the **sending function** determines, for process ``p`` and round ``r > 0``,
  the message ``p`` broadcasts in round ``r``, based on ``p``'s state at the
  beginning of round ``r``;
* the **transition function** determines the state at the end of round ``r``
  from the state at the beginning of ``r`` and the vector of messages
  received in ``r``.

:class:`Process` is the abstract base implementing this interface plus the
irrevocable-decision bookkeeping shared by all agreement algorithms
(k-agreement / validity / termination are checked against
:attr:`Process.decision`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Mapping

from repro.rounds.messages import Message


@dataclass(frozen=True)
class DecisionRecord:
    """An irrevocable decision event."""

    process: int
    round_no: int
    value: Any


class Process(abc.ABC):
    """Abstract round-based process.

    Parameters
    ----------
    pid:
        Process identifier in ``0..n-1``.
    n:
        Total number of processes (the paper's ``n = |Π|``; Algorithm 1 uses
        it for the purge window and the ``r > n`` decision guard).
    initial_value:
        The proposal value ``v_p``.

    Subclasses implement :meth:`send` and :meth:`transition`.  They must call
    :meth:`_decide` exactly once to decide; the base class enforces
    irrevocability (Lemma 10: every process decides at most once).
    """

    def __init__(self, pid: int, n: int, initial_value: Any) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        self.initial_value = initial_value
        self._decision: DecisionRecord | None = None

    # ------------------------------------------------------------------
    # Algorithm interface (the paper's S_p^r and T_p^r)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(self, round_no: int) -> Message:
        """The sending function ``S_p^r``: the message broadcast in round
        ``round_no``, computed from the state at the beginning of the round.

        Implementations must not mutate state here — the paper's model
        computes the message purely from the state at the beginning of the
        round, and the simulator calls :meth:`send` for *all* processes
        before delivering anything.
        """

    @abc.abstractmethod
    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        """The transition function ``T_p^r``.

        Parameters
        ----------
        round_no:
            Current round ``r``.
        received:
            The vector of messages received in round ``r``: a mapping from
            sender id ``q`` to ``q``'s round-``r`` message, containing ``q``
            exactly when ``(q -> p) ∈ G^r``.
        """

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    @property
    def decided(self) -> bool:
        """Whether the process has decided."""
        return self._decision is not None

    @property
    def decision(self) -> DecisionRecord | None:
        """The decision record, or ``None``."""
        return self._decision

    def _decide(self, round_no: int, value: Any) -> None:
        """Record an irrevocable decision.

        Raises
        ------
        RuntimeError
            On a second decision attempt — this would be a violation of
            Lemma 10 and indicates an algorithm bug, so it fails loudly
            instead of being silently ignored.
        """
        if self._decision is not None:
            raise RuntimeError(
                f"process {self.pid} attempted to decide twice "
                f"(first {self._decision}, now round {round_no} value {value!r})"
            )
        self._decision = DecisionRecord(process=self.pid, round_no=round_no, value=value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of the externally relevant state.

        Subclasses extend this; the simulator records it each round when
        tracing is enabled.
        """
        return {
            "pid": self.pid,
            "decided": self.decided,
            "decision": None
            if self._decision is None
            else {"round": self._decision.round_no, "value": self._decision.value},
        }

    def __repr__(self) -> str:
        status = (
            f"decided={self._decision.value!r}@r{self._decision.round_no}"
            if self._decision
            else "undecided"
        )
        return f"{type(self).__name__}(pid={self.pid}, {status})"
