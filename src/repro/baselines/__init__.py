"""Baseline algorithms for comparison (BASELINE experiment).

* :class:`~repro.baselines.floodmin.FloodMinProcess` — the classic
  synchronous k-set agreement algorithm (Chaudhuri): flood minima for
  ``⌊f/k⌋ + 1`` rounds, decide the minimum seen.  Correct with at most
  ``f`` crashes; **incorrect** under ``Psrcs(k)`` partitioning — the
  benchmark shows it.
* :class:`~repro.baselines.flooding.FloodingConsensusProcess` — ``f + 1``
  round flooding consensus, the k = 1 special case.
* :class:`~repro.baselines.local_min.LocalMinProcess` — a deliberately
  naive foil: decide the minimum heard value after a fixed horizon.  Its
  failures delineate what the skeleton approximation buys.
"""

from repro.baselines.floodmin import FloodMinProcess, make_floodmin_processes
from repro.baselines.flooding import (
    FloodingConsensusProcess,
    make_flooding_processes,
)
from repro.baselines.local_min import LocalMinProcess, make_local_min_processes
from repro.baselines.async_kset import AsyncKSetProcess, make_async_kset_processes

__all__ = [
    "FloodMinProcess",
    "make_floodmin_processes",
    "FloodingConsensusProcess",
    "make_flooding_processes",
    "LocalMinProcess",
    "make_local_min_processes",
    "AsyncKSetProcess",
    "make_async_kset_processes",
]
