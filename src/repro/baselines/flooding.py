"""Flooding consensus: the ``f + 1``-round synchronous classic.

The k = 1 counterpart of FloodMin: every process floods the full set of
values it has seen; after ``f + 1`` rounds there must have been a clean
round (at most ``f`` crashes spread over ``f + 1`` rounds), after which all
non-crashed processes hold the same value set and decide its minimum.

Included to situate Algorithm 1's §V consensus remark: under a crash
adversary both reach consensus; under a single-root-component ``Psrcs``
adversary only Algorithm 1 does (flooding consensus assumes it hears from
all correct processes, which partitions break).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.rounds.messages import Message
from repro.rounds.process import Process


class FloodingConsensusProcess(Process):
    """One flooding-consensus process (decide min of the value set after
    ``f + 1`` rounds)."""

    def __init__(self, pid: int, n: int, initial_value: Any, f: int) -> None:
        super().__init__(pid, n, initial_value)
        if f < 0:
            raise ValueError("f must be >= 0")
        self.f = f
        self.decision_round = f + 1
        self.seen: set[Any] = {initial_value}

    def send(self, round_no: int) -> Message:
        return Message(
            sender=self.pid,
            round_no=round_no,
            kind="flood",
            payload={"seen": sorted(self.seen, key=repr)},
        )

    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        for msg in received.values():
            self.seen.update(msg.payload["seen"])
        if round_no == self.decision_round and not self.decided:
            self._decide(round_no, min(self.seen))


def make_flooding_processes(
    n: int, f: int, values: list[Any] | None = None
) -> list[FloodingConsensusProcess]:
    if values is None:
        values = list(range(n))
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    return [FloodingConsensusProcess(pid, n, values[pid], f=f) for pid in range(n)]
