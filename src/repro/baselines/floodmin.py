"""FloodMin: synchronous k-set agreement under crash faults.

The classic algorithm (Chaudhuri '93 [5]): tolerate up to ``f`` crashes by
flooding the minimum for ``⌊f/k⌋ + 1`` rounds, then deciding the minimum
value seen.  Correctness intuition: the run contains at least one *clean*
round (fewer than ``k`` crashes in each of the ``⌊f/k⌋ + 1`` round slots is
impossible by pigeonhole), after which at most ``k`` distinct minima can
survive.

FloodMin is the natural baseline for Algorithm 1 because it shows what the
crash-synchronous assumption buys (decision in ``⌊f/k⌋ + 1`` rounds, versus
``r_ST + 2n - 1``) and what it costs (no tolerance for partitioning: under
the Theorem 2 / grouped-source adversaries the loner components never hear
the flood, so FloodMin's decisions can exceed ``k`` distinct values or
violate nothing but produce them trivially — the BASELINE benchmark
tabulates both regimes).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.rounds.messages import Message
from repro.rounds.process import Process


class FloodMinProcess(Process):
    """One FloodMin process.

    Parameters
    ----------
    pid, n, initial_value:
        See :class:`~repro.rounds.process.Process`.
    f:
        Crash-fault bound the algorithm is configured for.
    k:
        Agreement parameter; decision happens at the end of round
        ``⌊f/k⌋ + 1``.
    """

    def __init__(self, pid: int, n: int, initial_value: Any, f: int, k: int) -> None:
        super().__init__(pid, n, initial_value)
        if k < 1:
            raise ValueError("k must be >= 1")
        if f < 0:
            raise ValueError("f must be >= 0")
        self.f = f
        self.k = k
        self.decision_round = f // k + 1
        self.current_min: Any = initial_value

    def send(self, round_no: int) -> Message:
        return Message(
            sender=self.pid,
            round_no=round_no,
            kind="floodmin",
            payload={"min": self.current_min},
        )

    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        values = [msg.payload["min"] for msg in received.values()]
        if values:
            self.current_min = min([self.current_min, *values])
        if round_no == self.decision_round and not self.decided:
            self._decide(round_no, self.current_min)


def make_floodmin_processes(
    n: int, f: int, k: int, values: list[Any] | None = None
) -> list[FloodMinProcess]:
    """The full FloodMin process vector (distinct proposals by default)."""
    if values is None:
        values = list(range(n))
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    return [FloodMinProcess(pid, n, values[pid], f=f, k=k) for pid in range(n)]
