"""LocalMin: the naive foil baseline.

Decide the minimum value heard within a fixed horizon of ``R`` rounds — no
skeleton reasoning, no fault model.  It "works" exactly when information
from a common source reaches everyone within the horizon and fails
otherwise:

* under a crash adversary with an early crash it can decide more than ``k``
  values (processes that heard the crashed minimum vs. those that did not);
* under ``Psrcs(k)`` adversaries it decides up to one value per root
  component *plus* noise-dependent extras, with no bound tied to ``k``.

The BASELINE experiment runs it side by side with FloodMin and Algorithm 1
to make visible what the stable-skeleton approximation actually buys.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.rounds.messages import Message
from repro.rounds.process import Process


class LocalMinProcess(Process):
    """Decide ``min`` of everything heard by round ``horizon``."""

    def __init__(self, pid: int, n: int, initial_value: Any, horizon: int) -> None:
        super().__init__(pid, n, initial_value)
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        self.current_min: Any = initial_value

    def send(self, round_no: int) -> Message:
        return Message(
            sender=self.pid,
            round_no=round_no,
            kind="localmin",
            payload={"min": self.current_min},
        )

    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        values = [msg.payload["min"] for msg in received.values()]
        if values:
            self.current_min = min([self.current_min, *values])
        if round_no == self.horizon and not self.decided:
            self._decide(round_no, self.current_min)


def make_local_min_processes(
    n: int, horizon: int, values: list[Any] | None = None
) -> list[LocalMinProcess]:
    if values is None:
        values = list(range(n))
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    return [LocalMinProcess(pid, n, values[pid], horizon=horizon) for pid in range(n)]
