"""The classic one-shot asynchronous k-set agreement baseline.

Chaudhuri's observation (cited as [5]): with at most ``f < k`` crash
failures, asynchronous k-set agreement is trivially solvable — collect
``n - f`` proposals, decide the minimum.  At most ``f + 1 <= k`` distinct
minima can be decided (a process misses at most ``f`` of the smallest
values).

In the round-based simulation the "collect n - f values" step becomes:
stay in the collection phase until proposals from ``n - f`` distinct
processes have been received (accumulated across rounds), then decide.

Why include it: it brackets Algorithm 1 from the *asynchronous* side the
way FloodMin does from the synchronous side.

* Under crash adversaries with ``f_actual <= f`` it is correct and decides
  as soon as enough values arrive (typically round 1).
* Under ``Psrcs(k)`` partition adversaries it **deadlocks**: a loner never
  hears ``n - f`` processes, so termination fails — the liveness failure
  mode, complementary to FloodMin's safety failure.  Algorithm 1 is the
  only one of the three that adapts to what the network actually provides.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.rounds.messages import Message
from repro.rounds.process import Process


class AsyncKSetProcess(Process):
    """Collect ``n - f`` proposals (cumulative), decide the minimum."""

    def __init__(self, pid: int, n: int, initial_value: Any, f: int) -> None:
        super().__init__(pid, n, initial_value)
        if not 0 <= f < n:
            raise ValueError(f"need 0 <= f < n, got f={f}")
        self.f = f
        self.quorum = n - f
        self.collected: dict[int, Any] = {pid: initial_value}

    def send(self, round_no: int) -> Message:
        return Message(
            sender=self.pid,
            round_no=round_no,
            kind="prop",
            payload={"value": self.initial_value},
        )

    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        for sender, msg in received.items():
            self.collected.setdefault(sender, msg.payload["value"])
        if not self.decided and len(self.collected) >= self.quorum:
            self._decide(round_no, min(self.collected.values()))


def make_async_kset_processes(
    n: int, f: int, values: list[Any] | None = None
) -> list[AsyncKSetProcess]:
    """Process vector for the asynchronous baseline (tolerates ``f < k``
    crashes for k-set agreement)."""
    if values is None:
        values = list(range(n))
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    return [AsyncKSetProcess(pid, n, values[pid], f=f) for pid in range(n)]
