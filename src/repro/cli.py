"""Command-line interface.

Subcommands::

    skeleton-agreement figure1            # regenerate Figure 1 (a)-(h)
    skeleton-agreement run ...            # simulate Algorithm 1
    skeleton-agreement theorem2 ...       # the impossibility construction
    skeleton-agreement check ...          # Psrcs(k) on a grouped adversary
    skeleton-agreement sweep ...          # ALG-AGREE/THM1 parameter sweep
    skeleton-agreement ablation ...       # design-knob ablation matrix
    skeleton-agreement duality ...        # §V rc-vs-α exploration
    skeleton-agreement campaign run ...   # parallel, resumable campaigns
    skeleton-agreement campaign status .. # store-vs-grid reconciliation
    skeleton-agreement campaign report .. # per-scenario result table

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.analysis.reporting import format_table
from repro.analysis.stats import decision_stats
from repro.core.algorithm import make_processes
from repro.experiments.figure1 import render_figure1
from repro.experiments.sweeps import run_algorithm1
from repro.experiments.theorem2 import theorem2_experiment
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs


def _cmd_figure1(args: argparse.Namespace) -> int:
    print("Figure 1 — 6 processes, Psrcs(3) holds (self-loops omitted)")
    print()
    print(render_figure1())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    adversary = GroupedSourceAdversary(
        args.n,
        num_groups=args.groups,
        seed=args.seed,
        noise=args.noise,
        topology=args.topology,
    )
    run = run_algorithm1(adversary, max_rounds=args.max_rounds)
    report = check_agreement_properties(run, args.k)
    stats = decision_stats(run)
    print(report.summary())
    print()
    rows = [
        ["processes", run.n],
        ["rounds simulated", run.num_rounds],
        ["root components", len(root_components(run.stable_skeleton()))],
        ["distinct decisions", report.num_decision_values],
        ["last decision round", stats.last_decision_round],
        ["Lemma 11 bound", stats.lemma11_bound],
    ]
    print(format_table(["quantity", "value"], rows))
    return 0 if report.all_hold else 1


def _cmd_theorem2(args: argparse.Namespace) -> int:
    report = theorem2_experiment(args.n, args.k)
    rows = [
        ["Psrcs(k) holds", report.psrcs_k_holds],
        ["Psrcs(k-1) holds", report.psrcs_k_minus_1_holds],
        ["distinct decisions", report.distinct_decisions],
        ["forced value count (=k)", report.k],
        ["isolated decided own value", report.isolated_decided_own],
        ["confirms Theorem 2", report.confirms_theorem],
    ]
    print(format_table(["check", "result"], rows, title=f"Theorem 2, n={args.n}, k={args.k}"))
    return 0 if report.confirms_theorem else 1


def _cmd_check(args: argparse.Namespace) -> int:
    adversary = GroupedSourceAdversary(
        args.n, num_groups=args.groups, seed=args.seed, topology=args.topology
    )
    stable = adversary.declared_stable_graph()
    predicate = Psrcs(args.k)
    result = predicate.check_skeleton(stable)
    print(result.explain())
    print(f"tightest k (α of conflict graph): {predicate.tightest_k(stable)}")
    print(f"root components: {len(root_components(stable))}")
    return 0 if result.holds else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import SweepResult, agreement_sweep

    rows = agreement_sweep(
        ns=args.n, ks=args.k, seeds=range(args.seeds), noise=args.noise
    )
    print(
        format_table(
            SweepResult.HEADERS,
            [r.as_row() for r in rows],
            title="Agreement sweep (Theorem 16 / Theorem 1)",
        )
    )
    bad = [r for r in rows if r.distinct_decisions > r.k or not r.all_decided]
    if bad:
        print(f"\n{len(bad)} runs violated their bound!")
        return 1
    print(f"\nall {len(rows)} runs within their k bound and terminated")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablation import AblationOutcome, standard_ablation_suite

    outcomes = standard_ablation_suite(
        n=args.n, k=args.k, seeds=range(args.seeds)
    )
    print(
        format_table(
            AblationOutcome.HEADERS,
            [o.as_row() for o in outcomes],
            title=f"Ablation matrix (n={args.n}, k={args.k}, "
            f"{args.seeds} seeds)",
        )
    )
    paper = outcomes[0]
    clean = (
        paper.invariant_violations == 0
        and paper.agreement_violations == 0
        and paper.termination_failures == 0
    )
    return 0 if clean else 1


def _cmd_duality(args: argparse.Namespace) -> int:
    from repro.experiments.duality import duality_sweep

    rows = duality_sweep(
        ns=tuple(args.n), densities=tuple(args.density), seeds=range(args.seeds)
    )
    print(
        format_table(
            ["n", "density", "mean rc", "mean α", "mean gap", "Thm1 violations"],
            rows,
            title="Duality: root components vs tightest Psrcs level (§V)",
        )
    )
    return 0 if all(row[5] == 0 for row in rows) else 1


def _campaign_from_args(args: argparse.Namespace):
    from repro.engine import Campaign, ScenarioGrid, agreement_grid

    if args.grid_json:
        with open(args.grid_json, "r", encoding="utf-8") as fh:
            grid = ScenarioGrid.from_json(fh.read())
    else:
        grid = agreement_grid(
            ns=args.n,
            ks=args.k,
            seeds=range(args.seeds),
            noises=args.noise,
            topology=args.topology,
        )
    return Campaign(
        grid,
        store=args.store,
        jobs=getattr(args, "jobs", 1),
        timeout=getattr(args, "timeout", None),
        backend=getattr(args, "backend", "reference"),
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    report = campaign.run(resume=not args.no_resume)
    print(report.summary())
    if args.summary:
        lines = campaign.write_summary(args.summary)
        print(f"\nwrote {lines} canonical summary lines to {args.summary}")
    return 0 if campaign.status().succeeded else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    status = campaign.status()
    print(status.summary())
    return 0 if status.succeeded else 1


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    print(campaign.report_table(limit=args.limit))
    results = campaign.completed_results()
    failed = [r for r in results if not r.ok]
    bad = [
        r
        for r in results
        if r.ok and (not r.k_agreement_holds or not r.all_decided)
    ]
    print(
        f"\n{len(results)}/{len(campaign.specs)} scenarios stored, "
        f"{len(failed)} failed to execute, "
        f"{len(bad)} violated their k bound or failed to terminate"
    )
    # A half-executed grid must not report green: the unexecuted half
    # could hold the violations.
    succeeded = campaign.status().succeeded
    return 0 if succeeded and results and not bad else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="skeleton-agreement",
        description="k-set agreement with stable skeleton graphs "
        "(Biely, Robinson, Schmid 2011) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure1", help="regenerate Figure 1").set_defaults(
        func=_cmd_figure1
    )

    p_run = sub.add_parser("run", help="simulate Algorithm 1")
    p_run.add_argument("-n", type=int, default=9, help="number of processes")
    p_run.add_argument("-k", type=int, default=3, help="agreement parameter")
    p_run.add_argument("--groups", type=int, default=3, help="root components")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--noise", type=float, default=0.15)
    p_run.add_argument(
        "--topology", choices=["star", "cycle", "clique"], default="cycle"
    )
    p_run.add_argument("--max-rounds", type=int, default=None)
    p_run.set_defaults(func=_cmd_run)

    p_thm2 = sub.add_parser("theorem2", help="impossibility construction")
    p_thm2.add_argument("-n", type=int, default=8)
    p_thm2.add_argument("-k", type=int, default=3)
    p_thm2.set_defaults(func=_cmd_theorem2)

    p_check = sub.add_parser("check", help="check Psrcs(k) on an adversary")
    p_check.add_argument("-n", type=int, default=9)
    p_check.add_argument("-k", type=int, default=3)
    p_check.add_argument("--groups", type=int, default=3)
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument(
        "--topology", choices=["star", "cycle", "clique"], default="cycle"
    )
    p_check.set_defaults(func=_cmd_check)

    p_sweep = sub.add_parser("sweep", help="agreement parameter sweep")
    p_sweep.add_argument("-n", type=int, nargs="+", default=[6, 9])
    p_sweep.add_argument("-k", type=int, nargs="+", default=[2, 3])
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.add_argument("--noise", type=float, default=0.2)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_abl = sub.add_parser("ablation", help="design-knob ablation matrix")
    p_abl.add_argument("-n", type=int, default=9)
    p_abl.add_argument("-k", type=int, default=3)
    p_abl.add_argument("--seeds", type=int, default=6)
    p_abl.set_defaults(func=_cmd_ablation)

    p_dual = sub.add_parser("duality", help="rc vs α exploration (§V)")
    p_dual.add_argument("-n", type=int, nargs="+", default=[6, 8, 10])
    p_dual.add_argument("--density", type=float, nargs="+",
                        default=[0.05, 0.15, 0.3])
    p_dual.add_argument("--seeds", type=int, default=5)
    p_dual.set_defaults(func=_cmd_duality)

    p_camp = sub.add_parser(
        "campaign", help="parallel, resumable Monte-Carlo campaigns"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def _add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store", required=True, help="JSONL journal path (resume key)"
        )
        p.add_argument("-n", type=int, nargs="+", default=[6, 9])
        p.add_argument("-k", type=int, nargs="+", default=[2, 3])
        p.add_argument("--seeds", type=int, default=3,
                       help="seed range 0..S-1 per grid point")
        p.add_argument("--noise", type=float, nargs="+", default=[0.15])
        p.add_argument(
            "--topology", choices=["star", "cycle", "clique"], default="cycle"
        )
        p.add_argument(
            "--grid-json",
            default=None,
            help='grid file {"axes": {...}} overriding the flag-built grid',
        )

    p_crun = camp_sub.add_parser("run", help="execute missing scenarios")
    _add_grid_args(p_crun)
    p_crun.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    p_crun.add_argument(
        "--backend",
        choices=["reference", "vectorized", "auto"],
        default="reference",
        help="execution engine: the per-object reference simulator, the "
        "batched-matrix fast path, or auto (fast path with transparent "
        "fallback); metrics and summaries are identical either way",
    )
    p_crun.add_argument("--timeout", type=float, default=None,
                        help="per-scenario time budget in seconds")
    p_crun.add_argument("--no-resume", action="store_true",
                        help="re-execute everything, ignoring the store")
    p_crun.add_argument("--summary", default=None,
                        help="also write the canonical grid-ordered summary "
                        "JSONL here")
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cstat = camp_sub.add_parser("status", help="reconcile store vs grid")
    _add_grid_args(p_cstat)
    p_cstat.set_defaults(func=_cmd_campaign_status)

    p_crep = camp_sub.add_parser("report", help="per-scenario result table")
    _add_grid_args(p_crep)
    p_crep.add_argument("--limit", type=int, default=None,
                        help="show at most this many rows")
    p_crep.set_defaults(func=_cmd_campaign_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
