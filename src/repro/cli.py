"""Command-line interface.

Subcommands::

    skeleton-agreement figure1            # regenerate Figure 1 (a)-(h)
    skeleton-agreement run ...            # simulate Algorithm 1
    skeleton-agreement theorem2 ...       # the impossibility construction
    skeleton-agreement check ...          # Psrcs(k) on a grouped adversary
    skeleton-agreement sweep ...          # ALG-AGREE/THM1 parameter sweep
    skeleton-agreement ablation ...       # design-knob ablation matrix
    skeleton-agreement duality ...        # §V rc-vs-α exploration
    skeleton-agreement eventual ...       # ♦Psrcs bad-prefix step function
    skeleton-agreement fuzz ...           # differential backend fuzzing
    skeleton-agreement campaign run ...   # parallel, resumable campaigns
    skeleton-agreement campaign status .. # store-vs-grid reconciliation
    skeleton-agreement campaign report .. # per-scenario / aggregate tables
    skeleton-agreement campaign serve ... # always-on campaign service daemon

Every experiment family (``figure1``, ``theorem2``, ``sweeps``,
``termination``, ``ablation``, ``duality``, ``eventual``, ``latency``) is
a registered :class:`~repro.engine.registry.ExperimentSpec`; the
per-family subcommands above are sugar over
``campaign run --family <name>`` and therefore all take ``--jobs N``,
``--store PATH`` (resume-by-hash), ``--backend
{reference,vectorized,batched,auto}``, ``--batch-memory MIB`` (the
batch scheduler's per-batch envelope), ``--progress`` (stderr
progress lines: completed/total, scenarios/s, batches, ETA) and
``--metrics[=PATH]`` (write the engine-telemetry sidecar,
default ``<store>.metrics.json``; journals and summaries are
byte-identical with metrics on or off).  ``campaign report
--metrics`` renders a recorded sidecar as a table.

Execution-shape flags (byte-identical journals either way):
``--pack-widths`` packs mixed-``n`` scenarios into shared padded
tensor batches, ``--steal`` lets idle pool workers split oversized
planned batches at deterministic lane boundaries, and ``--device
{numpy,cupy,torch,strict}`` selects the array namespace the batched
kernel runs on (GPU devices require the optional library to be
installed; ``strict`` is a test namespace that rejects any
non-Array-API-standard call).

Hardening flags (same sharing): ``--contracts`` arms the runtime
contract layer (:mod:`repro.engine.contracts` — sampled re-derive-and-
compare checkpoints inside the kernels; violations abort with a minimal
JSON repro), ``--max-retries N`` retries transient worker failures
in-run with capped deterministic backoff before anything is journaled,
and ``--faults SPEC`` installs a seeded deterministic fault-injection
plan (:mod:`repro.engine.faults`) for resilience drills.  The ``fuzz``
family (``campaign run --family fuzz``) runs registered differential
fuzzing across all execution backends with shrinking repros.

``campaign run`` handles SIGINT/SIGTERM gracefully: the journal and
sidecars are flushed, workers are terminated, and a one-line resume
hint is printed before exiting 1 — re-running the same command resumes
exactly the unfinished scenarios.

``campaign serve`` runs the engine as an always-on daemon (persistent
worker pool, FIFO job queue, local HTTP/JSON API — see
:mod:`repro.engine.service`); ``campaign run/status/report --connect
URL`` (or the ``REPRO_DAEMON`` environment variable) turn the same
commands into thin clients of a running daemon, with transparent
fallback to in-process execution when it is unreachable.  Journal and
summary bytes of a served campaign are identical to the one-shot run.

Campaign exit codes: 0 = complete and green, 1 = incomplete (half-executed
grid) or failed (terminal errors), 2 = nothing to do (the grid expanded to
zero scenarios).

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.analysis.reporting import format_table
from repro.analysis.stats import decision_stats
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs
from repro.rounds.array_backend import DeviceUnavailableError


# ----------------------------------------------------------------------
# Experiment families: one runner for all sugar subcommands
# ----------------------------------------------------------------------
_FAMILY_PARAM_KEYS = (
    "n",
    "k",
    "seeds",
    "noise",
    "topology",
    "groups",
    "density",
    "bad_rounds",
    "max_rounds",
    "salt",
)


def _family_params(args: argparse.Namespace) -> dict:
    """Collect the grid params the user actually provided (``None`` means
    "use the family default")."""
    params = {}
    for key in _FAMILY_PARAM_KEYS:
        value = getattr(args, key, None)
        if value is not None:
            params[key] = value
    return params


def _errmsg(exc: BaseException) -> str:
    """``str(KeyError)`` is the repr of its argument (extra quotes);
    unwrap it for user-facing messages."""
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def _batch_memory_bytes(args: argparse.Namespace) -> int | None:
    """``--batch-memory`` is user-facing MiB; the engine speaks bytes."""
    mib = getattr(args, "batch_memory", None)
    return None if mib is None else mib * 2**20


def _metrics_path(args: argparse.Namespace) -> str | None:
    """Resolve ``--metrics[=PATH]``: an explicit PATH wins; a bare
    ``--metrics`` derives ``<store>.metrics.json`` and therefore needs
    ``--store``."""
    value = getattr(args, "metrics", None)
    if value is None:
        return None
    if value is True:
        store = getattr(args, "store", None)
        if not store:
            raise ValueError(
                "--metrics without a PATH requires --store (the sidecar "
                "defaults to <store>.metrics.json)"
            )
        return f"{store}.metrics.json"
    return value


def _metrics_recorder(args: argparse.Namespace):
    """``(recorder, sidecar_path)`` — ``(None, None)`` when metrics are
    off, so the engine sees the zero-cost null recorder."""
    path = _metrics_path(args)
    if path is None:
        return None, None
    from repro.engine.telemetry import Recorder

    return Recorder(), path


def _apply_hardening(args: argparse.Namespace) -> None:
    """Arm the opt-in hardening/device layers before any worker spawns.

    All of these set process environment variables, so pool workers
    (fork or spawn) inherit the configuration without any extra
    plumbing.
    """
    device = getattr(args, "device", None)
    if device is not None:
        from repro.rounds.array_backend import activate_device

        # Resolves eagerly: a missing optional library (CuPy/torch)
        # fails here at the CLI boundary, not mid-campaign in a worker.
        activate_device(device)
    if getattr(args, "contracts", False):
        from repro.engine import contracts

        contracts.activate()
    spec = getattr(args, "faults", None)
    if spec:
        from repro.engine import faults

        store = getattr(args, "store", None)
        ledger = f"{store}.faults.ledger" if store else None
        faults.FaultPlan.parse(spec, ledger=ledger).install()


def _progress_enabled(args: argparse.Namespace) -> bool:
    """Progress lines go to stderr when it is a terminal (or forced with
    ``--progress``); machine-read stdout is never touched either way."""
    flag = getattr(args, "progress", None)
    if flag is not None:
        return flag
    return sys.stderr.isatty()


def _run_family_command(name: str, args: argparse.Namespace) -> int:
    """Execute one family as a campaign and render its historical output.

    This is what makes ``figure1``/``theorem2``/``sweep``/``ablation``/
    ``duality``/``eventual`` sugar over ``campaign run --family <name>``:
    same grid, same runner, same journal format — plus the engine's
    ``--jobs``, resume and backend selection."""
    from repro.engine.registry import family_campaign, get_family

    try:
        family = get_family(name)
        campaign = family_campaign(
            name,
            _family_params(args),
            store=getattr(args, "store", None),
            jobs=getattr(args, "jobs", 1),
            timeout=getattr(args, "timeout", None),
            backend=getattr(args, "backend", None),
            batch_memory=_batch_memory_bytes(args),
            pack_widths=getattr(args, "pack_widths", False),
            steal=getattr(args, "steal", False),
            max_retries=getattr(args, "max_retries", 0) or 0,
        )
        recorder, metrics_path = _metrics_recorder(args)
        _apply_hardening(args)
    except (KeyError, ValueError, DeviceUnavailableError) as exc:
        print(_errmsg(exc))
        return 2
    campaign.run(progress=_progress_enabled(args), recorder=recorder)
    if recorder is not None:
        recorder.write_sidecar(metrics_path, label=family.name)
        print(f"wrote metrics sidecar to {metrics_path}", file=sys.stderr)
    results = campaign.completed_results()
    failed = [r for r in results if not r.ok]
    if failed:
        for result in failed[:5]:
            print(
                f"{result.scenario_id} ({result.status}): {result.error}"
            )
        print(
            f"\n{len(failed)}/{len(results)} scenarios failed to execute"
        )
        return 1
    if not results:
        print("nothing to do: the grid expanded to 0 scenarios")
        return 2
    text, code = family.render(results)
    print(text)
    return code


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    """The engine flags every family subcommand gains for free."""
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial)")
    p.add_argument("--store", default=None,
                   help="JSONL journal path (resume-by-hash; default: "
                   "in-memory)")
    p.add_argument(
        "--backend",
        choices=["reference", "vectorized", "batched", "auto"],
        default=None,
        help="execution engine (default: the family's preference; "
        "metrics are identical across backends)",
    )
    p.add_argument("--timeout", type=float, default=None,
                   help="per-scenario time budget in seconds")
    _add_scheduler_args(p)


def _add_scheduler_args(p: argparse.ArgumentParser) -> None:
    """Batch-scheduler knobs shared by campaign run and family sugar."""
    p.add_argument(
        "--batch-memory",
        type=int,
        default=None,
        metavar="MIB",
        help="per-batch memory envelope in MiB for the batched/auto "
        "backends (packing only: journals and summaries are "
        "byte-identical whatever the envelope)",
    )
    p.add_argument(
        "--pack-widths",
        action="store_true",
        help="cross-n lane packing for the batched/auto backends: batch "
        "mixed-n scenarios into one padded tensor program per round "
        "bucket instead of one group per n (packing only: journals and "
        "summaries are byte-identical either way)",
    )
    p.add_argument(
        "--steal",
        action="store_true",
        help="work-stealing pool mode (with --jobs > 1): idle workers "
        "steal deterministic halves of oversized planned batches, "
        "keeping tails short on skewed ensembles (execution shape only: "
        "journals and summaries are byte-identical either way)",
    )
    p.add_argument(
        "--device",
        default=None,
        metavar="DEV",
        help="array namespace for the batched kernel: numpy/cpu "
        "(default), cupy/cuda or torch when installed, or strict (a "
        "test namespace enforcing Array-API-standard calls); results "
        "are byte-identical across devices",
    )
    p.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        default=None,
        help="emit progress lines (completed/total, scenarios/s, "
        "batches, ETA) to stderr (default: only when stderr is a "
        "terminal)",
    )
    p.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="never emit progress lines",
    )
    p.add_argument(
        "--metrics",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="record engine telemetry (scheduler/executor/kernel/store "
        "counters and timings) and write a schema-versioned JSON sidecar "
        "(default PATH: <store>.metrics.json); journal and summary bytes "
        "are identical with metrics on or off",
    )
    p.add_argument(
        "--contracts",
        action="store_true",
        help="arm the runtime contract layer: sampled re-derive-and-"
        "compare invariant checkpoints on the kernel/scheduler/executor/"
        "store boundaries; a violation aborts the run with a minimal "
        "JSON repro (journal and summary bytes are identical with "
        "contracts on or off)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="in-run retry budget per work unit for transient worker "
        "failures (crashed pools, injected faults), with capped "
        "deterministic backoff; 0 (default) fails fast",
    )
    p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="install a deterministic seeded fault-injection plan, e.g. "
        "'seed=7,kill=0.2,torn=0.5' (keys: seed, kill, stall, transient, "
        "torn, drop_meta, stall_s); victims are chosen by content hash, "
        "each fault fires once (ledger: <store>.faults.ledger), and a "
        "resumed run reconverges to byte-identical summaries",
    )
    p.add_argument(
        "--workers",
        default=None,
        metavar="LIST",
        help="distributed execution: comma-separated remote worker "
        "endpoints (host:port to dial a 'repro worker --listen', or "
        "listen:[host:]port to accept a 'repro worker --connect'); "
        "planned batches ship to the fleet and results shard-merge "
        "back in plan order, so journal and summary bytes are "
        "identical to a serial single-host run",
    )


# ----------------------------------------------------------------------
# Plain subcommands
# ----------------------------------------------------------------------
def _cmd_figure1(args: argparse.Namespace) -> int:
    return _run_family_command("figure1", args)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import run_algorithm1

    adversary = GroupedSourceAdversary(
        args.n,
        num_groups=args.groups,
        seed=args.seed,
        noise=args.noise,
        topology=args.topology,
    )
    run = run_algorithm1(adversary, max_rounds=args.max_rounds)
    report = check_agreement_properties(run, args.k)
    stats = decision_stats(run)
    print(report.summary())
    print()
    rows = [
        ["processes", run.n],
        ["rounds simulated", run.num_rounds],
        ["root components", len(root_components(run.stable_skeleton()))],
        ["distinct decisions", report.num_decision_values],
        ["last decision round", stats.last_decision_round],
        ["Lemma 11 bound", stats.lemma11_bound],
    ]
    print(format_table(["quantity", "value"], rows))
    return 0 if report.all_hold else 1


def _cmd_theorem2(args: argparse.Namespace) -> int:
    return _run_family_command("theorem2", args)


def _cmd_check(args: argparse.Namespace) -> int:
    adversary = GroupedSourceAdversary(
        args.n, num_groups=args.groups, seed=args.seed, topology=args.topology
    )
    stable = adversary.declared_stable_graph()
    predicate = Psrcs(args.k)
    result = predicate.check_skeleton(stable)
    print(result.explain())
    print(f"tightest k (α of conflict graph): {predicate.tightest_k(stable)}")
    print(f"root components: {len(root_components(stable))}")
    return 0 if result.holds else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    return _run_family_command("sweeps", args)


def _cmd_ablation(args: argparse.Namespace) -> int:
    return _run_family_command("ablation", args)


def _cmd_duality(args: argparse.Namespace) -> int:
    return _run_family_command("duality", args)


def _cmd_eventual(args: argparse.Namespace) -> int:
    return _run_family_command("eventual", args)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    return _run_family_command("fuzz", args)


# ----------------------------------------------------------------------
# Campaign subcommands
# ----------------------------------------------------------------------
_GRID_DEFAULTS = {"n": [6, 9], "k": [2, 3], "seeds": 3, "noise": [0.15],
                  "topology": "cycle"}


def _grid_from_args(args: argparse.Namespace):
    """The generic agreement grid (or ``--grid-json`` file) — shared by
    in-process execution and daemon submission so both run the exact
    same grid."""
    from repro.engine import ScenarioGrid, agreement_grid

    if args.grid_json:
        with open(args.grid_json, "r", encoding="utf-8") as fh:
            return ScenarioGrid.from_json(fh.read())
    return agreement_grid(
        ns=args.n if args.n is not None else _GRID_DEFAULTS["n"],
        ks=args.k if args.k is not None else _GRID_DEFAULTS["k"],
        seeds=range(
            args.seeds if args.seeds is not None
            else _GRID_DEFAULTS["seeds"]
        ),
        noises=args.noise if args.noise is not None
        else _GRID_DEFAULTS["noise"],
        topology=args.topology or _GRID_DEFAULTS["topology"],
    )


def _campaign_from_args(args: argparse.Namespace):
    from repro.engine import Campaign

    if getattr(args, "family", None):
        from repro.engine.registry import family_campaign

        return family_campaign(
            args.family,
            _family_params(args),
            store=args.store,
            jobs=getattr(args, "jobs", 1),
            timeout=getattr(args, "timeout", None),
            backend=getattr(args, "backend", None),
            batch_memory=_batch_memory_bytes(args),
            pack_widths=getattr(args, "pack_widths", False),
            steal=getattr(args, "steal", False),
            max_retries=getattr(args, "max_retries", 0) or 0,
        )
    grid = _grid_from_args(args)
    return Campaign(
        grid,
        store=args.store,
        jobs=getattr(args, "jobs", 1),
        timeout=getattr(args, "timeout", None),
        backend=getattr(args, "backend", None) or "reference",
        batch_memory=_batch_memory_bytes(args),
        pack_widths=getattr(args, "pack_widths", False),
        steal=getattr(args, "steal", False),
        label="grid",
        max_retries=getattr(args, "max_retries", 0) or 0,
    )


def _resume_hint(args: argparse.Namespace, campaign) -> str:
    """One line telling the user how to pick up an interrupted run."""
    campaign.refresh()
    status = campaign.status()
    remaining = status.missing + status.timeouts
    cmd = "campaign run"
    if getattr(args, "family", None):
        cmd += f" --family {args.family}"
    if getattr(args, "store", None):
        cmd += f" --store {args.store}"
    return (
        f"interrupted: journal flushed; re-run `{cmd}` to resume the "
        f"{remaining} remaining scenario(s)"
    )


# ----------------------------------------------------------------------
# Daemon client mode (campaign run/status/report --connect URL)
# ----------------------------------------------------------------------
def _daemon_client(args: argparse.Namespace):
    """``(client, url)`` for a *reachable* daemon, else ``(None, None)``
    — the caller falls back to in-process execution."""
    from repro.engine.service import ServiceClient, ServiceError, daemon_url

    url = daemon_url(getattr(args, "connect", None))
    if not url:
        return None, None
    client = ServiceClient(url)
    try:
        client.health()
    except ServiceError as exc:
        print(
            f"daemon at {url} unavailable ({exc}); running in-process",
            file=sys.stderr,
        )
        return None, None
    return client, url


def _workers_list(args: argparse.Namespace) -> list[str] | None:
    """The ``--workers`` endpoints as a list (``None`` when unset)."""
    raw = getattr(args, "workers", None)
    if not raw:
        return None
    parts = [part.strip() for part in raw.split(",") if part.strip()]
    return parts or None


def _daemon_submission(args: argparse.Namespace) -> dict:
    """Translate ``campaign run`` flags into one POST /campaigns body.

    The daemon rebuilds the identical campaign from this (same grid,
    same backend and scheduler knobs), so its journal and summary bytes
    match the in-process run byte for byte.
    """
    payload: dict = {
        "store": os.path.abspath(args.store) if args.store else None,
        "backend": getattr(args, "backend", None),
        "batch_memory": _batch_memory_bytes(args),
        "pack_widths": getattr(args, "pack_widths", False),
        "steal": getattr(args, "steal", False),
        "max_retries": getattr(args, "max_retries", 0) or 0,
        "timeout": getattr(args, "timeout", None),
        "resume": not getattr(args, "no_resume", False),
        "contracts": getattr(args, "contracts", False),
        "workers": _workers_list(args),
    }
    if getattr(args, "family", None):
        payload["family"] = args.family
        params = _family_params(args)
        if params:
            payload["params"] = params
    else:
        payload["grid"] = _grid_from_args(args).to_dict()
    return {k: v for k, v in payload.items() if v is not None}


def _run_via_daemon(args: argparse.Namespace, client, url: str) -> int:
    from repro.engine.campaign import CampaignReport
    from repro.engine.service import ServiceError

    try:
        payload = _daemon_submission(args)
    except (KeyError, ValueError) as exc:
        print(_errmsg(exc))
        return 2
    progress = _progress_enabled(args)

    def on_progress(doc: dict) -> None:
        p = doc["progress"]
        eta = f" · eta {p['eta_s']:.0f}s" if p.get("eta_s") else ""
        print(
            f"[daemon {doc['id']}] {p['done']}/{p['total']} scenarios"
            f" · batch {p['batches_done']}/{p['batches_planned']}{eta}",
            file=sys.stderr, flush=True,
        )

    try:
        submitted = client.submit(payload)
        print(
            f"submitted campaign {submitted['id']} to {url} "
            f"(store {submitted['store']})",
            file=sys.stderr,
        )
        doc = client.wait(
            submitted["id"], on_progress=on_progress if progress else None
        )
    except ServiceError as exc:
        print(f"daemon error: {exc}", file=sys.stderr)
        return 1
    if doc.get("report"):
        print(CampaignReport(**doc["report"]).summary())
    if doc.get("error"):
        print(f"daemon: {doc['error']}", file=sys.stderr)
    if getattr(args, "summary", None):
        text = client.results_text(doc["id"], view="summary")
        with open(args.summary, "w", encoding="utf-8") as fh:
            fh.write(text)
        lines = text.count("\n")
        print(f"\nwrote {lines} canonical summary lines to {args.summary}")
    status = doc.get("status")
    if status:
        print(f"\n{status['describe']}")
        return int(status["exit_code"])
    return 1 if doc["state"] == "failed" else 0


def _daemon_job_for_store(args: argparse.Namespace, client):
    """The latest daemon job journaling to ``--store`` (``None`` when
    the daemon never saw this store — reconcile locally instead)."""
    from repro.engine.service import ServiceError

    try:
        jobs = client.jobs(store=args.store)
    except ServiceError:
        return None
    return jobs[-1] if jobs else None


def _daemon_state_exit(job: dict) -> int:
    """Translate a daemon job document to the 0/1/2 exit-code contract:
    queued/running count as incomplete (1); terminal jobs answer with
    their store-vs-grid reconciliation."""
    if job["state"] in ("queued", "running"):
        return 1
    status = job.get("status")
    if status is not None:
        return int(status["exit_code"])
    return 1 if job["state"] == "failed" else 0


def _status_via_daemon(args: argparse.Namespace, client, url: str) -> int:
    job = _daemon_job_for_store(args, client)
    if job is None:
        print(
            f"daemon at {url} has no campaign for this store; "
            "reconciling locally",
            file=sys.stderr,
        )
        return -1
    line = f"daemon campaign {job['id']}: {job['state']}"
    progress = job.get("progress")
    if progress:
        line += f" ({progress['done']}/{progress['total']} scenarios)"
    print(line)
    status = job.get("status")
    if status:
        print(status["describe"])
    elif job["state"] in ("queued", "running"):
        print("state: incomplete (campaign still running on the daemon)")
    elif job.get("error"):
        print(f"state: failed ({job['error']})")
    return _daemon_state_exit(job)


def _report_via_daemon(args: argparse.Namespace, client, url: str) -> int:
    from repro.engine.service import ServiceError

    job = _daemon_job_for_store(args, client)
    if job is None:
        print(
            f"daemon at {url} has no campaign for this store; "
            "reporting locally",
            file=sys.stderr,
        )
        return -1
    view = "aggregate" if getattr(args, "aggregate", False) else "table"
    try:
        print(client.results_text(job["id"], view=view), end="")
    except ServiceError as exc:
        print(f"daemon error: {exc}", file=sys.stderr)
        return 1
    status = job.get("status")
    if status:
        print(f"\n{status['describe']}")
    return _daemon_state_exit(job)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import signal

    from repro.engine.contracts import ContractViolation
    from repro.engine.faults import InjectedFault
    from repro.engine.remote import RemoteWorkerError

    client, daemon = _daemon_client(args)
    if client is not None:
        return _run_via_daemon(args, client, daemon)
    try:
        campaign = _campaign_from_args(args)
        recorder, metrics_path = _metrics_recorder(args)
        _apply_hardening(args)
    except (KeyError, ValueError, DeviceUnavailableError) as exc:
        print(_errmsg(exc))
        return 2

    def _flush_sidecar() -> None:
        if recorder is not None:
            recorder.write_sidecar(
                metrics_path, label=getattr(args, "family", None) or "grid"
            )
            print(
                f"wrote metrics sidecar to {metrics_path}", file=sys.stderr
            )

    def _on_term(signum, frame):  # noqa: ARG001 — signal API
        raise KeyboardInterrupt

    # SIGINT already raises KeyboardInterrupt; route SIGTERM onto the
    # same path so both take the flush-journal/terminate-workers exit
    # (handler restoration matters for in-process callers, e.g. tests).
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _on_term)
        except ValueError:  # pragma: no cover — non-main thread
            pass
    try:
        report = campaign.run(
            resume=not args.no_resume, progress=_progress_enabled(args),
            recorder=recorder, workers=_workers_list(args),
        )
    except KeyboardInterrupt:
        # Every journaled record is already on disk (append + flush per
        # result) and the executor's shutdown path has terminated the
        # workers; what is left is the sidecar and a resume hint.
        _flush_sidecar()
        print(_resume_hint(args, campaign), file=sys.stderr)
        return 1
    except ContractViolation as exc:
        _flush_sidecar()
        print(f"contract violation: {exc}", file=sys.stderr)
        return 1
    except InjectedFault as exc:
        _flush_sidecar()
        print(f"injected fault: {exc}", file=sys.stderr)
        print(_resume_hint(args, campaign), file=sys.stderr)
        return 1
    except RemoteWorkerError as exc:
        _flush_sidecar()
        print(f"remote worker error: {exc}", file=sys.stderr)
        print(_resume_hint(args, campaign), file=sys.stderr)
        return 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    _flush_sidecar()
    print(report.summary())
    if args.summary:
        lines = campaign.write_summary(args.summary)
        print(f"\nwrote {lines} canonical summary lines to {args.summary}")
    status = campaign.status()
    print(f"\n{status.describe()}")
    return status.exit_code()


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    client, daemon = _daemon_client(args)
    if client is not None:
        code = _status_via_daemon(args, client, daemon)
        if code >= 0:
            return code
    try:
        campaign = _campaign_from_args(args)
    except (KeyError, ValueError) as exc:
        print(_errmsg(exc))
        return 2
    status = campaign.status()
    print(status.summary())
    print(f"\n{status.describe()}")
    return status.exit_code()


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    if getattr(args, "metrics", None) is None:
        client, daemon = _daemon_client(args)
        if client is not None:
            code = _report_via_daemon(args, client, daemon)
            if code >= 0:
                return code
    if getattr(args, "metrics", None) is not None:
        # Render a recorded telemetry sidecar instead of result rows.
        try:
            path = _metrics_path(args)
        except ValueError as exc:
            print(_errmsg(exc))
            return 2
        from repro.engine.telemetry import read_sidecar, render_sidecar

        try:
            sidecar = read_sidecar(path)
        except FileNotFoundError:
            print(
                f"no metrics sidecar at {path} "
                "(record one with `campaign run --metrics`)"
            )
            return 1
        except ValueError as exc:
            print(f"invalid metrics sidecar at {path}: {exc}")
            return 1
        print(render_sidecar(sidecar))
        return 0
    try:
        campaign = _campaign_from_args(args)
    except (KeyError, ValueError) as exc:
        print(_errmsg(exc))
        return 2
    family = None
    if getattr(args, "family", None):
        from repro.engine.registry import get_family

        family = get_family(args.family)
    results = campaign.completed_results()
    if args.aggregate:
        # Store-native aggregation: the family's table when it has one,
        # the generic latency percentile rollup otherwise — computed
        # straight from the journaled records.
        from repro.engine.aggregate import latency_table

        ok_results = [r for r in results if r.ok]
        try:
            if family is not None and family.aggregate is not None:
                table = family.aggregate(ok_results)
            else:
                table = latency_table(ok_results)
        except RuntimeError as exc:
            # e.g. an ensemble cell where no run decided: the rows are
            # not summarizable, which is a red report, not a crash.
            print(f"cannot aggregate this store: {exc}")
            return 1
        print(table.format(title="campaign aggregate "
                           f"({len(ok_results)} scenarios)"))
    elif family is not None and family.row is not None:
        shown = results if args.limit is None else results[: args.limit]
        print(
            family.table(
                shown,
                title=f"campaign report — family {family.name} "
                f"({len(results)} of {len(campaign.specs)} scenarios)",
            )
        )
    else:
        print(campaign.report_table(limit=args.limit))
    failed = [r for r in results if not r.ok]
    bad = [
        r
        for r in results
        if r.ok
        and (r.k_agreement_holds is False or r.all_decided is False)
    ]
    status = campaign.status()
    print(
        f"\n{len(results)}/{len(campaign.specs)} scenarios stored, "
        f"{len(failed)} failed to execute, "
        f"{len(bad)} violated their k bound or failed to terminate"
    )
    # A half-executed grid must not report green: the unexecuted half
    # could hold the violations.  An empty grid is not green either —
    # it is "nothing to do" (exit 2), so automation can tell vacuous
    # success from real success.
    print(status.describe())
    if status.exit_code() == 2:
        return 2
    if family is not None:
        # Family semantics own their verdicts (a non-terminating ablated
        # variant is a *successful* ablation finding, not a red report);
        # the family's render/aggregate path judges the science.  Here:
        # green iff fully executed with no terminal failures.
        return 0 if status.succeeded and results else 1
    return 0 if status.succeeded and results and not bad else 1


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    import tempfile

    try:
        _apply_hardening(args)
    except (ValueError, DeviceUnavailableError) as exc:
        print(_errmsg(exc))
        return 2
    spool = args.spool
    if spool is None:
        spool = tempfile.mkdtemp(prefix="repro-campaigns-")
    else:
        os.makedirs(spool, exist_ok=True)
    from repro.engine.service import serve

    return serve(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        slots=args.slots,
        spool=spool,
        shutdown_after=args.shutdown_after,
        port_file=args.port_file,
        metrics=not args.no_metrics,
        workers=_workers_list(args),
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine.remote import worker_serve

    return worker_serve(
        listen=args.listen,
        connect=args.connect,
        spool=args.spool,
        port_file=args.port_file,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="skeleton-agreement",
        description="k-set agreement with stable skeleton graphs "
        "(Biely, Robinson, Schmid 2011) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("figure1", help="regenerate Figure 1")
    p_fig1.add_argument("--max-rounds", type=int, default=None)
    _add_engine_args(p_fig1)
    p_fig1.set_defaults(func=_cmd_figure1)

    p_run = sub.add_parser("run", help="simulate Algorithm 1")
    p_run.add_argument("-n", type=int, default=9, help="number of processes")
    p_run.add_argument("-k", type=int, default=3, help="agreement parameter")
    p_run.add_argument("--groups", type=int, default=3, help="root components")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--noise", type=float, default=0.15)
    p_run.add_argument(
        "--topology", choices=["star", "cycle", "clique"], default="cycle"
    )
    p_run.add_argument("--max-rounds", type=int, default=None)
    p_run.set_defaults(func=_cmd_run)

    p_thm2 = sub.add_parser("theorem2", help="impossibility construction")
    p_thm2.add_argument("-n", type=int, nargs="+", default=[8])
    p_thm2.add_argument("-k", type=int, nargs="+", default=[3])
    _add_engine_args(p_thm2)
    p_thm2.set_defaults(func=_cmd_theorem2)

    p_check = sub.add_parser("check", help="check Psrcs(k) on an adversary")
    p_check.add_argument("-n", type=int, default=9)
    p_check.add_argument("-k", type=int, default=3)
    p_check.add_argument("--groups", type=int, default=3)
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument(
        "--topology", choices=["star", "cycle", "clique"], default="cycle"
    )
    p_check.set_defaults(func=_cmd_check)

    p_sweep = sub.add_parser("sweep", help="agreement parameter sweep")
    p_sweep.add_argument("-n", type=int, nargs="+", default=[6, 9])
    p_sweep.add_argument("-k", type=int, nargs="+", default=[2, 3])
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.add_argument("--noise", type=float, default=0.2)
    _add_engine_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_abl = sub.add_parser("ablation", help="design-knob ablation matrix")
    p_abl.add_argument("-n", type=int, default=9)
    p_abl.add_argument("-k", type=int, default=3)
    p_abl.add_argument("--seeds", type=int, default=6)
    _add_engine_args(p_abl)
    p_abl.set_defaults(func=_cmd_ablation)

    p_dual = sub.add_parser("duality", help="rc vs α exploration (§V)")
    p_dual.add_argument("-n", type=int, nargs="+", default=[6, 8, 10])
    p_dual.add_argument("--density", type=float, nargs="+",
                        default=[0.05, 0.15, 0.3])
    p_dual.add_argument("--seeds", type=int, default=5)
    _add_engine_args(p_dual)
    p_dual.set_defaults(func=_cmd_duality)

    p_ev = sub.add_parser(
        "eventual", help="♦Psrcs bad-prefix step function (§III)"
    )
    p_ev.add_argument("-n", type=int, nargs="+", default=[8])
    p_ev.add_argument("--bad-rounds", type=int, nargs="+",
                      default=[0, 1, 2, 4, 8, 12, 20])
    p_ev.add_argument("--seeds", type=int, default=1)
    _add_engine_args(p_ev)
    p_ev.set_defaults(func=_cmd_eventual)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential backend fuzzing with shrinking repros"
    )
    p_fuzz.add_argument("--seeds", type=int, default=None,
                        help="case budget (default 20)")
    p_fuzz.add_argument("--salt", type=int, default=None,
                        help="grid salt: a different salt draws a fresh "
                        "deterministic case set")
    _add_engine_args(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_camp = sub.add_parser(
        "campaign", help="parallel, resumable Monte-Carlo campaigns"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def _add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store", required=True, help="JSONL journal path (resume key)"
        )
        p.add_argument(
            "--family",
            default=None,
            help="run a registered experiment family (figure1, theorem2, "
            "sweeps, termination, ablation, duality, eventual, latency, "
            "fuzz) instead of the generic agreement grid",
        )
        p.add_argument("-n", type=int, nargs="+", default=None)
        p.add_argument("-k", type=int, nargs="+", default=None)
        p.add_argument("--seeds", type=int, default=None,
                       help="seed range 0..S-1 per grid point")
        p.add_argument("--noise", type=float, nargs="+", default=None)
        p.add_argument(
            "--topology", choices=["star", "cycle", "clique"], default=None
        )
        p.add_argument("--groups", type=int, default=None,
                       help="group count (termination/latency families)")
        p.add_argument("--density", type=float, nargs="+", default=None,
                       help="edge densities (duality family)")
        p.add_argument("--bad-rounds", type=int, nargs="+", default=None,
                       help="bad-prefix lengths (eventual family)")
        p.add_argument("--max-rounds", type=int, default=None,
                       help="round cap override (figure1 family)")
        p.add_argument("--salt", type=int, default=None,
                       help="grid salt (fuzz family: a different salt "
                       "draws a fresh deterministic case set)")
        p.add_argument(
            "--grid-json",
            default=None,
            help='grid file {"axes": {...}} overriding the flag-built grid',
        )
        p.add_argument(
            "--connect",
            default=None,
            metavar="URL",
            help="talk to a running `campaign serve` daemon at URL "
            "instead of executing in-process (also honored from the "
            "REPRO_DAEMON environment variable); falls back to "
            "in-process execution when the daemon is unreachable",
        )

    p_crun = camp_sub.add_parser("run", help="execute missing scenarios")
    _add_grid_args(p_crun)
    p_crun.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    p_crun.add_argument(
        "--backend",
        choices=["reference", "vectorized", "batched", "auto"],
        default=None,
        help="execution engine: the per-object reference simulator, the "
        "per-scenario matrix fast path, the mega-batched fast path "
        "(same-n scenarios stacked into one tensor program), or auto "
        "(fast path with transparent fallback, preferring mega-batches); "
        "metrics and summaries are identical either way",
    )
    p_crun.add_argument("--timeout", type=float, default=None,
                        help="per-scenario time budget in seconds")
    p_crun.add_argument("--no-resume", action="store_true",
                        help="re-execute everything, ignoring the store")
    p_crun.add_argument("--summary", default=None,
                        help="also write the canonical grid-ordered summary "
                        "JSONL here")
    _add_scheduler_args(p_crun)
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cstat = camp_sub.add_parser("status", help="reconcile store vs grid")
    _add_grid_args(p_cstat)
    p_cstat.set_defaults(func=_cmd_campaign_status)

    p_crep = camp_sub.add_parser(
        "report", help="per-scenario result table / store-native aggregates"
    )
    _add_grid_args(p_crep)
    p_crep.add_argument("--limit", type=int, default=None,
                        help="show at most this many rows")
    p_crep.add_argument(
        "--aggregate",
        action="store_true",
        help="print the store-native aggregate table (the family's "
        "aggregator, or the generic latency percentile rollup) instead "
        "of per-scenario rows",
    )
    p_crep.add_argument(
        "--metrics",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="render a recorded telemetry sidecar (default PATH: "
        "<store>.metrics.json) instead of result rows",
    )
    p_crep.set_defaults(func=_cmd_campaign_report)

    p_serve = camp_sub.add_parser(
        "serve",
        help="run the always-on campaign service: a persistent worker "
        "pool behind a local HTTP/JSON job API (submit with `campaign "
        "run --connect URL`)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="bind port (0 = ephemeral; the resolved "
                         "URL is announced on stderr and in --port-file)")
    p_serve.add_argument("--port-file", default=None, metavar="PATH",
                         help="write the resolved base URL here "
                         "(atomically) once listening")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="persistent pool worker processes shared "
                         "by all campaigns (default 2)")
    p_serve.add_argument("--slots", type=int, default=2,
                         help="campaigns running concurrently over the "
                         "shared pool (default 2)")
    p_serve.add_argument("--spool", default=None, metavar="DIR",
                         help="journal directory for submissions without "
                         "a store path (default: a fresh temp dir)")
    p_serve.add_argument("--shutdown-after", type=float, default=None,
                         metavar="S",
                         help="after S seconds stop accepting, drain the "
                         "queue, flush sidecars and exit 0 (SIGTERM "
                         "instead interrupts running campaigns — their "
                         "journals stay resumable by hash)")
    p_serve.add_argument("--no-metrics", action="store_true",
                         help="disable per-campaign telemetry recorders "
                         "(journal bytes are identical either way)")
    p_serve.add_argument(
        "--device", default=None, metavar="DEV",
        help="array namespace for the batched kernel (see campaign run)",
    )
    p_serve.add_argument(
        "--contracts", action="store_true",
        help="arm the runtime contract layer before the pool spawns, so "
        "every worker inherits it",
    )
    p_serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="install a deterministic fault-injection plan for the whole "
        "service (resilience drills; add ledger=PATH inside SPEC for "
        "once-only faults)",
    )
    p_serve.add_argument(
        "--workers", default=None, metavar="LIST",
        help="default remote worker fleet for served campaigns: "
        "comma-separated endpoints (host:port / listen:[host:]port); "
        "submissions may override with their own \"workers\" list, and "
        "/metrics reports per-endpoint liveness",
    )
    p_serve.set_defaults(func=_cmd_campaign_serve)

    p_worker = sub.add_parser(
        "worker",
        help="run a distributed execution worker: executes planned "
        "batches shipped by a campaign coordinator (campaign run "
        "--workers) and returns journal-record shards",
    )
    p_worker.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="bind and serve coordinator sessions until SIGTERM "
        "(port 0 picks a free port; see --port-file)",
    )
    p_worker.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="dial a coordinator's listen: endpoint instead (the "
        "ssh-spawned transport shape) and serve one session",
    )
    p_worker.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="with --listen: write the bound host:port here "
        "(atomically) once listening",
    )
    p_worker.add_argument(
        "--spool", default=None, metavar="PATH",
        help="append every produced journal record to this local shard "
        "file as well (worker-side durability)",
    )
    p_worker.set_defaults(func=_cmd_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
