"""Exact maximum independent set for small undirected graphs.

Why does a distributed-agreement reproduction need an independent-set
solver?  Checking the paper's predicate ``Psrcs(k)`` (definition (8))
naively enumerates all ``C(n, k+1)`` subsets ``S`` and asks for a common
2-source in each.  There is an exact reformulation:

    Define the *conflict graph* ``H`` on the process set with an undirected
    edge ``{q, q'}`` iff ``PT(q) ∩ PT(q') ≠ ∅``.  A set ``S`` violates
    ``Psrc`` iff no two of its members are adjacent in ``H`` — i.e. ``S`` is
    an independent set.  Hence

        ``Psrcs(k)``  ⇔  ``α(H) ≤ k``,

    where ``α`` is the independence number.

Maximum independent set is NP-hard, but our process counts are small
(n ≤ a few hundred) and the conflict graphs are dense (self-loops in ``PT``
make many pairs conflict), so a branch-and-bound search with greedy lower
bounds and a max-degree branching rule is fast in practice.  The solver also
supports the *decision* variant ``α(H) > k`` with early exit, which is what
the predicate checker actually needs.

Graphs are represented as ``dict[node, set[node]]`` undirected adjacency (no
self-loops; a self-loop would make the node excludable anyway).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

Node = Hashable
Adjacency = Mapping[Node, frozenset]


def _normalize(adjacency: Mapping) -> dict[Node, set[Node]]:
    """Validate and copy an undirected adjacency mapping (symmetrize)."""
    adj: dict[Node, set[Node]] = {u: set(vs) for u, vs in adjacency.items()}
    for u, vs in list(adj.items()):
        vs.discard(u)  # ignore self-loops
        for v in vs:
            if v not in adj:
                adj[v] = set()
            adj[v].add(u)
    return adj


def greedy_independent_set(adjacency: Mapping) -> set[Node]:
    """A (maximal, not maximum) independent set via min-degree greedy.

    Used as the initial lower bound of the branch-and-bound search; on the
    dense conflict graphs arising from ``Psrcs`` structures it is usually
    optimal already, which makes the exact search terminate quickly.
    """
    adj = _normalize(adjacency)
    chosen: set[Node] = set()
    alive = set(adj)
    degree = {u: len(adj[u] & alive) for u in alive}
    while alive:
        u = min(alive, key=lambda x: (degree[x], repr(x)))
        chosen.add(u)
        dead = {u} | (adj[u] & alive)
        alive -= dead
        for w in alive:
            degree[w] = len(adj[w] & alive)
    return chosen


def maximum_independent_set(adjacency: Mapping) -> set[Node]:
    """An exact maximum independent set via branch and bound.

    Branching rule: pick a maximum-degree vertex ``v`` among the remaining
    candidates; either exclude ``v`` (recurse on ``P - {v}``) or include it
    (recurse on ``P - N[v]``).  Pruning: abandon a branch when
    ``|current| + |candidates|`` cannot beat the incumbent.  Zero-degree
    candidates are absorbed immediately (always optimal to include).
    """
    adj = _normalize(adjacency)
    best = greedy_independent_set(adj)

    def search(current: set[Node], candidates: set[Node]) -> None:
        nonlocal best
        # Absorb isolated candidates: including them is always optimal.
        while True:
            isolated = [u for u in candidates if not (adj[u] & candidates)]
            if not isolated:
                break
            current = current | set(isolated)
            candidates = candidates - set(isolated)
        if len(current) > len(best):
            best = set(current)
        if not candidates:
            return
        if len(current) + len(candidates) <= len(best):
            return  # cannot improve
        v = max(candidates, key=lambda x: (len(adj[x] & candidates), repr(x)))
        # Branch 1: include v.
        search(current | {v}, candidates - ({v} | adj[v]))
        # Branch 2: exclude v.
        search(current, candidates - {v})

    search(set(), set(adj))
    return best


def independence_number(adjacency: Mapping) -> int:
    """The independence number ``α`` of the graph."""
    return len(maximum_independent_set(adjacency))


def has_independent_set_of_size(adjacency: Mapping, size: int) -> bool:
    """Decision variant with early exit: is ``α >= size``?

    This is the primitive the ``Psrcs(k)`` checker uses (with
    ``size = k + 1``); a witness-sized set aborts the search immediately,
    so runs that *violate* the predicate are detected fast.
    """
    if size <= 0:
        return True
    adj = _normalize(adjacency)
    if len(adj) < size:
        return False
    if len(greedy_independent_set(adj)) >= size:
        return True

    found = False

    def search(current: set[Node], candidates: set[Node]) -> None:
        nonlocal found
        if found:
            return
        while True:
            isolated = [u for u in candidates if not (adj[u] & candidates)]
            if not isolated:
                break
            current = current | set(isolated)
            candidates = candidates - set(isolated)
        if len(current) >= size:
            found = True
            return
        if not candidates or len(current) + len(candidates) < size:
            return
        v = max(candidates, key=lambda x: (len(adj[x] & candidates), repr(x)))
        search(current | {v}, candidates - ({v} | adj[v]))
        if not found:
            search(current, candidates - {v})

    search(set(), set(adj))
    return found


def find_independent_set_of_size(adjacency: Mapping, size: int) -> set[Node] | None:
    """Return an independent set of exactly ``size`` nodes, or ``None``.

    Used to extract *witness* sets ``S`` for ``Psrcs(k)`` violations — the
    predicate checker reports the concrete ``k+1`` processes with no common
    2-source.
    """
    if size <= 0:
        return set()
    adj = _normalize(adjacency)
    if len(adj) < size:
        return None

    result: set[Node] | None = None

    def search(current: set[Node], candidates: set[Node]) -> None:
        nonlocal result
        if result is not None:
            return
        while True:
            isolated = [u for u in candidates if not (adj[u] & candidates)]
            if not isolated:
                break
            current = current | set(isolated)
            candidates = candidates - set(isolated)
        if len(current) >= size:
            result = set(sorted(current, key=repr)[:size])
            return
        if not candidates or len(current) + len(candidates) < size:
            return
        v = max(candidates, key=lambda x: (len(adj[x] & candidates), repr(x)))
        search(current | {v}, candidates - ({v} | adj[v]))
        if result is None:
            search(current, candidates - {v})

    search(set(), set(adj))
    return result
