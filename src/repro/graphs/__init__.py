"""Directed-graph substrate used throughout the reproduction.

The paper's objects — per-round communication graphs :math:`G^r`, skeleton
graphs :math:`G^{\\cap r}`, the stable skeleton :math:`G^{\\cap\\infty}` and the
per-process *approximation graphs* :math:`G_p` — are all directed graphs over
a fixed finite process set.  This package provides:

* :class:`~repro.graphs.digraph.DiGraph` — a small, strict directed-graph
  container with set semantics (union / intersection / induced subgraphs),
* strongly connected components (:mod:`repro.graphs.scc`; iterative Tarjan and
  Kosaraju),
* condensation DAGs and root components (:mod:`repro.graphs.condensation`),
* reachability and path utilities (:mod:`repro.graphs.paths`),
* :class:`~repro.graphs.labeled.RoundLabeledDigraph` — the weighted digraph of
  Algorithm 1 whose edges carry round labels,
* graph generators (:mod:`repro.graphs.generators`),
* vectorized NumPy boolean-matrix kernels (:mod:`repro.graphs.matrices`),
* an exact maximum-independent-set solver (:mod:`repro.graphs.independent_set`)
  used by the :math:`P_{srcs}(k)` predicate checker.
"""

from repro.graphs.digraph import DiGraph, Edge
from repro.graphs.labeled import RoundLabeledDigraph
from repro.graphs.scc import strongly_connected_components, is_strongly_connected
from repro.graphs.condensation import (
    Condensation,
    condensation,
    root_components,
    sink_components,
)
from repro.graphs.paths import (
    ancestors,
    descendants,
    has_path,
    reachable_from,
    reaches,
    shortest_path,
    shortest_path_lengths,
)
from repro.graphs.independent_set import independence_number, maximum_independent_set

__all__ = [
    "DiGraph",
    "Edge",
    "RoundLabeledDigraph",
    "strongly_connected_components",
    "is_strongly_connected",
    "Condensation",
    "condensation",
    "root_components",
    "sink_components",
    "ancestors",
    "descendants",
    "has_path",
    "reachable_from",
    "reaches",
    "shortest_path",
    "shortest_path_lengths",
    "independence_number",
    "maximum_independent_set",
]
