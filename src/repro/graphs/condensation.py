"""Condensation DAGs and root components.

Contracting each strongly connected component of a digraph to a single node
yields an acyclic graph — the *condensation*.  The paper uses this twice:

* **Root components** (§II): an SCC with no incoming edge from outside
  itself.  Theorem 1 bounds their number by ``k`` under ``Psrcs(k)``; the
  one-to-one correspondence between root components of the stable skeleton
  and distinct decision values is the paper's headline structural insight.
* **Termination** (Lemma 11): every node of the condensation is reachable
  from some root, so decision messages flood from root components to all
  processes within ``n - 1`` extra rounds.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import strongly_connected_components

Node = Hashable


@dataclass(frozen=True)
class Condensation:
    """The condensation of a digraph.

    Attributes
    ----------
    components:
        The SCCs, indexed ``0 .. m-1``.
    dag:
        A :class:`DiGraph` on component indices; edge ``i -> j`` iff some
        edge of the original graph goes from a node of component ``i`` to a
        node of component ``j`` (``i != j``).  Acyclic by construction.
    component_of:
        Mapping from original node to its component index.
    """

    components: tuple[frozenset[Node], ...]
    dag: DiGraph
    component_of: dict[Node, int] = field(compare=False)

    def root_indices(self) -> list[int]:
        """Indices of components with no incoming DAG edge."""
        return [i for i in range(len(self.components)) if self.dag.in_degree(i) == 0]

    def sink_indices(self) -> list[int]:
        """Indices of components with no outgoing DAG edge."""
        return [i for i in range(len(self.components)) if self.dag.out_degree(i) == 0]

    def roots(self) -> list[frozenset[Node]]:
        """The root components themselves."""
        return [self.components[i] for i in self.root_indices()]

    def sinks(self) -> list[frozenset[Node]]:
        """The sink components themselves."""
        return [self.components[i] for i in self.sink_indices()]

    def topological_order(self) -> list[int]:
        """Component indices in topological order of the DAG (roots first).

        Kahn's algorithm; deterministic given the component indexing.
        """
        in_deg = {i: self.dag.in_degree(i) for i in range(len(self.components))}
        ready = sorted(i for i, d in in_deg.items() if d == 0)
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self.dag.successors(node)):
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.components):  # pragma: no cover - impossible
            raise RuntimeError("condensation DAG contains a cycle")
        return order


def condensation(graph: DiGraph) -> Condensation:
    """Compute the condensation of ``graph``.

    The component indexing is deterministic: components are sorted by their
    smallest element (via ``repr`` for heterogeneous node types), making the
    result reproducible across runs.
    """
    sccs = strongly_connected_components(graph)
    sccs_sorted = sorted(sccs, key=lambda c: repr(min(c, key=repr)))
    components = tuple(sccs_sorted)
    component_of: dict[Node, int] = {}
    for idx, comp in enumerate(components):
        for node in comp:
            component_of[node] = idx
    dag = DiGraph(nodes=range(len(components)))
    for u, v in graph.iter_edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return Condensation(components=components, dag=dag, component_of=component_of)


def is_root_component(graph: DiGraph, component: frozenset[Node]) -> bool:
    """The paper's definition (§II): ``C`` is a root component of ``G`` iff
    ``∀p ∈ C ∀q ∈ G: (q -> p) ∈ G ⇒ q ∈ C``.

    The caller is responsible for passing an actual SCC; this predicate only
    checks the no-incoming-edges condition.
    """
    return all(
        q in component
        for p in component
        for q in graph.predecessors(p)
    )


def root_components(graph: DiGraph) -> list[frozenset[Node]]:
    """All root components of ``graph``.

    Lemma 11's first step guarantees this list is nonempty for any nonempty
    graph: the condensation is a DAG, hence has at least one source.
    """
    return condensation(graph).roots()


def sink_components(graph: DiGraph) -> list[frozenset[Node]]:
    """All sink components (SCCs without outgoing edges)."""
    return condensation(graph).sinks()


def count_root_components(graph: DiGraph) -> int:
    """Number of root components — the quantity bounded by Theorem 1."""
    return len(root_components(graph))
