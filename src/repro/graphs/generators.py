"""Deterministic and random digraph generators.

Used by the adversaries (per-round communication graphs), the test suite
(random cross-validation against networkx) and the SCC-KERNEL benchmark.

All random generators take a :class:`numpy.random.Generator` so that every
experiment in the repository is exactly reproducible from a seed — no global
RNG state anywhere.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.digraph import DiGraph


def empty_graph(n: int, self_loops: bool = False) -> DiGraph:
    """``n`` isolated nodes ``0..n-1`` (optionally with self-loops)."""
    g = DiGraph(nodes=range(n))
    if self_loops:
        for i in range(n):
            g.add_edge(i, i)
    return g


def complete_graph(n: int, self_loops: bool = True) -> DiGraph:
    """The complete digraph on ``0..n-1``."""
    return DiGraph.complete(range(n), self_loops=self_loops)


def directed_cycle(n: int, self_loops: bool = False) -> DiGraph:
    """The directed cycle ``0 -> 1 -> ... -> n-1 -> 0``.

    A cycle is the sparsest strongly connected graph, which makes it the
    worst case for information propagation (Lemma 4 needs the full ``n - 1``
    rounds on a cycle).
    """
    g = empty_graph(n, self_loops=self_loops)
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def bidirectional_chain(n: int, self_loops: bool = False) -> DiGraph:
    """``0 <-> 1 <-> ... <-> n-1`` — strongly connected with diameter n-1."""
    g = empty_graph(n, self_loops=self_loops)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
        g.add_edge(i + 1, i)
    return g


def in_star(n: int, center: int = 0, self_loops: bool = False) -> DiGraph:
    """Every node sends to ``center``: edges ``i -> center``."""
    g = empty_graph(n, self_loops=self_loops)
    for i in range(n):
        if i != center:
            g.add_edge(i, center)
    return g


def out_star(n: int, center: int = 0, self_loops: bool = False) -> DiGraph:
    """``center`` sends to every node: edges ``center -> i``.

    An out-star from a single 2-source is the canonical ``Psrcs(k)``
    witness structure (Theorem 2's process ``s``).
    """
    g = empty_graph(n, self_loops=self_loops)
    for i in range(n):
        if i != center:
            g.add_edge(center, i)
    return g


def gnp_random(
    n: int,
    p: float,
    rng: np.random.Generator,
    self_loops: bool = True,
) -> DiGraph:
    """Erdős–Rényi digraph: each ordered pair ``(u, v)``, ``u != v``, is an
    edge independently with probability ``p``.

    Vectorized: draws the full ``n x n`` Bernoulli matrix at once (per the
    HPC guide, the per-edge Python loop is the bottleneck otherwise).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, self_loops)
    return from_adjacency(mask)


def random_tournament(n: int, rng: np.random.Generator) -> DiGraph:
    """A random tournament: exactly one direction per unordered pair.

    Vectorized: one Bernoulli draw for all ``C(n, 2)`` pairs (in the same
    row-major upper-triangular order the historical per-pair loop used, so
    the seeded edge sets are unchanged) instead of one ``rng.random()``
    call per pair.
    """
    rows, cols = np.triu_indices(n, k=1)
    forward = rng.random(rows.shape[0]) < 0.5
    adj = np.zeros((n, n), dtype=bool)
    adj[rows[forward], cols[forward]] = True
    adj[cols[~forward], rows[~forward]] = True
    return from_adjacency(adj)


def random_strongly_connected(
    n: int,
    extra_edge_prob: float,
    rng: np.random.Generator,
    self_loops: bool = True,
) -> DiGraph:
    """A random strongly connected digraph on ``0..n-1``.

    Construction: a directed Hamiltonian cycle over a random permutation
    (guaranteeing strong connectivity) plus ``gnp`` noise edges.
    """
    perm = rng.permutation(n)
    g = gnp_random(n, extra_edge_prob, rng, self_loops=self_loops)
    for i in range(n):
        g.add_edge(int(perm[i]), int(perm[(i + 1) % n]))
    return g


def layered_dag(
    layers: Sequence[int],
    rng: np.random.Generator,
    density: float = 0.5,
) -> DiGraph:
    """A layered DAG: nodes partitioned into layers, edges only from layer
    ``i`` to layer ``i+1``, each with probability ``density``; every node in
    layer ``i+1`` is guaranteed at least one incoming edge."""
    g = DiGraph()
    offsets = np.concatenate([[0], np.cumsum(layers)])
    n = int(offsets[-1])
    g.add_nodes(range(n))
    for li in range(len(layers) - 1):
        src = range(int(offsets[li]), int(offsets[li + 1]))
        dst = range(int(offsets[li + 1]), int(offsets[li + 2]))
        for v in dst:
            parents = [u for u in src if rng.random() < density]
            if not parents:
                parents = [int(rng.choice(list(src)))]
            for u in parents:
                g.add_edge(u, v)
    return g


def union_of_cliques(
    groups: Sequence[Sequence[int]], self_loops: bool = True
) -> DiGraph:
    """Disjoint bidirectional cliques — each group becomes one SCC and (in
    isolation) one root component.  The building block of the grouped-source
    adversary."""
    g = DiGraph()
    for group in groups:
        members = list(group)
        g.add_nodes(members)
        for u in members:
            for v in members:
                if u != v or self_loops:
                    g.add_edge(u, v)
    return g


def from_adjacency(matrix: np.ndarray) -> DiGraph:
    """Build a :class:`DiGraph` on ``0..n-1`` from a boolean adjacency
    matrix (``matrix[u, v]`` truthy ⇔ edge ``u -> v``)."""
    arr = np.asarray(matrix, dtype=bool)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {arr.shape}")
    n = arr.shape[0]
    g = DiGraph(nodes=range(n))
    rows, cols = np.nonzero(arr)
    for u, v in zip(rows.tolist(), cols.tolist()):
        g.add_edge(u, v)
    return g


def to_adjacency(graph: DiGraph, n: int | None = None) -> np.ndarray:
    """Boolean adjacency matrix of a graph with integer nodes ``0..n-1``.

    ``n`` defaults to ``max(node) + 1``; nodes must be non-negative ints.
    """
    nodes = graph.nodes()
    if n is None:
        n = (max(nodes) + 1) if nodes else 0
    arr = np.zeros((n, n), dtype=bool)
    for u, v in graph.iter_edges():
        arr[u, v] = True
    return arr
