"""Round-labeled directed graphs — the data structure of Algorithm 1.

The approximation graph :math:`G_p = \\langle V_p, E_p \\rangle` broadcast by
every process is a *weighted* digraph whose edge labels are round numbers: an
edge :math:`(q' \\xrightarrow{s} q)` records that, as far as the local
approximation knows, ``q`` perceived ``q'`` as timely in round ``s``
(Lemma 6).  The algorithm's operations on it are:

* **at most one label per ordered pair** — Lemma 3(c) / Lemma 4(b): merging
  keeps only the *maximum* label seen for each pair (Alg. 1 lines 19–23);
* **purging** — labels older than ``r - n`` are discarded (line 24);
* **pruning** — nodes that cannot reach the owner are discarded (line 25);
* **strong connectivity** of the unweighted view (line 28).

:class:`RoundLabeledDigraph` implements exactly this: a digraph where each
present edge ``(u, v)`` carries a single integer label, plus max-merge and
purge primitives.  The generic strong-connectivity / SCC machinery is reused
through :meth:`unweighted`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Tuple

from repro.graphs.digraph import DiGraph

Node = Hashable
LabeledEdge = Tuple[Node, Node, int]


class RoundLabeledDigraph:
    """A digraph with exactly one integer (round) label per directed edge.

    Examples
    --------
    >>> g = RoundLabeledDigraph()
    >>> g.add_edge(0, 1, 3)
    >>> g.add_edge(0, 1, 5)   # max-merge: label becomes 5
    >>> g.label(0, 1)
    5
    >>> g.purge_older_than(5)  # drops every label <= 5, returns the dead
    [(0, 1, 5)]
    """

    __slots__ = ("_labels", "_nodes", "_pred")

    def __init__(
        self,
        nodes: Iterable[Node] | None = None,
        labeled_edges: Iterable[LabeledEdge] | None = None,
    ) -> None:
        # (u, v) -> label; invariant: at most one label per ordered pair.
        self._labels: dict[tuple[Node, Node], int] = {}
        self._nodes: set[Node] = set()
        self._pred: dict[Node, set[Node]] = {}
        if nodes is not None:
            self._nodes.update(nodes)
        if labeled_edges is not None:
            for u, v, lbl in labeled_edges:
                self.add_edge(u, v, lbl)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._nodes.add(node)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        self._nodes.update(nodes)

    def add_edge(self, u: Node, v: Node, label: int) -> None:
        """Insert ``u -v`` with ``label``; if the edge exists, keep the
        maximum of the existing and new labels (Alg. 1 line 22)."""
        self._nodes.add(u)
        self._nodes.add(v)
        key = (u, v)
        current = self._labels.get(key)
        if current is None or label > current:
            self._labels[key] = label
        self._pred.setdefault(v, set()).add(u)

    def set_edge(self, u: Node, v: Node, label: int) -> None:
        """Insert or overwrite ``u -> v`` with exactly ``label``."""
        self._nodes.add(u)
        self._nodes.add(v)
        self._labels[(u, v)] = label
        self._pred.setdefault(v, set()).add(u)

    def remove_edge(self, u: Node, v: Node) -> None:
        try:
            del self._labels[(u, v)]
        except KeyError:
            raise KeyError(f"edge {(u, v)!r} not in graph") from None
        self._pred[v].discard(u)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge (Alg. 1 line 25)."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not in graph")
        self._nodes.remove(node)
        dead = [key for key in self._labels if node in key]
        for key in dead:
            u, v = key
            del self._labels[key]
            self._pred[v].discard(u)
        self._pred.pop(node, None)

    def purge_older_than(self, cutoff: int) -> list[LabeledEdge]:
        """Discard every edge with label ``<= cutoff`` and return them.

        Algorithm 1 line 24 calls this with ``cutoff = r - n``.
        """
        dead = [(u, v, lbl) for (u, v), lbl in self._labels.items() if lbl <= cutoff]
        for u, v, _ in dead:
            del self._labels[(u, v)]
            self._pred[v].discard(u)
        return dead

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._nodes

    def has_edge(self, u: Node, v: Node) -> bool:
        return (u, v) in self._labels

    def label(self, u: Node, v: Node) -> int:
        """The round label of edge ``u -> v``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        return self._labels[(u, v)]

    def get_label(self, u: Node, v: Node, default: int | None = None) -> int | None:
        return self._labels.get((u, v), default)

    def nodes(self) -> frozenset[Node]:
        return frozenset(self._nodes)

    def edges(self) -> frozenset[tuple[Node, Node]]:
        return frozenset(self._labels)

    def labeled_edges(self) -> frozenset[LabeledEdge]:
        return frozenset((u, v, lbl) for (u, v), lbl in self._labels.items())

    def iter_labeled_edges(self) -> Iterator[LabeledEdge]:
        for (u, v), lbl in self._labels.items():
            yield (u, v, lbl)

    def predecessors(self, node: Node) -> frozenset[Node]:
        return frozenset(u for u in self._pred.get(node, ()) if (u, node) in self._labels)

    def successors(self, node: Node) -> frozenset[Node]:
        return frozenset(v for (u, v) in self._labels if u == node)

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def number_of_edges(self) -> int:
        return len(self._labels)

    def min_label(self) -> int | None:
        """The oldest label present, or ``None`` for an edgeless graph."""
        return min(self._labels.values()) if self._labels else None

    def max_label(self) -> int | None:
        """The newest label present, or ``None`` for an edgeless graph."""
        return max(self._labels.values()) if self._labels else None

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundLabeledDigraph):
            return NotImplemented
        return self._nodes == other._nodes and self._labels == other._labels

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("RoundLabeledDigraph is mutable and unhashable")

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "RoundLabeledDigraph":
        g = RoundLabeledDigraph()
        g._nodes = set(self._nodes)
        g._labels = dict(self._labels)
        g._pred = {v: set(us) for v, us in self._pred.items()}
        return g

    def unweighted(self) -> DiGraph:
        """The unweighted view ``⟨V, {(u,v) : (u -v) labeled}⟩``.

        The paper's subgraph relations between :math:`G_p` and skeleton
        graphs (e.g. Lemma 5, Lemma 7) are stated on this view.
        """
        g = DiGraph(nodes=self._nodes)
        for u, v in self._labels:
            g.add_edge(u, v)
        return g

    def merge_max(self, other: "RoundLabeledDigraph") -> None:
        """In-place max-merge of ``other``'s labeled edges and nodes.

        This is the inner loop of Alg. 1 lines 19–23 for one received graph:
        for every pair with an edge in ``other``, keep the maximum label.
        """
        self._nodes.update(other._nodes)
        for (u, v), lbl in other._labels.items():
            self.add_edge(u, v, lbl)

    def to_dict(self) -> dict:
        """JSON-friendly snapshot with deterministic ordering."""
        return {
            "nodes": sorted(self._nodes, key=repr),
            "edges": sorted(
                ([u, v, lbl] for (u, v), lbl in self._labels.items()), key=repr
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundLabeledDigraph":
        return cls(
            nodes=data.get("nodes", []),
            labeled_edges=[tuple(e) for e in data.get("edges", [])],
        )

    def __repr__(self) -> str:
        return (
            f"RoundLabeledDigraph(|V|={len(self._nodes)}, "
            f"|E|={len(self._labels)})"
        )
