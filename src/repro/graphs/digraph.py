"""A strict directed-graph container with set semantics.

This is the workhorse data structure of the reproduction.  It deliberately
mirrors the paper's conventions:

* A graph is a pair :math:`\\langle V, E \\rangle` of a node set and a set of
  directed edges; both are explicit (a node may exist without edges).
* Intersection follows the paper's footnote 3:
  :math:`G \\cap G' := \\langle V \\cap V', E \\cap E' \\rangle`.
* The subgraph relation :math:`G \\supseteq G'` compares node *and* edge sets.

The implementation keeps both successor and predecessor adjacency sets so
that in/out neighborhood queries — the paper's timely neighborhoods
``PT(p, r)`` are exactly in-neighborhoods of skeleton graphs — are O(1) to
locate and O(degree) to enumerate.

Nodes may be any hashable object; the rest of the code base uses ``int``
process identifiers (``0 .. n-1``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A simple directed graph ``⟨V, E⟩`` with set semantics.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added to the
        node set automatically.

    Examples
    --------
    >>> g = DiGraph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2)])
    >>> g.has_edge(0, 1)
    True
    >>> sorted(g.successors(0))
    [1]
    >>> g.number_of_edges()
    2
    """

    __slots__ = ("_succ", "_pred", "_num_edges")

    def __init__(
        self,
        nodes: Iterable[Node] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        self._num_edges = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the node set (idempotent)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node of ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the directed edge ``u -> v`` (idempotent); adds endpoints."""
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._num_edges += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge of ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``u -> v``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        try:
            self._succ[u].remove(v)
        except KeyError:
            raise KeyError(f"edge {(u, v)!r} not in graph") from None
        self._pred[v].remove(u)
        self._num_edges -= 1

    def discard_edge(self, u: Node, v: Node) -> bool:
        """Remove the edge ``u -> v`` if present; return whether it was."""
        if self.has_edge(u, v):
            self.remove_edge(u, v)
            return True
        return False

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        KeyError
            If the node is not present.
        """
        if node not in self._succ:
            raise KeyError(f"node {node!r} not in graph")
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]

    def discard_node(self, node: Node) -> bool:
        """Remove ``node`` if present; return whether it was."""
        if node in self._succ:
            self.remove_node(node)
            return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_edge(self, u: Node, v: Node) -> bool:
        succ = self._succ.get(u)
        return succ is not None and v in succ

    def nodes(self) -> frozenset[Node]:
        """The node set ``V`` as a frozenset."""
        return frozenset(self._succ)

    def edges(self) -> frozenset[Edge]:
        """The edge set ``E`` as a frozenset of ``(u, v)`` pairs."""
        return frozenset(
            (u, v) for u, targets in self._succ.items() for v in targets
        )

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over edges without materializing the set."""
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def successors(self, node: Node) -> frozenset[Node]:
        """Out-neighbors of ``node``."""
        return frozenset(self._succ[node])

    def predecessors(self, node: Node) -> frozenset[Node]:
        """In-neighbors of ``node``.

        For a skeleton graph ``G^∩r`` this is exactly the paper's timely
        neighborhood ``PT(p, r) = {q | (q -> p) ∈ G^∩r}``.
        """
        return frozenset(self._pred[node])

    def iter_predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate in-neighbors without materializing a frozenset.

        The no-copy sibling of :meth:`predecessors` for hot loops (the
        simulator's per-round delivery); the graph must not be mutated
        during iteration.
        """
        return iter(self._pred[node])

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def number_of_nodes(self) -> int:
        return len(self._succ)

    def number_of_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __bool__(self) -> bool:
        return bool(self._succ)

    # ------------------------------------------------------------------
    # Set-style operations (paper footnote 3 semantics)
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """An independent deep copy of the graph."""
        g = DiGraph()
        g._succ = {u: set(vs) for u, vs in self._succ.items()}
        g._pred = {u: set(vs) for u, vs in self._pred.items()}
        g._num_edges = self._num_edges
        return g

    def intersection(self, other: "DiGraph") -> "DiGraph":
        """``G ∩ G' := ⟨V ∩ V', E ∩ E'⟩`` (footnote 3 of the paper)."""
        g = DiGraph()
        for node in self._succ:
            if other.has_node(node):
                g.add_node(node)
        # Iterate over the smaller edge set.
        small, big = (self, other) if self._num_edges <= other._num_edges else (other, self)
        for u, v in small.iter_edges():
            if big.has_edge(u, v):
                g.add_edge(u, v)
        return g

    def union(self, other: "DiGraph") -> "DiGraph":
        """``⟨V ∪ V', E ∪ E'⟩``."""
        g = self.copy()
        g.add_nodes(other._succ)
        g.add_edges(other.iter_edges())
        return g

    def difference_edges(self, other: "DiGraph") -> "DiGraph":
        """Same node set as ``self``; edges of ``self`` not in ``other``."""
        g = DiGraph(nodes=self._succ)
        for u, v in self.iter_edges():
            if not other.has_edge(u, v):
                g.add_edge(u, v)
        return g

    def induced_subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The subgraph induced by ``nodes`` (∩ with the current node set)."""
        keep = set(nodes) & set(self._succ)
        g = DiGraph(nodes=keep)
        for u in keep:
            for v in self._succ[u]:
                if v in keep:
                    g.add_edge(u, v)
        return g

    def reversed(self) -> "DiGraph":
        """The transpose graph (every edge flipped)."""
        g = DiGraph(nodes=self._succ)
        for u, v in self.iter_edges():
            g.add_edge(v, u)
        return g

    def with_self_loops(self) -> "DiGraph":
        """A copy with a self-loop at every node (the paper assumes
        ``∀p: p ∈ PT(p)``, i.e. self-delivery in every round)."""
        g = self.copy()
        for node in self._succ:
            g.add_edge(node, node)
        return g

    def without_self_loops(self) -> "DiGraph":
        """A copy with all self-loops removed (Figure 1 omits them)."""
        g = self.copy()
        for node in list(g._succ):
            g.discard_edge(node, node)
        return g

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def is_subgraph_of(self, other: "DiGraph") -> bool:
        """``self ⊆ other`` on both node and edge sets."""
        if not all(other.has_node(n) for n in self._succ):
            return False
        return all(other.has_edge(u, v) for u, v in self.iter_edges())

    def is_supergraph_of(self, other: "DiGraph") -> bool:
        """``self ⊇ other``."""
        return other.is_subgraph_of(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if set(self._succ) != set(other._succ):
            return False
        return all(self._succ[u] == other._succ[u] for u in self._succ)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # pragma: no cover - mutable; explicit opt-out
        raise TypeError("DiGraph is mutable and unhashable; use freeze()")

    def freeze(self) -> tuple[frozenset[Node], frozenset[Edge]]:
        """An immutable, hashable snapshot ``(V, E)``."""
        return (self.nodes(), self.edges())

    # ------------------------------------------------------------------
    # Conversion / debugging
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly representation with sorted nodes and edges."""
        return {
            "nodes": sorted(self._succ, key=repr),
            "edges": sorted(self.edges(), key=repr),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiGraph":
        """Inverse of :meth:`to_dict`."""
        edges = [tuple(e) for e in data.get("edges", [])]
        return cls(nodes=data.get("nodes", []), edges=edges)

    @classmethod
    def complete(cls, nodes: Iterable[Node], self_loops: bool = True) -> "DiGraph":
        """The complete digraph on ``nodes`` (all ordered pairs)."""
        node_list = list(nodes)
        g = cls(nodes=node_list)
        for u in node_list:
            for v in node_list:
                if self_loops or u != v:
                    g.add_edge(u, v)
        return g

    def __repr__(self) -> str:
        return (
            f"DiGraph(|V|={self.number_of_nodes()}, "
            f"|E|={self.number_of_edges()})"
        )
