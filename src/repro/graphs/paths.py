"""Reachability and path utilities.

Directed paths drive several parts of the paper:

* Lemma 4 propagates timely-neighborhood information along a path
  :math:`\\Gamma = (p_1 \\to \\dots \\to p_{\\ell+1})` of length
  :math:`\\ell \\le n-1`.
* Algorithm 1 line 25 discards a node ``pi ≠ p`` when ``p`` is unreachable
  *from* ``pi`` in the approximation graph.
* The termination proof (Lemma 11) walks decision messages down paths of the
  condensation DAG.

All traversals are breadth-first, so :func:`shortest_path` returns a
minimum-hop path; the paper only ever needs hop counts (path *length* =
number of edges, all nodes distinct).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.graphs.digraph import DiGraph

Node = Hashable


def descendants(graph: DiGraph, source: Node) -> frozenset[Node]:
    """All nodes reachable from ``source`` (including ``source`` itself)."""
    if not graph.has_node(source):
        raise KeyError(f"node {source!r} not in graph")
    seen = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def ancestors(graph: DiGraph, target: Node) -> frozenset[Node]:
    """All nodes that reach ``target`` (including ``target`` itself)."""
    if not graph.has_node(target):
        raise KeyError(f"node {target!r} not in graph")
    seen = {target}
    frontier = [target]
    while frontier:
        node = frontier.pop()
        for nxt in graph.predecessors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def reachable_from(graph: DiGraph, source: Node) -> frozenset[Node]:
    """Alias of :func:`descendants` (reads better at some call sites)."""
    return descendants(graph, source)


def reaches(graph: DiGraph, target: Node) -> frozenset[Node]:
    """Alias of :func:`ancestors`: the set of nodes with a path to
    ``target``.  Algorithm 1 line 25 keeps exactly ``reaches(Gp, p)``."""
    return ancestors(graph, target)


def has_path(graph: DiGraph, source: Node, target: Node) -> bool:
    """Whether a directed path ``source -> ... -> target`` exists.

    Every node trivially has a (length-0) path to itself.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return False
    if source == target:
        return True
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in graph.successors(node):
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def shortest_path(graph: DiGraph, source: Node, target: Node) -> list[Node] | None:
    """A minimum-hop directed path from ``source`` to ``target``.

    Returns the node sequence ``[source, ..., target]`` (all nodes distinct,
    matching the paper's path convention), or ``None`` if no path exists.
    ``source == target`` yields the single-node path ``[source]``.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    if source == target:
        return [source]
    parent: dict[Node, Node] = {source: source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in graph.successors(node):
            if nxt in parent:
                continue
            parent[nxt] = node
            if nxt == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(nxt)
    return None


def shortest_path_lengths(graph: DiGraph, source: Node) -> dict[Node, int]:
    """BFS hop distances from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise KeyError(f"node {source!r} not in graph")
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in graph.successors(node):
            if nxt not in dist:
                dist[nxt] = dist[node] + 1
                frontier.append(nxt)
    return dist


def eccentricity(graph: DiGraph, source: Node) -> int:
    """Maximum BFS distance from ``source`` to any reachable node."""
    return max(shortest_path_lengths(graph, source).values())


def longest_simple_path_upper_bound(graph: DiGraph) -> int:
    """The trivial bound used throughout the paper's proofs: a simple path
    in a graph on ``n`` nodes has length at most ``n - 1``."""
    return max(graph.number_of_nodes() - 1, 0)


def is_path(graph: DiGraph, nodes: Iterable[Node]) -> bool:
    """Whether ``nodes`` is a directed path in ``graph`` with all nodes
    distinct (the paper's convention for paths, §II)."""
    seq = list(nodes)
    if not seq:
        return False
    if len(set(seq)) != len(seq):
        return False
    if not all(graph.has_node(v) for v in seq):
        return False
    return all(graph.has_edge(u, v) for u, v in zip(seq, seq[1:]))
