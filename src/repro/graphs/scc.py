"""Strongly connected components.

The paper leans on SCCs everywhere: root components of skeleton graphs
(Theorem 1), the per-process components :math:`C^r_p` (Lemmas 5, 7, 14) and
the strong-connectivity decision test of Algorithm 1 line 28.

Two independent implementations are provided:

* :func:`tarjan_scc` — iterative Tarjan, a single DFS pass, O(V + E).
* :func:`kosaraju_scc` — two DFS passes over the graph and its transpose.

Having both lets the test suite cross-validate them (and networkx) on random
graphs, and the SCC-KERNEL benchmark compares their constants.  The public
entry points :func:`strongly_connected_components` and
:func:`is_strongly_connected` default to Tarjan.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.digraph import DiGraph

Node = Hashable


def tarjan_scc(graph: DiGraph) -> list[frozenset[Node]]:
    """Strongly connected components via iterative Tarjan.

    Returns components in *reverse topological order* of the condensation
    (every edge of the condensation goes from a later to an earlier entry in
    the returned list), which is the natural output order of Tarjan's
    algorithm.

    The iteration is explicit-stack rather than recursive so that graphs with
    long paths (n in the thousands) do not hit Python's recursion limit.
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[frozenset[Node]] = []
    counter = 0

    for root in graph:
        if root in index_of:
            continue
        # Each work-stack frame is (node, iterator over successors).
        work: list[tuple[Node, iter]] = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.remove(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


def kosaraju_scc(graph: DiGraph) -> list[frozenset[Node]]:
    """Strongly connected components via Kosaraju's two-pass algorithm.

    Returns components in *topological order* of the condensation (sources
    first) — note this is the opposite order of :func:`tarjan_scc`.
    """
    finished: list[Node] = []
    visited: set[Node] = set()
    for root in graph:
        if root in visited:
            continue
        # Iterative post-order DFS.
        work: list[tuple[Node, iter]] = [(root, iter(graph.successors(root)))]
        visited.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in visited:
                    visited.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
            if not advanced:
                work.pop()
                finished.append(node)

    components: list[frozenset[Node]] = []
    assigned: set[Node] = set()
    for root in reversed(finished):
        if root in assigned:
            continue
        component = {root}
        assigned.add(root)
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for pred in graph.predecessors(node):
                if pred not in assigned:
                    assigned.add(pred)
                    component.add(pred)
                    frontier.append(pred)
        components.append(frozenset(component))
    return components


def strongly_connected_components(
    graph: DiGraph, algorithm: str = "tarjan"
) -> list[frozenset[Node]]:
    """All maximal strongly connected components of ``graph``.

    Parameters
    ----------
    graph:
        The directed graph.
    algorithm:
        ``"tarjan"`` (default) or ``"kosaraju"``.

    Notes
    -----
    Components are always nonempty and maximal, matching the paper's
    convention (§II).  Every node appears in exactly one component; an
    isolated node forms a singleton component.
    """
    if algorithm == "tarjan":
        return tarjan_scc(graph)
    if algorithm == "kosaraju":
        return kosaraju_scc(graph)
    raise ValueError(f"unknown SCC algorithm {algorithm!r}")


def scc_of(graph: DiGraph, node: Node) -> frozenset[Node]:
    """The (unique) strongly connected component containing ``node``.

    This is the paper's :math:`C^r_p` when ``graph`` is the round-``r``
    skeleton :math:`G^{\\cap r}`.  Computed directly as the intersection of
    the descendant and ancestor sets of ``node`` — O(V + E) without running a
    full SCC decomposition.
    """
    if not graph.has_node(node):
        raise KeyError(f"node {node!r} not in graph")
    forward = _bfs(graph, node, forward=True)
    backward = _bfs(graph, node, forward=False)
    return frozenset(forward & backward)


def is_strongly_connected(graph: DiGraph) -> bool:
    """Whether ``graph`` is strongly connected.

    This is the decision test of Algorithm 1 line 28 applied to the
    (unweighted view of the) approximation graph.  Following standard graph
    theory — and as required by the paper's Theorem 2 construction, where
    isolated processes must decide on their own value — the empty graph and
    single-node graphs are strongly connected.
    """
    nodes = graph.nodes()
    if len(nodes) <= 1:
        return True
    start = next(iter(nodes))
    if len(_bfs(graph, start, forward=True)) != len(nodes):
        return False
    return len(_bfs(graph, start, forward=False)) == len(nodes)


def _bfs(graph: DiGraph, start: Node, forward: bool) -> set[Node]:
    """Nodes reachable from ``start`` (forward) or reaching it (backward)."""
    neighbors = graph.successors if forward else graph.predecessors
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in neighbors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen
