"""Vectorized boolean-matrix graph kernels.

For the parameter sweeps (hundreds of simulated runs, graphs re-analyzed
every round) the pure-Python set-based algorithms dominate profile output.
Following the repository's HPC guide — *measure, then vectorize the
bottleneck* — this module provides NumPy boolean-matrix equivalents for the
hot kernels:

* per-round skeleton intersection (``&`` over a stack of adjacency matrices),
* transitive closure via repeated boolean matrix squaring
  (O(n^3 log n) bit-parallel, beats Python BFS for dense graphs),
* strong-connectivity and SCC extraction from the closure.

All kernels operate on ``(n, n)`` boolean adjacency matrices with processes
``0..n-1``; conversion helpers live in :mod:`repro.graphs.generators`.
The test suite cross-validates every kernel against the set-based
implementations.
"""

from __future__ import annotations

import numpy as np


def intersect_all(matrices: np.ndarray) -> np.ndarray:
    """Intersection of a stack of adjacency matrices.

    Parameters
    ----------
    matrices:
        Array of shape ``(r, n, n)`` — one adjacency matrix per round.

    Returns
    -------
    The ``(n, n)`` matrix of the round-``r`` skeleton
    ``G^∩r = ∩_{r'<=r} G^{r'}``.
    """
    arr = np.asarray(matrices, dtype=bool)
    if arr.ndim != 3:
        raise ValueError(f"expected stack of matrices (r, n, n), got {arr.shape}")
    return np.logical_and.reduce(arr, axis=0)


def prefix_intersections(matrices: np.ndarray) -> np.ndarray:
    """All prefix intersections: output ``[i]`` is ``G^∩(i+1)``.

    Equivalent to ``np.logical_and.accumulate`` along the round axis; this is
    how the analysis pipeline materializes the entire skeleton sequence of a
    run in one vectorized pass.
    """
    arr = np.asarray(matrices, dtype=bool)
    if arr.ndim != 3:
        raise ValueError(f"expected stack of matrices (r, n, n), got {arr.shape}")
    return np.logical_and.accumulate(arr, axis=0)


def transitive_closure(adjacency: np.ndarray, reflexive: bool = True) -> np.ndarray:
    """Reachability matrix via repeated boolean squaring.

    ``closure[u, v]`` is True iff there is a directed path from ``u`` to
    ``v``.  With ``reflexive=True`` (default) every node reaches itself via
    the empty path, which is the convention used by the paper's
    reachability-based pruning (Alg. 1 line 25 never removes ``p`` itself).
    """
    adj = np.asarray(adjacency, dtype=bool)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got {adj.shape}")
    n = adj.shape[0]
    closure = adj.copy()
    if reflexive:
        np.fill_diagonal(closure, True)
    # Squaring doubles the path length covered each iteration: after i
    # iterations, paths of length <= 2^i are included.
    while True:
        nxt = closure | (closure @ closure)
        if np.array_equal(nxt, closure):
            return closure
        closure = nxt


def is_strongly_connected_matrix(adjacency: np.ndarray) -> bool:
    """Strong connectivity from the transitive closure (all pairs reach)."""
    closure = transitive_closure(adjacency, reflexive=True)
    return bool(closure.all())


def scc_labels(adjacency: np.ndarray) -> np.ndarray:
    """Component labels from mutual reachability.

    ``labels[u] == labels[v]`` iff ``u`` and ``v`` are strongly connected.
    Labels are the smallest member index of each component, so they are
    deterministic and directly comparable across kernels.
    """
    closure = transitive_closure(adjacency, reflexive=True)
    mutual = closure & closure.T
    # Row u of `mutual` is the membership vector of u's SCC; the label is
    # the first True column.
    return np.argmax(mutual, axis=1)


def root_component_count_matrix(adjacency: np.ndarray) -> int:
    """Number of root components, computed fully vectorized.

    A component ``C`` is a root component iff no edge enters it from outside:
    ``adjacency[~C][:, C]`` is all-False.
    """
    adj = np.asarray(adjacency, dtype=bool)
    labels = scc_labels(adj)
    count = 0
    for label in np.unique(labels):
        members = labels == label
        if not adj[np.ix_(~members, members)].any():
            count += 1
    return count


def timely_neighborhoods(skeleton: np.ndarray) -> list[frozenset[int]]:
    """Per-process timely neighborhoods from a skeleton adjacency matrix.

    ``PT(p) = {q | skeleton[q, p]}`` — column ``p`` of the matrix.
    """
    arr = np.asarray(skeleton, dtype=bool)
    return [frozenset(np.nonzero(arr[:, p])[0].tolist()) for p in range(arr.shape[0])]


def conflict_matrix(skeleton: np.ndarray) -> np.ndarray:
    """The ``Psrcs`` conflict graph as a boolean matrix.

    ``conflict[q, q']`` is True iff ``q != q'`` and ``PT(q) ∩ PT(q') != ∅``,
    i.e. some process is a common 2-source of ``q`` and ``q'``.  Computed as
    one boolean matrix product: ``PT`` membership is ``skeleton.T`` (row q =
    in-neighbors of q), so shared sources are ``skeleton.T @ skeleton``.

    The ``Psrcs(k)`` predicate holds iff this graph has no independent set of
    size ``k + 1`` (see :mod:`repro.predicates.psrcs`).
    """
    arr = np.asarray(skeleton, dtype=bool)
    shared = arr.T @ arr  # shared[q, q'] = |PT(q) ∩ PT(q')| > 0 (boolean @)
    conflict = shared.astype(bool)
    np.fill_diagonal(conflict, False)
    return conflict
