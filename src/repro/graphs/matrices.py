"""Vectorized boolean-matrix graph kernels.

For the parameter sweeps (hundreds of simulated runs, graphs re-analyzed
every round) the pure-Python set-based algorithms dominate profile output.
Following the repository's HPC guide — *measure, then vectorize the
bottleneck* — this module provides NumPy boolean-matrix equivalents for the
hot kernels:

* per-round skeleton intersection (``&`` over a stack of adjacency matrices),
* transitive closure via repeated boolean matrix squaring
  (O(n^3 log n) bit-parallel, beats Python BFS for dense graphs),
* batched transitive closure over a ``(b, n, n)`` stack — the pruning and
  strong-connectivity kernel of the vectorized simulation fast path
  (:mod:`repro.rounds.fastpath`),
* strong-connectivity and SCC extraction from the closure.

All kernels operate on ``(n, n)`` boolean adjacency matrices with processes
``0..n-1``; conversion helpers live in :mod:`repro.graphs.generators`.
The test suite cross-validates every kernel against the set-based
implementations.
"""

from __future__ import annotations

import numpy as np


def intersect_all(matrices: np.ndarray) -> np.ndarray:
    """Intersection of a stack of adjacency matrices.

    Parameters
    ----------
    matrices:
        Array of shape ``(r, n, n)`` — one adjacency matrix per round.

    Returns
    -------
    The ``(n, n)`` matrix of the round-``r`` skeleton
    ``G^∩r = ∩_{r'<=r} G^{r'}``.
    """
    arr = np.asarray(matrices, dtype=bool)
    if arr.ndim != 3:
        raise ValueError(f"expected stack of matrices (r, n, n), got {arr.shape}")
    return np.logical_and.reduce(arr, axis=0)


def prefix_intersections(matrices: np.ndarray) -> np.ndarray:
    """All prefix intersections: output ``[i]`` is ``G^∩(i+1)``.

    Equivalent to ``np.logical_and.accumulate`` along the round axis; this is
    how the analysis pipeline materializes the entire skeleton sequence of a
    run in one vectorized pass.
    """
    arr = np.asarray(matrices, dtype=bool)
    if arr.ndim != 3:
        raise ValueError(f"expected stack of matrices (r, n, n), got {arr.shape}")
    return np.logical_and.accumulate(arr, axis=0)


def transitive_closure(adjacency: np.ndarray, reflexive: bool = True) -> np.ndarray:
    """Reachability matrix via repeated boolean squaring.

    ``closure[u, v]`` is True iff there is a directed path from ``u`` to
    ``v``.  With ``reflexive=True`` (default) every node reaches itself via
    the empty path, which is the convention used by the paper's
    reachability-based pruning (Alg. 1 line 25 never removes ``p`` itself).
    """
    adj = np.asarray(adjacency, dtype=bool)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got {adj.shape}")
    # Squaring doubles the path length covered each iteration: after i
    # iterations, paths of length <= 2^i are included.  The squaring runs
    # in float32 — NumPy routes float matmul through BLAS GEMM, several
    # times faster than the naive boolean matmul loop — with entries
    # re-clamped to {0, 1} after every product so sums stay exactly
    # representable.  The product buffer is preallocated once and reused;
    # since the closure only ever grows, convergence is detected by the
    # (cheap) count of reachable pairs instead of a full comparison.
    closure = adj.astype(np.float32)
    if reflexive:
        np.fill_diagonal(closure, 1.0)
    buf = np.empty_like(closure)
    count = int(np.count_nonzero(closure))
    while True:
        np.matmul(closure, closure, out=buf)
        np.minimum(buf, 1.0, out=buf)
        np.maximum(buf, closure, out=closure)
        grown = int(np.count_nonzero(closure))
        if grown == count:
            return closure.astype(bool)
        count = grown


def batched_transitive_closure(
    stack: np.ndarray, reflexive: bool = True, fixed_iterations: bool = False
) -> np.ndarray:
    """Transitive closure of a whole batch of graphs at once.

    Parameters
    ----------
    stack:
        Array of shape ``(b, n, n)`` — ``b`` independent adjacency
        matrices (e.g. the ``n`` per-process approximation graphs of one
        simulated round, or the prefix skeletons of a run).
    reflexive:
        Include the empty path (diagonal), as in
        :func:`transitive_closure`.
    fixed_iterations:
        Only meaningful with ``reflexive=True``: run the exact number of
        squarings that guarantees convergence (``ceil(log2(n - 1))``,
        since with the diagonal set each squaring doubles the covered
        path length) instead of testing for a fixpoint after every
        squaring.  Saves the per-iteration convergence scans — the right
        trade in the simulation hot loop, where the batch is small and
        call overhead dominates.

    Returns
    -------
    The ``(b, n, n)`` stack of reachability matrices, computed with
    ``O(log n)`` batched boolean matrix squarings — the kernel behind the
    vectorized fast path's pruning and strong-connectivity tests.
    """
    arr = np.asarray(stack, dtype=bool)
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError(f"expected stack of square matrices, got {arr.shape}")
    # Same float32/BLAS batched-GEMM squaring as transitive_closure.
    closure = arr.astype(np.float32)
    n = arr.shape[1]
    if reflexive and n:
        idx = np.arange(n)
        closure[:, idx, idx] = 1.0
    buf = np.empty_like(closure)
    if reflexive and fixed_iterations:
        # With the diagonal set, i squarings cover all paths of length
        # <= 2^i; simple paths are <= n - 1 long, so ceil(log2(n - 1))
        # squarings always reach the fixpoint.  (With the diagonal in
        # place, closure @ closure contains closure, so no OR with the
        # previous iterate is needed.)
        length = 1
        while length < n - 1:
            np.matmul(closure, closure, out=buf)
            np.minimum(buf, 1.0, out=closure)
            length *= 2
        return closure.astype(bool)
    count = int(np.count_nonzero(closure))
    while True:
        np.matmul(closure, closure, out=buf)
        np.minimum(buf, 1.0, out=buf)
        np.maximum(buf, closure, out=closure)
        grown = int(np.count_nonzero(closure))
        if grown == count:
            return closure.astype(bool)
        count = grown


def is_strongly_connected_matrix(adjacency: np.ndarray) -> bool:
    """Strong connectivity from the transitive closure (all pairs reach)."""
    closure = transitive_closure(adjacency, reflexive=True)
    return bool(closure.all())


def scc_labels(adjacency: np.ndarray) -> np.ndarray:
    """Component labels from mutual reachability.

    ``labels[u] == labels[v]`` iff ``u`` and ``v`` are strongly connected.
    Labels are the smallest member index of each component, so they are
    deterministic and directly comparable across kernels.
    """
    closure = transitive_closure(adjacency, reflexive=True)
    mutual = closure & closure.T
    # Row u of `mutual` is the membership vector of u's SCC; the label is
    # the first True column.
    return np.argmax(mutual, axis=1)


def root_component_count_matrix(adjacency: np.ndarray) -> int:
    """Number of root components, computed fully vectorized.

    A component ``C`` is a root component iff no edge enters it from
    outside, i.e. no *cross-component* edge ends in ``C``.  Instead of
    slicing the matrix once per label, every cross edge is scattered onto
    its target's label in one ``bincount`` pass; a label is a root exactly
    when it received no scatter hit.
    """
    adj = np.asarray(adjacency, dtype=bool)
    n = adj.shape[0]
    if n == 0:
        return 0
    labels = scc_labels(adj)
    cross = adj & (labels[:, None] != labels[None, :])
    targets = labels[np.nonzero(cross)[1]]
    entered = np.bincount(targets, minlength=n) > 0
    return int(np.count_nonzero(~entered[np.unique(labels)]))


def timely_neighborhoods(skeleton: np.ndarray) -> list[frozenset[int]]:
    """Per-process timely neighborhoods from a skeleton adjacency matrix.

    ``PT(p) = {q | skeleton[q, p]}`` — column ``p`` of the matrix.
    """
    arr = np.asarray(skeleton, dtype=bool)
    return [frozenset(np.nonzero(arr[:, p])[0].tolist()) for p in range(arr.shape[0])]


def conflict_matrix(skeleton: np.ndarray) -> np.ndarray:
    """The ``Psrcs`` conflict graph as a boolean matrix.

    ``conflict[q, q']`` is True iff ``q != q'`` and ``PT(q) ∩ PT(q') != ∅``,
    i.e. some process is a common 2-source of ``q`` and ``q'``.  Computed as
    one boolean matrix product: ``PT`` membership is ``skeleton.T`` (row q =
    in-neighbors of q), so shared sources are ``skeleton.T @ skeleton``.

    The ``Psrcs(k)`` predicate holds iff this graph has no independent set of
    size ``k + 1`` (see :mod:`repro.predicates.psrcs`).
    """
    arr = np.asarray(skeleton, dtype=bool)
    shared = arr.T @ arr  # shared[q, q'] = |PT(q) ∩ PT(q')| > 0 (boolean @)
    conflict = shared.astype(bool)
    np.fill_diagonal(conflict, False)
    return conflict
