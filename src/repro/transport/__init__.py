"""The asynchronous substrate underneath the round model.

The paper's §I positions its round model as an abstraction of partially
synchronous systems (Dwork, Lynch, Stockmeyer [7]): "both synchrony of
communication and failures are captured just by means of the messages that
arrive within a round".  This package implements that underlying layer and
the abstraction step explicitly:

* :mod:`repro.transport.events` — a discrete-event simulation kernel
  (event queue, virtual time);
* :mod:`repro.transport.network` — point-to-point message transport with
  pluggable per-link latency models (including *partially synchronous*
  links: a stable fast core plus unboundedly-slow noise links);
* :mod:`repro.transport.round_layer` — the classic timeout-driven round
  synthesis: each process broadcasts, waits ``timeout`` time units, and
  delivers whatever arrived — producing exactly the per-round
  communication graphs ``G^r`` of the paper's model.

The bridge theorem made executable: a link whose latency is *always* below
the round timeout is a stable-skeleton edge; links that exceed it
infinitely often are not.  The ROUND-SYNTH experiment sweeps the timeout
and watches ``Psrcs(k)`` appear and disappear.
"""

from repro.transport.events import EventQueue, Event
from repro.transport.network import (
    LatencyModel,
    FixedLatency,
    UniformLatency,
    PartiallySynchronousLatency,
    Network,
)
from repro.transport.round_layer import RoundSynthesizer, SynthesizedAdversary

__all__ = [
    "EventQueue",
    "Event",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PartiallySynchronousLatency",
    "Network",
    "RoundSynthesizer",
    "SynthesizedAdversary",
]
