"""Synthesizing communication-closed rounds from the asynchronous layer.

The classic timeout-driven round protocol over a partially synchronous
network (the construction the HO model abstracts, §I):

1. at the start of round ``r`` (virtual time ``(r-1)·timeout``), every
   process broadcasts its round-``r`` message;
2. messages travel with per-link latencies (the :class:`Network`);
3. at time ``r·timeout`` the round closes: process ``p`` "hears of" exactly
   the senders whose round-``r`` message arrived in time.  Late messages
   are discarded — communication-closed rounds (a round-``r`` message can
   only be received in round ``r``).

The result is a per-round communication graph ``G^r``: edge ``(q -> p)``
iff ``latency(q -> p, round r) <= timeout``.  This is the executable form
of the paper's "synchrony and failures are captured just by means of the
messages that arrive within a round".

:class:`SynthesizedAdversary` wraps the synthesis as a standard
:class:`~repro.adversaries.base.Adversary`, so Algorithm 1 runs unchanged
on top of the asynchronous substrate.  With a
:class:`~repro.transport.network.PartiallySynchronousLatency` whose core
realizes a grouped-source structure, the synthesized run satisfies
``Psrcs(k)`` — the whole stack from wire latencies to k-set agreement.
"""

from __future__ import annotations

from repro.adversaries.base import Adversary
from repro.graphs.digraph import DiGraph
from repro.transport.events import EventQueue
from repro.transport.network import Network, PartiallySynchronousLatency


class RoundSynthesizer:
    """Produces per-round communication graphs from a network.

    Parameters
    ----------
    network:
        The asynchronous transport.
    timeout:
        Round duration: a message sent at the round start is timely iff its
        latency is <= ``timeout``.
    """

    def __init__(self, network: Network, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.network = network
        self.timeout = timeout
        self._queue = EventQueue()
        self._graphs: dict[int, DiGraph] = {}
        self._late_counts: dict[int, int] = {}

    @property
    def n(self) -> int:
        return self.network.n

    def synthesize_round(self, round_no: int) -> DiGraph:
        """Simulate one round on the event queue; return ``G^r``.

        Rounds must be requested in order the first time (the virtual
        clock advances by ``timeout`` per round); repeated requests return
        the recorded graph.
        """
        if round_no in self._graphs:
            return self._graphs[round_no]
        expected = len(self._graphs) + 1
        if round_no != expected:
            raise ValueError(
                f"rounds must be synthesized in order: expected {expected}, "
                f"got {round_no}"
            )
        round_start = self._queue.now
        round_end = round_start + self.timeout
        # 1. Everyone broadcasts at the round start.
        for sender in range(self.n):
            for receiver, delay in self.network.broadcast_delays(sender).items():
                self._queue.schedule(
                    delay, "deliver", payload=(sender, receiver, round_no)
                )
        # 2./3. Deliveries before the deadline are timely; everything still
        # in flight at the boundary is late and dropped wholesale
        # (communication closure) without advancing the clock.
        graph = DiGraph(nodes=range(self.n))
        for event in self._queue.drain(until=round_end):
            sender, receiver, msg_round = event.payload
            assert msg_round == round_no
            graph.add_edge(sender, receiver)
        late = self._queue.clear()
        self._queue.advance_to(round_end)
        self._late_counts[round_no] = late
        self._graphs[round_no] = graph
        return graph

    def late_messages(self, round_no: int) -> int:
        """How many round-``round_no`` messages missed the deadline."""
        return self._late_counts[round_no]


class SynthesizedAdversary(Adversary):
    """Adapter: a :class:`RoundSynthesizer` as a standard adversary.

    When the latency model is :class:`PartiallySynchronousLatency`, the
    declared stable graph is the core (self-loops + core links): core
    messages always beat the timeout, non-core links are slow with positive
    probability per message so (almost surely, and by construction in the
    seeds used here) they fail infinitely often.

    ``declared_core_is_exact`` is checked empirically by the tests: the
    finite-prefix skeleton converges to the declaration.
    """

    def __init__(self, synthesizer: RoundSynthesizer) -> None:
        super().__init__(synthesizer.n)
        self.synthesizer = synthesizer
        if synthesizer.timeout < getattr(
            synthesizer.network.latency_model, "fast_max", 0.0
        ):
            raise ValueError(
                "timeout below the fast band: even core links would miss it"
            )

    def graph(self, round_no: int) -> DiGraph:
        g = self.synthesizer.synthesize_round(round_no).copy()
        for p in range(self.n):
            g.add_edge(p, p)  # latency 0 self-delivery
        return g

    def declared_stable_graph(self) -> DiGraph | None:
        """The provable stable skeleton, by timeout regime:

        * ``timeout >= slow_max``: every message (fast or slow) beats the
          deadline — the complete graph is stable;
        * ``fast_max <= timeout < slow_min``: exactly the core (core
          messages always make it; non-core links are slow with positive
          per-message probability, hence untimely infinitely often);
        * ``slow_min <= timeout < slow_max``: indeterminate (a slow message
          may or may not beat the deadline) — no declaration;
        * ``timeout < fast_max``: even core messages can miss — rejected
          at construction.
        """
        model = self.synthesizer.network.latency_model
        if not isinstance(model, PartiallySynchronousLatency):
            return None
        timeout = self.synthesizer.timeout
        if timeout >= model.slow_max:
            return DiGraph.complete(range(self.n), self_loops=True)
        if model.fast_max <= timeout < model.slow_min and model.slow_prob > 0:
            g = self.base_graph()
            for u, v in model.core:
                g.add_edge(u, v)
            return g
        return None


def grouped_core_links(groups: list[list[int]]) -> list[tuple[int, int]]:
    """Core links realizing a grouped-source structure on the wire: the
    first member of each group is its source, with a fast link to every
    member, plus a bidirectional fast cycle through the group (the
    ``"cycle"`` topology of the grouped adversary).

    Feeding these to :class:`PartiallySynchronousLatency` makes the
    synthesized rounds satisfy ``Psrcs(len(groups))`` — end-to-end from
    latencies to the predicate.
    """
    links: list[tuple[int, int]] = []
    for group in groups:
        source = group[0]
        for member in group:
            if member != source:
                links.append((source, member))
        if len(group) > 1:
            for i in range(len(group)):
                a, b = group[i], group[(i + 1) % len(group)]
                links.append((a, b))
                links.append((b, a))
    return sorted(set(links))
