"""Point-to-point message transport with pluggable latency models.

The partially synchronous landscape (Dwork et al. [7], cited in §I) is
modeled per ordered link ``(u, v)``:

* :class:`FixedLatency` — a synchronous link: constant delay.
* :class:`UniformLatency` — delay drawn per message from ``[lo, hi]``.
* :class:`PartiallySynchronousLatency` — the interesting one: a set of
  *core* links is permanently fast (delay ≤ ``fast_max``); all other links
  are occasionally fast but exceed any bound infinitely often (each message
  is slow with probability ``slow_prob``, where "slow" means a delay drawn
  from a heavy band above the round timeout).  Under timeout-based round
  synthesis the core links — and only they — become stable-skeleton edges,
  which is exactly how a ``Psrcs(k)`` system arises from a real network.

Latency models are deterministic functions of ``(sender, receiver,
send_time_index, seed)``, so transports are replayable.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

import numpy as np


class LatencyModel(abc.ABC):
    """Per-link message latency."""

    @abc.abstractmethod
    def latency(self, sender: int, receiver: int, msg_index: int) -> float:
        """Delay for the ``msg_index``-th message on link ``sender ->
        receiver``.  Must be >= 0 (self-delivery uses latency 0)."""


class FixedLatency(LatencyModel):
    """Constant delay on every link."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay

    def latency(self, sender: int, receiver: int, msg_index: int) -> float:
        if sender == receiver:
            return 0.0
        return self.delay


class UniformLatency(LatencyModel):
    """Per-message delay uniform in ``[lo, hi]``, seed-deterministic."""

    def __init__(self, lo: float, hi: float, seed: int = 0) -> None:
        if not 0 <= lo <= hi:
            raise ValueError("need 0 <= lo <= hi")
        self.lo = lo
        self.hi = hi
        self.seed = seed

    def latency(self, sender: int, receiver: int, msg_index: int) -> float:
        if sender == receiver:
            return 0.0
        rng = np.random.default_rng([self.seed, sender, receiver, msg_index])
        return float(rng.uniform(self.lo, self.hi))


class PartiallySynchronousLatency(LatencyModel):
    """A permanently-fast core plus occasionally-slow everything else.

    Parameters
    ----------
    core_links:
        Ordered pairs that are always fast (delay uniform in
        ``[fast_min, fast_max]``).
    fast_min, fast_max:
        The fast band.
    slow_prob:
        Probability that a non-core message is slow.
    slow_min, slow_max:
        The slow band (should exceed the round timeout to make the link
        untimely in that round).
    seed:
        Determinism key.
    """

    def __init__(
        self,
        core_links: Iterable[tuple[int, int]],
        fast_min: float = 0.1,
        fast_max: float = 0.9,
        slow_prob: float = 0.5,
        slow_min: float = 5.0,
        slow_max: float = 50.0,
        seed: int = 0,
    ) -> None:
        if not 0 <= fast_min <= fast_max:
            raise ValueError("need 0 <= fast_min <= fast_max")
        if not fast_max <= slow_min <= slow_max:
            raise ValueError("need fast_max <= slow_min <= slow_max")
        if not 0 <= slow_prob <= 1:
            raise ValueError("slow_prob must be in [0, 1]")
        self.core = frozenset(core_links)
        self.fast_min = fast_min
        self.fast_max = fast_max
        self.slow_prob = slow_prob
        self.slow_min = slow_min
        self.slow_max = slow_max
        self.seed = seed

    def latency(self, sender: int, receiver: int, msg_index: int) -> float:
        if sender == receiver:
            return 0.0
        rng = np.random.default_rng([self.seed, sender, receiver, msg_index])
        if (sender, receiver) in self.core or rng.random() >= self.slow_prob:
            return float(rng.uniform(self.fast_min, self.fast_max))
        return float(rng.uniform(self.slow_min, self.slow_max))

    def is_core(self, sender: int, receiver: int) -> bool:
        return sender == receiver or (sender, receiver) in self.core


class Network:
    """The transport: broadcast with per-link latencies over an event queue.

    The network schedules one ``deliver`` event per (message, receiver)
    pair; the round layer decides which deliveries beat the timeout.
    """

    def __init__(self, n: int, latency_model: LatencyModel) -> None:
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.latency_model = latency_model
        self._msg_counters: dict[tuple[int, int], int] = {}

    def broadcast_delays(self, sender: int) -> dict[int, float]:
        """Latencies for one broadcast from ``sender`` to every process
        (advances the per-link message counters)."""
        delays: dict[int, float] = {}
        for receiver in range(self.n):
            key = (sender, receiver)
            idx = self._msg_counters.get(key, 0)
            self._msg_counters[key] = idx + 1
            delay = self.latency_model.latency(sender, receiver, idx)
            if delay < 0:
                raise ValueError(
                    f"latency model produced negative delay on {key}"
                )
            delays[receiver] = delay
        return delays
