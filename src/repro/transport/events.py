"""Discrete-event simulation kernel.

A minimal, deterministic event queue over virtual time: events carry a
timestamp, a deterministic tiebreak sequence number, and a payload.  The
round-synthesis layer schedules message deliveries and round timeouts on
it; the kernel guarantees

* events fire in (time, seq) order — simultaneous events fire in the order
  they were scheduled, making runs fully reproducible;
* time never goes backwards (scheduling into the past raises).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled event (ordered by time, then sequence number)."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic virtual-time event queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, delay: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay, seq=next(self._counter), kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at an absolute virtual time ``>= now``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        event = Event(
            time=time, seq=next(self._counter), kind=kind, payload=payload
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(event.seq)

    def pop(self) -> Event | None:
        """Advance time to and return the next non-cancelled event, or
        ``None`` when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            self._now = event.time
            return event
        return None

    def drain(self, until: float | None = None) -> Iterator[Event]:
        """Iterate events in order, optionally stopping at virtual time
        ``until`` (events at exactly ``until`` are included)."""
        while True:
            if until is not None and self._heap:
                # Peek without committing.
                nxt = self._heap[0]
                if nxt.time > until and nxt.seq not in self._cancelled:
                    return
            event = self.pop()
            if event is None:
                return
            if until is not None and event.time > until:
                # Re-push: the caller did not want it yet.
                heapq.heappush(self._heap, event)
                self._now = until
                return
            yield event

    def run(
        self,
        handler: Callable[[Event], None],
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Dispatch events to ``handler``; returns the number dispatched."""
        count = 0
        for event in self.drain(until=until):
            handler(event)
            count += 1
            if max_events is not None and count >= max_events:
                return count
        return count

    def clear(self) -> int:
        """Drop every pending event *without* advancing time; returns the
        number of live (non-cancelled) events dropped.

        The round layer uses this at round boundaries: messages still in
        flight at the deadline are late and are discarded wholesale
        (communication closure) — their delivery times must not drag the
        virtual clock forward.
        """
        dropped = len(self)
        self._heap.clear()
        self._cancelled.clear()
        return dropped

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (must be >= now)."""
        if time < self._now:
            raise ValueError(f"cannot rewind clock to {time} < {self._now}")
        self._now = time

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0
