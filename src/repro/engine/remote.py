"""Distributed batch execution: ship planned batches to remote workers.

A coordinator (:func:`execute_remote`) distributes the batch scheduler's
deterministic, self-contained :class:`~repro.engine.scheduler.PlannedBatch`
units to remote worker processes over a pluggable transport and merges
their result shards back into one journal whose bytes are identical to a
single-host serial run — regardless of worker count, completion order,
or mid-run worker loss.

Transport
---------
The default transport is stdlib TCP carrying JSON lines (one message
object per line).  Both connection directions are supported through the
same :class:`WorkerEndpoint` seam, so an ssh-spawned variant (spawn the
worker over ssh with ``--connect`` back to the coordinator) is a drop-in:

* ``host:port`` — a *dial* endpoint: the worker runs
  ``repro worker --listen host:port`` and the coordinator dials it.
* ``listen:port`` (or ``listen:host:port``) — an *accept* endpoint: the
  coordinator binds and the worker dials in with
  ``repro worker --connect host:port``.

Protocol (coordinator → worker): ``setup`` (shipped environment —
contracts / fault plan / device — and the metrics-collect flag), then
``unit`` messages (a whole planned batch, or an order-chunk for plan
singles and non-batched backends), then ``shutdown``.  Worker →
coordinator: ``hello`` on connect, then one ``result`` or ``error`` per
unit.  Results travel as journal *records* (the canonical encoded result
plus the producing backend — :func:`repro.engine.store.journal_record`),
so the wire carries exactly what the journal stores.

Determinism
-----------
The journal-byte contract every prior speed PR preserved holds here by
construction:

* the coordinator plans with ``jobs=1`` — the scheduler's plan is a pure
  function of the work list, so the plan (and hence the canonical
  journal order) is identical to the serial single-host plan; fleet
  parallelism is recovered by pre-splitting large batches at their
  deterministic midpoints (:func:`~repro.engine.scheduler.split_planned`),
  which preserves plan-order coverage;
* result records are a pure function of the spec (backend provenance
  included), so *where* a unit ran never changes its bytes;
* a :class:`ShardMerger` holds completed results back until every
  earlier plan position has arrived, releasing them in plan order — the
  merged journal is byte-identical to the serial run whatever the
  completion order.

Fault tolerance generalizes the pool logic: a dead worker's in-flight
unit requeues with capped deterministic backoff
(:func:`~repro.engine.executor.retry_delay`), splitting to singleton
chunks on repeated failure; stragglers past the fleet deadline are cut
off and requeued; when the retry budget is exhausted the unit journals
retriable ``timeout`` records so a restarted campaign resumes by hash.
Workers also append every record to a per-worker shard file next to the
journal (``<journal>.shard-<id>.jsonl`` on the coordinator); a restarted
campaign folds orphaned shard records back into the journal first
(:func:`absorb_shards`), so work that completed before a coordinator
crash is never re-executed.
"""

from __future__ import annotations

import json
import math
import os
import platform
import queue as queue_mod
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.engine.contracts import (
    CONTRACTS_ENV,
    ContractViolation,
    get as _get_contracts,
)
from repro.engine.executor import (
    ExecutionStopped,
    STATUS_TIMEOUT,
    ScenarioResult,
    _count_result,
    _execute_chunk,
    _execute_planned,
    _split_payload,
    default_chunksize,
    is_terminal,
    retry_delay,
)
from repro.engine.faults import FAULTS_ENV
from repro.engine.scenarios import ScenarioSpec
from repro.engine.store import decode_result, journal_record
from repro.rounds.array_backend import DEVICE_ENV

PROTOCOL = 1

#: Environment the coordinator ships to every worker at session setup so
#: hardening drills (contracts, fault plans) and device selection behave
#: as if the worker were a local pool process.  Keys absent on the
#: coordinator are *removed* on the worker, keeping sessions hermetic.
SHIPPED_ENV = (CONTRACTS_ENV, FAULTS_ENV, DEVICE_ENV)

#: Budget for establishing each worker link at startup (dial retries /
#: accept wait), and for the worker's hello after the socket opens.
CONNECT_TIMEOUT_S = 20.0


class RemoteWorkerError(RuntimeError):
    """A worker link could not be established or the fleet is unusable."""


# ----------------------------------------------------------------------
# Endpoints — the pluggable transport seam.
# ----------------------------------------------------------------------


@dataclass
class WorkerEndpoint:
    """One remote worker address, in either connection direction.

    ``kind == "dial"``: the coordinator dials a listening worker.
    ``kind == "accept"``: the coordinator binds ``host:port`` and waits
    for a worker to dial in (``repro worker --connect``) — the seam an
    ssh-spawned transport plugs into.  :meth:`prepare` binds accept
    endpoints eagerly (resolving port ``0``), so callers can learn the
    bound port before spawning the worker.
    """

    kind: str
    host: str
    port: int
    _server: socket.socket | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def spec(self) -> str:
        if self.kind == "accept":
            return f"listen:{self.host}:{self.port}"
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, spec: str) -> "WorkerEndpoint":
        text = str(spec).strip()
        if not text:
            raise ValueError("empty worker endpoint")
        kind = "dial"
        if text.startswith("listen:"):
            kind = "accept"
            text = text[len("listen:"):]
        host, sep, port_text = text.rpartition(":")
        if not sep:
            host, port_text = "", text
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"invalid worker endpoint {spec!r}: port must be an "
                "integer (expected host:port or listen:[host:]port)"
            ) from None
        if not (0 <= port <= 65535):
            raise ValueError(f"invalid worker endpoint {spec!r}: bad port")
        return cls(kind=kind, host=host, port=port)

    def prepare(self) -> None:
        """Bind an accept endpoint (no-op for dial endpoints)."""
        if self.kind != "accept" or self._server is not None:
            return
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(4)
        self.port = server.getsockname()[1]
        self._server = server

    def establish(self, timeout: float = CONNECT_TIMEOUT_S) -> socket.socket:
        """Open the worker connection (dial with retry, or accept)."""
        deadline = time.monotonic() + timeout
        if self.kind == "accept":
            self.prepare()
            self._server.settimeout(max(0.1, deadline - time.monotonic()))
            try:
                sock, _addr = self._server.accept()
            except (socket.timeout, OSError) as exc:
                raise RemoteWorkerError(
                    f"no worker dialed in to {self.spec} within {timeout:.0f}s"
                ) from exc
            return sock
        delay = 0.05
        while True:
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=timeout
                )
            except OSError as exc:
                if time.monotonic() + delay > deadline:
                    raise RemoteWorkerError(
                        f"cannot reach worker {self.spec}: {exc}"
                    ) from exc
                time.sleep(delay)
                delay = min(0.5, delay * 2)

    def close(self) -> None:
        if self._server is not None:
            try:
                self._server.close()
            finally:
                self._server = None


def parse_workers(
    workers: str | Iterable[str | WorkerEndpoint],
) -> list[WorkerEndpoint]:
    """Parse a ``--workers`` value into endpoints.

    Accepts a comma-separated string (the CLI shape), an iterable of
    endpoint specs, or ready :class:`WorkerEndpoint` objects (passed
    through, so tests can hand over pre-bound accept endpoints).
    """
    if workers is None:
        return []
    if isinstance(workers, str):
        parts: Iterable = [p for p in workers.split(",") if p.strip()]
    else:
        parts = workers
    endpoints = []
    for part in parts:
        if isinstance(part, WorkerEndpoint):
            endpoints.append(part)
        else:
            endpoints.append(WorkerEndpoint.parse(part))
    return endpoints


def probe_worker(
    endpoint: str | WorkerEndpoint, timeout: float = 0.5
) -> dict:
    """Liveness-probe one dial endpoint (the daemon ``/metrics`` hook).

    Connects, reads the worker's hello and disconnects — the worker's
    accept loop treats the abandoned session as a finished coordinator
    and keeps serving.  Accept endpoints cannot be probed (the worker
    dials *us*), so they report ``alive: None``.
    """
    ep = (
        endpoint
        if isinstance(endpoint, WorkerEndpoint)
        else WorkerEndpoint.parse(endpoint)
    )
    info: dict[str, Any] = {"endpoint": ep.spec, "alive": None}
    if ep.kind != "dial":
        return info
    try:
        with socket.create_connection((ep.host, ep.port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            line = sock.makefile("r", encoding="utf-8").readline()
        hello = json.loads(line)
        info.update(
            alive=True,
            pid=hello.get("pid"),
            host=hello.get("host"),
            protocol=hello.get("protocol"),
        )
    except (OSError, ValueError) as exc:
        info.update(alive=False, error=f"{type(exc).__name__}: {exc}")
    return info


# ----------------------------------------------------------------------
# Wire helpers.
# ----------------------------------------------------------------------


def _send(wfile, msg: dict) -> None:
    wfile.write(json.dumps(msg, separators=(",", ":")) + "\n")
    wfile.flush()


def _decode_items(raw: Sequence) -> list[tuple[int, ScenarioSpec]]:
    return [(int(idx), ScenarioSpec.from_dict(data)) for idx, data in raw]


def _encode_items(items: Sequence) -> list:
    return [[idx, spec.to_dict()] for idx, spec in items]


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------


def _run_unit(msg: dict, collect: bool) -> dict:
    """Execute one unit message; build the reply (never raises for
    scenario/unit failures — only :class:`ContractViolation` style
    aborts surface as fatal ``error`` replies)."""
    unit_id = msg.get("id")
    backend = msg.get("backend", "batched")
    try:
        if msg.get("kind") == "batch":
            from repro.engine.scheduler import PlannedBatch

            batch = PlannedBatch(
                n=int(msg["n"]),
                bucket=int(msg["bucket"]),
                width=int(msg["width"]),
                items=tuple(_decode_items(msg["items"])),
            )
            payload = _execute_planned(
                batch, backend, bool(msg.get("compact", True)), collect
            )
        else:
            chunk = _decode_items(msg["items"])
            payload = _execute_chunk(chunk, backend, collect)
    except ContractViolation as exc:
        return {
            "type": "error",
            "id": unit_id,
            "kind": "contract",
            "error": str(exc),
            "contract": exc.contract,
            "detail": exc.detail,
            "repro": exc.repro,
        }
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 — unit isolation
        return {
            "type": "error",
            "id": unit_id,
            "kind": type(exc).__name__,
            "error": str(exc),
        }
    payload, meta = _split_payload(payload)
    reply = {
        "type": "result",
        "id": unit_id,
        "pid": os.getpid(),
        "records": [
            [idx, journal_record(result)] for idx, result in payload
        ],
    }
    if meta is not None:
        reply["busy_s"] = meta["busy_s"]
        reply["snapshot"] = meta["snapshot"]
    return reply


def _apply_setup(msg: dict) -> bool:
    """Apply a setup message's shipped environment; return the collect
    flag.  Keys the coordinator did not ship are removed so repeated
    sessions against one long-lived worker stay hermetic."""
    env = msg.get("env") or {}
    for key in SHIPPED_ENV:
        if key in env:
            os.environ[key] = str(env[key])
        else:
            os.environ.pop(key, None)
    # Contracts memoize per process; re-resolve so a long-lived worker
    # honors each coordinator session's hardening choice.
    from repro.engine import contracts as _contracts

    if _contracts.enabled():
        _contracts.activate()
    else:
        _contracts.deactivate()
    return bool(msg.get("collect"))


def _serve_session(sock: socket.socket, spool: Path | None, log) -> None:
    """One coordinator session: hello, then serve units until shutdown
    or EOF.  The per-session spool file (when configured) receives every
    record this worker produced — its local journal shard."""
    rfile = sock.makefile("r", encoding="utf-8")
    wfile = sock.makefile("w", encoding="utf-8")
    collect = False
    spool_fh = None
    try:
        _send(
            wfile,
            {
                "type": "hello",
                "protocol": PROTOCOL,
                "pid": os.getpid(),
                "host": platform.node(),
            },
        )
        for line in rfile:
            line = line.strip()
            if not line:
                continue
            msg = json.loads(line)
            kind = msg.get("type")
            if kind == "setup":
                collect = _apply_setup(msg)
            elif kind == "unit":
                reply = _run_unit(msg, collect)
                if spool is not None and reply.get("type") == "result":
                    if spool_fh is None:
                        spool.parent.mkdir(parents=True, exist_ok=True)
                        spool_fh = spool.open("a", encoding="utf-8")
                    for _idx, record in reply["records"]:
                        spool_fh.write(
                            json.dumps(
                                record, sort_keys=True, separators=(",", ":")
                            )
                            + "\n"
                        )
                    spool_fh.flush()
                _send(wfile, reply)
            elif kind == "shutdown":
                break
    finally:
        if spool_fh is not None:
            spool_fh.close()
        for fh in (rfile, wfile):
            try:
                fh.close()
            except OSError:
                pass


def worker_serve(
    listen: str | None = None,
    connect: str | None = None,
    spool: str | os.PathLike | None = None,
    port_file: str | os.PathLike | None = None,
    stream=None,
    connect_timeout: float = CONNECT_TIMEOUT_S,
) -> int:
    """The ``repro worker`` entrypoint.

    ``listen="host:port"`` binds and serves coordinator sessions until
    SIGTERM/SIGINT (port ``0`` picks a free port; ``port_file`` receives
    the bound ``host:port``, written atomically — the same handshake the
    daemon harness uses).  ``connect="host:port"`` dials a coordinator's
    accept endpoint (with retry while the coordinator binds) and serves
    exactly one session.  Returns a process exit code.
    """
    import signal
    import sys

    log = stream if stream is not None else sys.stderr

    def _say(text: str) -> None:
        try:
            log.write(f"worker: {text}\n")
            log.flush()
        except (OSError, ValueError):
            pass

    spool_path = Path(spool) if spool is not None else None
    if (listen is None) == (connect is None):
        _say("exactly one of --listen / --connect is required")
        return 2

    if connect is not None:
        ep = WorkerEndpoint.parse(connect)
        try:
            sock = WorkerEndpoint(
                kind="dial", host=ep.host, port=ep.port
            ).establish(connect_timeout)
        except RemoteWorkerError as exc:
            _say(str(exc))
            return 1
        _say(f"connected to coordinator {ep.host}:{ep.port}")
        with sock:
            _serve_session(sock, spool_path, log)
        return 0

    ep = WorkerEndpoint.parse(listen)
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((ep.host, ep.port))
    server.listen(4)
    bound = f"{ep.host}:{server.getsockname()[1]}"
    if port_file is not None:
        target = Path(port_file)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(bound + "\n", encoding="utf-8")
        tmp.replace(target)
    _say(f"listening on {bound} (pid {os.getpid()})")

    stopping = threading.Event()

    def _terminate(signum, frame):  # noqa: ARG001 — signal API
        stopping.set()
        raise SystemExit(0)

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _terminate)
        except (ValueError, OSError):  # non-main thread (tests)
            pass
    server.settimeout(0.5)
    try:
        while not stopping.is_set():
            try:
                sock, addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            _say(f"session from {addr[0]}:{addr[1]}")
            try:
                with sock:
                    _serve_session(sock, spool_path, log)
            except (OSError, ValueError) as exc:
                _say(f"session ended: {type(exc).__name__}: {exc}")
    except SystemExit:
        pass
    finally:
        server.close()
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        _say("stopped")
    return 0


# ----------------------------------------------------------------------
# Deterministic shard-merge.
# ----------------------------------------------------------------------


class ShardMerger:
    """Release completion-order results in canonical plan order.

    Built from the plan-order index sequence (the order a serial
    single-host run journals in).  :meth:`add` buffers each arriving
    ``(index, result)`` and returns the newly releasable contiguous
    prefix — the merged journal stream is byte-identical to the serial
    run no matter the arrival order.  Strict by design: an unknown index
    or a duplicate arrival raises (the dispatcher deduplicates late
    straggler replies *before* merging).
    """

    def __init__(self, order: Sequence[int]) -> None:
        self._pos = {int(idx): pos for pos, idx in enumerate(order)}
        if len(self._pos) != len(order):
            raise ValueError("duplicate work indices in merge order")
        self._held: dict[int, tuple[int, ScenarioResult]] = {}
        self._next = 0
        self.total = len(self._pos)
        self.released = 0

    def add(self, idx: int, result: ScenarioResult) -> list:
        """Accept one completed result; return the newly released
        ``(idx, result)`` pairs in plan order (possibly empty)."""
        pos = self._pos[int(idx)]
        if pos < self._next or pos in self._held:
            raise ValueError(f"duplicate result for work index {idx}")
        self._held[pos] = (int(idx), result)
        out = []
        while self._next in self._held:
            out.append(self._held.pop(self._next))
            self._next += 1
            self.released += 1
        return out

    def drain(self) -> list:
        """Flush everything still held, in position order (gaps are
        skipped — their scenarios never completed and will re-run on
        resume).  Used on interrupt so completed work stays durable."""
        out = [self._held[pos] for pos in sorted(self._held)]
        self.released += len(out)
        self._held.clear()
        return out

    @property
    def pending(self) -> int:
        return len(self._held)


# ----------------------------------------------------------------------
# Coordinator.
# ----------------------------------------------------------------------

_UNIT_SEQ = threading.Lock()
_unit_counter = [0]


def _next_unit_id() -> str:
    with _UNIT_SEQ:
        _unit_counter[0] += 1
        return f"u{_unit_counter[0]}"


@dataclass
class _Unit:
    kind: str  # "batch" | "chunk"
    items: list
    batch: Any = None
    id: str = field(default_factory=_next_unit_id)

    def key(self) -> str:
        return self.items[0][1].scenario_id if self.items else "empty"


class _Link:
    """One live worker connection plus its reader thread."""

    def __init__(self, link_id: str, endpoint: WorkerEndpoint,
                 sock: socket.socket) -> None:
        self.id = link_id
        self.endpoint = endpoint
        self.sock = sock
        self.rfile = sock.makefile("r", encoding="utf-8")
        self.wfile = sock.makefile("w", encoding="utf-8")
        self.pid: int | None = None
        self.host: str | None = None
        self.closed = False
        self.inflight: tuple | None = None  # (unit, attempts, submit_t)
        self.dispatched = 0
        self.requeued = 0
        self.units_done = 0
        self.busy_s = 0.0
        self._thread: threading.Thread | None = None

    def read_hello(self, timeout: float) -> dict:
        self.sock.settimeout(timeout)
        try:
            line = self.rfile.readline()
        finally:
            self.sock.settimeout(None)
        if not line:
            raise RemoteWorkerError(
                f"worker {self.endpoint.spec} closed before hello"
            )
        hello = json.loads(line)
        if hello.get("type") != "hello":
            raise RemoteWorkerError(
                f"worker {self.endpoint.spec} sent {hello.get('type')!r} "
                "instead of hello"
            )
        if hello.get("protocol") != PROTOCOL:
            raise RemoteWorkerError(
                f"worker {self.endpoint.spec} speaks protocol "
                f"{hello.get('protocol')!r}, coordinator speaks {PROTOCOL}"
            )
        self.pid = hello.get("pid")
        self.host = hello.get("host")
        return hello

    def start_reader(self, inbox: "queue_mod.Queue") -> None:
        def _pump() -> None:
            try:
                for line in self.rfile:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        msg = json.loads(line)
                    except ValueError:
                        continue
                    inbox.put((self, msg))
            except (OSError, ValueError):
                pass
            inbox.put((self, None))

        self._thread = threading.Thread(
            target=_pump, name=f"remote-{self.id}", daemon=True
        )
        self._thread.start()

    def send(self, msg: dict) -> None:
        _send(self.wfile, msg)

    def close(self) -> None:
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def info(self) -> dict:
        return {
            "endpoint": self.endpoint.spec,
            "pid": self.pid,
            "host": self.host,
            "units": self.units_done,
            "busy_s": round(self.busy_s, 6),
            "dispatched": self.dispatched,
            "requeued": self.requeued,
        }


def _plan_units(
    indexed: list,
    backend: str,
    batch_memory: int | None,
    pack_widths: bool,
    plan,
    chunksize: int | None,
    fleet: int,
    recorder,
) -> list[_Unit]:
    """The dispatch units, in canonical plan order.

    Batched/auto backends ship whole planned batches (planned with
    ``jobs=1`` so the plan — and the journal order — matches the serial
    single-host run exactly); plan singles and other backends ship as
    contiguous order-chunks.  Large batches are pre-split at their
    deterministic midpoints until the fleet has work for every worker —
    splits replace a unit in place, so plan-order coverage is preserved.
    """
    units: list[_Unit] = []
    if backend in ("batched", "auto"):
        from repro.engine.scheduler import plan_batches

        if plan is None:
            plan = plan_batches(
                indexed,
                batch_memory=batch_memory,
                jobs=1,
                pack_widths=pack_widths,
                recorder=recorder,
            )
        for batch in plan.batches:
            units.append(
                _Unit(kind="batch", items=list(batch.items), batch=batch)
            )
        singles = list(plan.singles)
        if singles:
            size = chunksize or default_chunksize(len(singles), fleet)
            for i in range(0, len(singles), size):
                units.append(_Unit(kind="chunk", items=singles[i:i + size]))
    else:
        size = chunksize or default_chunksize(len(indexed), fleet)
        for i in range(0, len(indexed), size):
            units.append(_Unit(kind="chunk", items=indexed[i:i + size]))

    from repro.engine.scheduler import can_split, split_planned

    while len(units) < fleet:
        best = None
        best_lanes = 0
        for i, unit in enumerate(units):
            if unit.kind == "batch" and can_split(unit.batch):
                if unit.batch.lanes > best_lanes:
                    best, best_lanes = i, unit.batch.lanes
        if best is None:
            break
        halves = split_planned(units[best].batch)
        units[best:best + 1] = [
            _Unit(kind="batch", items=list(half.items), batch=half)
            for half in halves
        ]
    return units


def _unit_msg(unit: _Unit, backend: str, compact: bool) -> dict:
    if unit.kind == "batch":
        batch = unit.batch
        return {
            "type": "unit",
            "kind": "batch",
            "id": unit.id,
            "n": batch.n,
            "bucket": batch.bucket,
            "width": batch.width,
            "items": _encode_items(batch.items),
            "backend": backend,
            "compact": compact,
        }
    return {
        "type": "unit",
        "kind": "chunk",
        "id": unit.id,
        "items": _encode_items(unit.items),
        "backend": backend,
    }


def execute_remote(
    specs: Iterable[ScenarioSpec],
    workers: str | Iterable[str | WorkerEndpoint],
    *,
    timeout: float | None = None,
    on_result: Callable[[ScenarioResult], Any] | None = None,
    backend: str = "batched",
    batch_memory: int | None = None,
    compact: bool = True,
    pack_widths: bool = False,
    plan=None,
    recorder=None,
    max_retries: int = 0,
    should_stop: Callable[[], bool] | None = None,
    shard_base: str | os.PathLike | None = None,
    chunksize: int | None = None,
    poll_interval: float = 0.05,
    connect_timeout: float = CONNECT_TIMEOUT_S,
) -> list[ScenarioResult]:
    """Execute scenarios on a fleet of remote workers.

    Mirrors :func:`~repro.engine.executor.execute_scenarios` semantics
    (``on_result`` journaling, ``max_retries`` with deterministic
    backoff, a pooled fleet deadline from ``timeout``, ``should_stop``)
    but delivers results to ``on_result`` in *plan order* through a
    :class:`ShardMerger`, so the journal is byte-identical to a serial
    single-host run.  ``shard_base`` (the journal path) enables
    coordinator-side per-worker shard files for crash-resume via
    :func:`absorb_shards`.  Returns results in ``specs`` order.
    """
    spec_list = list(specs)
    if not spec_list:
        return []
    endpoints = parse_workers(workers)
    if not endpoints:
        raise ValueError("execute_remote needs at least one worker endpoint")

    if shard_base is not None:
        # A fresh run owns its shard namespace: anything a previous run
        # left behind was either absorbed on resume or is superseded.
        for stale in shard_paths(shard_base):
            try:
                stale.unlink()
            except OSError:
                pass

    indexed = list(enumerate(spec_list))
    units = _plan_units(
        indexed, backend, batch_memory, pack_widths, plan, chunksize,
        len(endpoints), recorder,
    )
    order = [idx for unit in units for idx, _spec in unit.items]
    merger = ShardMerger(order)

    inbox: queue_mod.Queue = queue_mod.Queue()
    setup = {
        "type": "setup",
        "env": {k: os.environ[k] for k in SHIPPED_ENV if k in os.environ},
        "collect": bool(recorder),
    }
    links: list[_Link] = []
    try:
        for i, endpoint in enumerate(endpoints):
            sock = endpoint.establish(connect_timeout)
            link = _Link(f"w{i}", endpoint, sock)
            try:
                link.read_hello(connect_timeout)
                link.send(setup)
            except (OSError, ValueError) as exc:
                link.close()
                raise RemoteWorkerError(
                    f"handshake with worker {endpoint.spec} failed: {exc}"
                ) from exc
            link.start_reader(inbox)
            links.append(link)
    except BaseException:
        for link in links:
            link.close()
        for endpoint in endpoints:
            endpoint.close()
        raise

    fleet = len(links)
    start = time.monotonic()
    window = (
        timeout * math.ceil(len(spec_list) / fleet)
        if timeout is not None
        else None
    )
    deadline = start + window if window is not None else None

    # The work queue: [unit, attempts, not_before] — retried units
    # re-enter with attempts+1 and a deterministic backoff delay.
    work: list[list] = [[unit, 0, 0.0] for unit in units]
    done_units: set[str] = set()
    collected: dict[int, ScenarioResult] = {}
    delivered_ids: list[str] = []
    shard_files: dict[str, Any] = {}
    abandoned = False
    stopped = False

    def live() -> list[_Link]:
        return [link for link in links if not link.closed]

    def deliver(released: list) -> None:
        for idx, result in released:
            if recorder:
                _count_result(recorder, result)
            collected[idx] = result
            delivered_ids.append(result.scenario_id)
            if on_result is not None:
                on_result(result)

    def append_shard(link: _Link, records: list) -> None:
        if shard_base is None or not records:
            return
        fh = shard_files.get(link.id)
        if fh is None:
            path = Path(f"{shard_base}.shard-{link.id}.jsonl")
            path.parent.mkdir(parents=True, exist_ok=True)
            # "w": a fresh run owns its shards — stale shards from an
            # earlier run were already absorbed (or superseded).
            fh = path.open("w", encoding="utf-8")
            shard_files[link.id] = fh
        for _idx, record in records:
            fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        fh.flush()

    def synthesize_failure(unit: _Unit, reason: str) -> None:
        nonlocal abandoned
        abandoned = True
        done_units.add(unit.id)
        for idx, spec in unit.items:
            deliver(
                merger.add(
                    idx,
                    ScenarioResult.failure(
                        spec, reason, status=STATUS_TIMEOUT, backend=backend
                    ),
                )
            )

    def retry_or_fail(link: _Link | None, unit: _Unit, attempts: int,
                      reason: str) -> None:
        if link is not None:
            link.requeued += 1
        if attempts < max_retries:
            if recorder:
                recorder.vinc("remote.batches_requeued")
            if attempts >= 1 and len(unit.items) > 1:
                # Repeated failure of a multi-scenario unit: re-run the
                # members as singleton chunks so the innocent majority
                # completes and only a deterministic killer fails.
                if recorder:
                    recorder.vinc("remote.singleton_splits")
                for item in unit.items:
                    single = _Unit(kind="chunk", items=[item])
                    delay = retry_delay(single.key(), attempts + 1)
                    work.append(
                        [single, attempts + 1, time.monotonic() + delay]
                    )
            else:
                delay = retry_delay(unit.key(), attempts + 1)
                work.append([unit, attempts + 1, time.monotonic() + delay])
        else:
            synthesize_failure(
                unit, f"remote unit failed: {reason} "
                f"(retry budget {max_retries} exhausted)"
            )

    def lose_link(link: _Link, reason: str) -> None:
        if link.closed:
            entry = link.inflight
            link.inflight = None
            if entry is not None and entry[0].id not in done_units:
                retry_or_fail(link, entry[0], entry[1], reason)
            return
        link.close()
        if recorder:
            recorder.vinc("remote.workers_lost")
        entry = link.inflight
        link.inflight = None
        if entry is not None and entry[0].id not in done_units:
            retry_or_fail(link, entry[0], entry[1], reason)

    def handle(link: _Link, msg) -> None:
        if msg is None:
            lose_link(link, f"worker {link.endpoint.spec} connection lost")
            return
        if link.closed:
            return  # late straggler reply — its unit was requeued
        kind = msg.get("type")
        if kind == "result":
            entry = link.inflight
            if (
                entry is None
                or entry[0].id != msg.get("id")
                or msg.get("id") in done_units
            ):
                return
            unit, _attempts, submit_t = entry
            link.inflight = None
            done_units.add(unit.id)
            records = msg.get("records", [])
            append_shard(link, records)
            busy = float(msg.get("busy_s") or 0.0)
            link.units_done += 1
            link.busy_s += busy
            if recorder:
                turnaround = time.monotonic() - submit_t
                recorder.add_duration("executor.unit_wall_s", turnaround)
                snapshot = msg.get("snapshot")
                if snapshot:
                    recorder.merge(snapshot)
                    recorder.add_duration("executor.worker_busy_s", busy)
                    recorder.add_duration(
                        "executor.queue_wait_s", max(0.0, turnaround - busy)
                    )
                # Det plane: every scenario's record is merged exactly
                # once in a clean run, whatever the fleet size.
                recorder.inc("remote.shard_records_merged", len(records))
            released: list = []
            for idx, record in records:
                released.extend(merger.add(int(idx), decode_result(record)))
            deliver(released)
        elif kind == "error":
            if msg.get("kind") == "contract":
                raise ContractViolation(
                    msg.get("contract", "remote"),
                    msg.get("detail", msg.get("error", "remote violation")),
                    dict(msg.get("repro") or {}, worker=link.endpoint.spec),
                )
            entry = link.inflight
            link.inflight = None
            if entry is not None and entry[0].id not in done_units:
                retry_or_fail(link, entry[0], entry[1], msg.get("error", "?"))

    try:
        while work or any(link.inflight for link in live()):
            if should_stop is not None and should_stop():
                stopped = True
                raise ExecutionStopped(
                    "run interrupted by shutdown signal"
                )
            if not live():
                # The whole fleet is gone: journal everything left as
                # retriable timeouts so a restarted campaign resumes.
                for unit, _attempts, _not_before in work:
                    if unit.id not in done_units:
                        synthesize_failure(
                            unit, "remote fleet lost (all workers down)"
                        )
                work = []
                break
            now = time.monotonic()
            # Dispatch: one in-flight unit per worker (the remote analog
            # of the steal-mode throttle) so slow workers never hoard.
            idle = [link for link in live() if link.inflight is None]
            for link in idle:
                chosen = None
                for i, entry in enumerate(work):
                    if entry[2] <= now:
                        chosen = i
                        break
                if chosen is None:
                    break
                unit, attempts, _not_before = work.pop(chosen)
                try:
                    link.send(_unit_msg(unit, backend, compact))
                except (OSError, ValueError) as exc:
                    work.insert(0, [unit, attempts, _not_before])
                    lose_link(
                        link,
                        f"send to {link.endpoint.spec} failed: {exc}",
                    )
                    continue
                link.inflight = (unit, attempts, time.monotonic())
                link.dispatched += 1
                if recorder:
                    recorder.vinc("remote.batches_dispatched")
            # Receive: block briefly for the first message, then drain.
            events = []
            try:
                events.append(inbox.get(timeout=poll_interval))
            except queue_mod.Empty:
                pass
            while True:
                try:
                    events.append(inbox.get_nowait())
                except queue_mod.Empty:
                    break
            for link, msg in events:
                handle(link, msg)
            # Fleet deadline: every straggling unit expires together —
            # cut the link (the remote worker notices on its next send
            # and re-enters its accept loop) and retry elsewhere.
            if deadline is not None and time.monotonic() > deadline:
                stragglers = [link for link in live() if link.inflight]
                if stragglers:
                    retried = False
                    for link in stragglers:
                        entry = link.inflight
                        link.close()
                        if recorder:
                            recorder.vinc("remote.stragglers_cut")
                        link.inflight = None
                        unit, attempts, _submit_t = entry
                        if unit.id in done_units:
                            continue
                        if attempts < max_retries:
                            retry_or_fail(link, unit, attempts,
                                          "fleet deadline")
                            retried = True
                        else:
                            synthesize_failure(
                                unit,
                                f"no result within {window:.1f}s",
                            )
                    if retried:
                        deadline = time.monotonic() + window
    finally:
        if stopped:
            # Durability on interrupt: journal every already-completed
            # result still held back by the merger (plan-order among
            # themselves; gaps simply re-run on resume).
            deliver(merger.drain())
        for link in links:
            if not link.closed:
                try:
                    link.send({"type": "shutdown"})
                except (OSError, ValueError):
                    pass
                link.close()
        for endpoint in endpoints:
            endpoint.close()
        for fh in shard_files.values():
            try:
                fh.close()
            except OSError:
                pass

    contracts = _get_contracts()
    if contracts and not abandoned and contracts.sample("shard_merge"):
        contracts.check_shard_merge(
            [spec_list[idx].scenario_id for idx in order],
            delivered_ids,
            context={"backend": backend, "fleet": fleet},
        )
    if shard_base is not None:
        # Every sharded record is journal-durable once the run returns
        # normally — drop the redundant shards so only a crashed or
        # interrupted coordinator leaves any behind for absorb_shards.
        for path in shard_paths(shard_base):
            try:
                path.unlink()
            except OSError:
                pass
    if recorder:
        recorder.vgauge_max("remote.fleet", fleet)
        recorder.set_info(
            "remote.workers", [link.info() for link in links]
        )
        wall = time.monotonic() - start
        busy_total = sum(link.busy_s for link in links)
        if wall > 0 and busy_total:
            recorder.vgauge_max(
                "remote.worker_utilization_pct",
                round(100.0 * busy_total / (fleet * wall), 1),
            )
    return [collected[i] for i in range(len(spec_list))]


# ----------------------------------------------------------------------
# Crash-resume: fold orphaned worker shards back into the journal.
# ----------------------------------------------------------------------


def shard_paths(store_path: str | os.PathLike) -> list[Path]:
    """The per-worker shard files next to a journal path."""
    path = Path(store_path)
    return sorted(path.parent.glob(path.name + ".shard-*.jsonl"))


def absorb_shards(store, recorder=None) -> int:
    """Fold per-worker shard records into the store's main journal.

    A coordinator crash can leave results that workers completed (and
    sharded) but the coordinator never journaled.  Resuming a campaign
    absorbs those records first — a shard record is appended when the
    main journal has no terminal record for its scenario — then removes
    the shard files (their contents are now durable in the journal).
    Idempotent: re-absorbing already-journaled records is a no-op.
    Returns the number of records absorbed.
    """
    if store.path is None:
        return 0
    latest = store.load()
    absorbed = 0
    for shard in shard_paths(store.path):
        try:
            lines = shard.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                result = decode_result(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue  # torn shard tail — the scenario just re-runs
            prior = latest.get(result.scenario_id)
            if prior is not None and is_terminal(prior.status):
                continue
            if prior is not None and not is_terminal(result.status):
                continue
            store.append(result)
            latest[result.scenario_id] = result
            absorbed += 1
        try:
            shard.unlink()
        except OSError:
            pass
    if recorder and absorbed:
        recorder.vinc("remote.shard_records_absorbed", absorbed)
    return absorbed
