"""The campaign API: grid + store + executor, resumable end to end.

A :class:`Campaign` binds a scenario grid to a result store and drives the
executor over whatever is still missing.  Invoking :meth:`Campaign.run`
twice is idempotent; deleting half the journal and re-running executes
exactly the deleted half (resume-by-hash).

The CLI surface (``skeleton-agreement campaign run/status/report``) is a
thin veneer over this module, and the experiment sweeps
(:mod:`repro.experiments.sweeps`) and the BASELINE / LATENCY-DIST
benchmarks route their ensembles through it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.reporting import format_table
from repro.engine.executor import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ScenarioResult,
    execute_scenarios,
    is_terminal,
)
from repro.engine.scenarios import ScenarioGrid, ScenarioSpec
from repro.engine.store import ResultStore
from repro.engine.telemetry import NULL


@dataclass(frozen=True)
class CampaignReport:
    """What one :meth:`Campaign.run` invocation did."""

    total: int
    executed: int
    skipped: int
    ok: int
    errors: int
    timeouts: int

    def as_rows(self) -> list[list]:
        return [
            ["scenarios in grid", self.total],
            ["already complete (skipped)", self.skipped],
            ["executed now", self.executed],
            ["  ok", self.ok],
            ["  errors", self.errors],
            ["  timeouts", self.timeouts],
        ]

    def summary(self) -> str:
        return format_table(["quantity", "value"], self.as_rows(),
                            title="campaign run")


@dataclass(frozen=True)
class CampaignStatus:
    """Store-vs-grid reconciliation (no execution)."""

    total: int
    ok: int
    errors: int
    timeouts: int
    missing: int
    #: Wall-clock span of the journal's append timestamps (the ``.times``
    #: sidecar), when at least two records carry one.  Advisory — old
    #: journals without a sidecar report ``None``.
    elapsed_s: float | None = None
    #: Terminal records per second over ``elapsed_s`` (``None`` when the
    #: span is degenerate).
    rate: float | None = None

    @property
    def complete(self) -> bool:
        return self.missing == 0 and self.timeouts == 0

    @property
    def succeeded(self) -> bool:
        """Complete with no terminal failures.

        Error records are terminal (resume will not retry them), so a
        fully-journaled-but-failed campaign is complete yet not
        succeeded — the CLI's shared green-ness condition."""
        return self.complete and self.errors == 0

    def state(self) -> str:
        """A four-way classification the CLI exit codes hang off:

        * ``"nothing-to-do"`` — the grid expanded to zero scenarios.  An
          empty-but-consistent store is *vacuously* green; it must be
          distinguishable (exit 2) from a campaign that actually ran.
        * ``"ok"`` — every scenario has a terminal record, none failed.
        * ``"failed"`` — fully journaled but with terminal errors.
        * ``"incomplete"`` — a half-executed grid: missing and/or
          retriable-timeout scenarios remain.
        """
        if self.total == 0:
            return "nothing-to-do"
        if not self.complete:
            return "incomplete"
        if self.errors:
            return "failed"
        return "ok"

    def describe(self) -> str:
        """One self-explanatory line per state (printed by the CLI)."""
        state = self.state()
        if state == "nothing-to-do":
            return "state: nothing-to-do (grid expanded to 0 scenarios)"
        if state == "incomplete":
            return (
                f"state: incomplete (half-executed grid: {self.missing} "
                f"missing, {self.timeouts} retriable of {self.total})"
            )
        if state == "failed":
            return (
                f"state: failed ({self.errors} of {self.total} scenarios "
                "have terminal errors)"
            )
        return f"state: ok (all {self.total} scenarios complete)"

    def exit_code(self) -> int:
        """0 = ok, 2 = nothing-to-do, 1 = incomplete/failed."""
        return {"ok": 0, "nothing-to-do": 2}.get(self.state(), 1)

    def as_rows(self) -> list[list]:
        rows = [
            ["scenarios in grid", self.total],
            ["ok", self.ok],
            ["errors", self.errors],
            ["timeouts (retriable)", self.timeouts],
            ["missing", self.missing],
            ["complete", self.complete],
        ]
        if self.elapsed_s is not None:
            rows.append(["elapsed (journal)", f"{self.elapsed_s:.3f}s"])
        if self.rate is not None:
            rows.append(["scenarios/s", f"{self.rate:.1f}"])
        return rows

    def summary(self) -> str:
        return format_table(["quantity", "value"], self.as_rows(),
                            title="campaign status")


REPORT_HEADERS = [
    "id",
    "n",
    "k",
    "groups",
    "seed",
    "noise",
    "status",
    "roots",
    "Psrcs(k)",
    "values",
    "decided",
    "last_rnd",
    "bound",
]


def _report_row(result: ScenarioResult) -> list:
    spec = result.spec
    return [
        result.scenario_id,
        spec.n,
        spec.k,
        spec.num_groups,
        spec.seed,
        spec.noise,
        result.status,
        result.root_components,
        result.psrcs_holds,
        result.distinct_decisions,
        result.all_decided,
        result.last_decision_round,
        result.lemma11_bound,
    ]


class Campaign:
    """A resumable ensemble of scenarios over one result store.

    Parameters
    ----------
    scenarios:
        A :class:`ScenarioGrid` or an explicit spec sequence (grid order
        defines summary order).
    store:
        A :class:`ResultStore`, a journal path, or ``None`` for an
        in-memory store.
    jobs:
        Default worker count for :meth:`run`.
    timeout:
        Default per-scenario time budget in seconds.
    backend:
        Default execution engine for :meth:`run`: ``"reference"``,
        ``"vectorized"``, ``"batched"`` or ``"auto"`` (see
        :mod:`repro.engine.backends`).
    batch_memory:
        Per-batch memory envelope in bytes for the batched/auto
        backends (``None``: the built-in budget).  A pure packing knob
        for the batch scheduler — journals and summaries are
        byte-identical whatever the envelope.
    pack_widths:
        Cross-``n`` lane packing for the batched/auto backends: group
        mixed-``n`` batch-compatible scenarios into one padded tensor
        program per round bucket (see
        :func:`repro.engine.scheduler.plan_batches`).  Pure packing
        knob — journals and summaries are byte-identical either way.
    steal:
        Work-stealing pool mode: idle workers steal deterministic
        halves of oversized planned batches (see
        :func:`~repro.engine.executor.execute_scenarios`).  Pure
        execution-shape knob — journals and summaries are
        byte-identical either way.
    label:
        Human name for progress reporting (the experiment family name
        when the campaign was built by the registry).
    max_retries:
        Default in-run retry budget per work unit for :meth:`run`
        (see :func:`~repro.engine.executor.execute_scenarios`): transient
        worker failures are retried with capped deterministic backoff
        before anything is journaled.  ``0`` (the default) preserves the
        historical fail-fast behavior.
    """

    def __init__(
        self,
        scenarios: ScenarioGrid | Sequence[ScenarioSpec],
        store: ResultStore | str | os.PathLike | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        backend: str = "reference",
        batch_memory: int | None = None,
        pack_widths: bool = False,
        steal: bool = False,
        label: str | None = None,
        max_retries: int = 0,
        workers: Sequence[str] | None = None,
    ) -> None:
        if isinstance(scenarios, ScenarioGrid):
            self.specs = scenarios.expand()
        else:
            self.specs = list(scenarios)
        ids = [spec.scenario_id for spec in self.specs]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate scenarios in grid")
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.jobs = jobs
        self.timeout = timeout
        self.backend = backend
        self.batch_memory = batch_memory
        self.pack_widths = pack_widths
        self.steal = steal
        self.label = label
        self.max_retries = max_retries
        self.workers = list(workers) if workers else None
        # Journal snapshot, keyed by id.  One scan serves run/status/
        # report/summary within this Campaign object; run() keeps it
        # current as results are journaled.  Call refresh() if another
        # writer appends to the same store concurrently.
        self._latest: dict[str, ScenarioResult] | None = None

    def refresh(self) -> None:
        """Drop the cached journal snapshot (re-read on next access)."""
        self._latest = None

    def _load_latest(self) -> dict[str, ScenarioResult]:
        if self._latest is None:
            self._latest = self.store.load()
        return self._latest

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: int | None = None,
        resume: bool = True,
        timeout: float | None = None,
        backend: str | None = None,
        progress: object = False,
        recorder=None,
        max_retries: int | None = None,
        pool=None,
        should_stop=None,
        reporter_factory=None,
        on_result=None,
        workers=None,
    ) -> CampaignReport:
        """Execute every scenario that has no terminal record yet.

        With ``resume=False`` the whole grid is re-executed and the
        journal grows new records (last-wins on read).

        ``progress`` turns on family-aware progress reporting
        (completed/total, scenarios/s, batches completed/planned from
        the batch plan, and an ETA): pass ``True`` to emit to *stderr*
        — stdout summaries stay byte-identical — or a writable stream.

        ``recorder`` is a :class:`repro.engine.telemetry.Recorder`; the
        campaign threads it through the scheduler, executor, backends,
        kernels and store, and the caller writes the metrics sidecar.
        ``None`` (the default) is the zero-cost null recorder — journal
        and summary bytes are identical either way.

        The remaining seams exist for the campaign service
        (:mod:`repro.engine.service`); none of them changes journal or
        summary bytes.  ``pool`` is a shared
        :class:`~repro.engine.executor.WorkerPool` the executor uses
        instead of creating its own; ``should_stop`` is polled by the
        executor and aborts the run with
        :class:`~repro.engine.executor.ExecutionStopped` (already-
        journaled results stay durable); ``reporter_factory(total,
        plan)`` builds the progress reporter — overriding ``progress``
        — so the daemon can expose plan-derived progress snapshots over
        HTTP; ``on_result`` is an extra parent-side callback invoked
        after each result is journaled.

        ``workers`` (or the constructor's default) selects *distributed*
        execution: a list of remote worker endpoints (see
        :func:`repro.engine.remote.parse_workers`) the planned batches
        ship to, instead of a local pool.  The plan is computed with
        ``jobs=1`` and results are shard-merged back in plan order, so
        journal and summary bytes are identical to a serial single-host
        run; on resume, orphaned per-worker shard files from a crashed
        coordinator are folded into the journal first.
        """
        rec = NULL if recorder is None else recorder
        resolved_workers = self.workers if workers is None else workers
        if resolved_workers is not None and not resolved_workers:
            resolved_workers = None
        if resolved_workers and resume and self.store.path is not None:
            # Fold shard records a crashed coordinator never journaled
            # back into the journal before computing the todo list.
            from repro.engine.remote import absorb_shards

            absorb_shards(self.store, recorder=rec if rec else None)
        self.refresh()
        latest = self._load_latest()
        if resume:
            # Resume-by-hash on the cached snapshot (same rule as
            # ResultStore.completed_ids).
            todo = [
                spec
                for spec in self.specs
                if latest.get(spec.scenario_id) is None
                or not is_terminal(latest[spec.scenario_id].status)
            ]
        else:
            todo = list(self.specs)
        if rec:
            self.store.recorder = rec
            rec.inc("store.resume_hits", len(self.specs) - len(todo))

        resolved_backend = self.backend if backend is None else backend
        resolved_jobs = self.jobs if jobs is None else jobs
        # One plan serves both the progress reporter and the executor,
        # so the work list is planned exactly once and the reported
        # batch counts are the batches that actually run.
        plan = None
        if todo and resolved_backend in ("batched", "auto"):
            from repro.engine.scheduler import plan_batches

            # Remote runs plan with jobs=1: the plan is a pure function
            # of the work list, so the jobs=1 plan — and hence the
            # journal order — matches the serial single-host run
            # byte-for-byte; fleet parallelism comes from deterministic
            # batch pre-splitting inside the remote dispatcher.
            plan = plan_batches(
                list(enumerate(todo)),
                self.batch_memory,
                jobs=1 if resolved_workers else max(1, resolved_jobs),
                pack_widths=self.pack_widths,
                recorder=rec,
            )
        reporter = None
        if reporter_factory is not None and todo:
            reporter = reporter_factory(len(todo), plan)
        elif progress and todo:
            from repro.engine.scheduler import ProgressReporter

            reporter = ProgressReporter(
                total=len(todo),
                label=self.label,
                plan=plan,
                stream=progress if hasattr(progress, "write") else None,
                recorder=rec if rec else None,
            )

        def journal(result: ScenarioResult) -> None:
            self.store.append(result)
            latest[result.scenario_id] = result
            if reporter is not None:
                reporter.update(result)
            if on_result is not None:
                on_result(result)

        with rec.span("campaign.run_s"):
            if resolved_workers:
                from repro.engine.remote import execute_remote

                results = execute_remote(
                    todo,
                    resolved_workers,
                    timeout=self.timeout if timeout is None else timeout,
                    on_result=journal,
                    backend=resolved_backend,
                    batch_memory=self.batch_memory,
                    pack_widths=self.pack_widths,
                    plan=plan,
                    recorder=rec if rec else None,
                    max_retries=(
                        self.max_retries
                        if max_retries is None
                        else max_retries
                    ),
                    should_stop=should_stop,
                    shard_base=self.store.path,
                )
            else:
                results = execute_scenarios(
                    todo,
                    jobs=resolved_jobs,
                    timeout=self.timeout if timeout is None else timeout,
                    on_result=journal,
                    backend=resolved_backend,
                    batch_memory=self.batch_memory,
                    pack_widths=self.pack_widths,
                    steal=self.steal,
                    plan=plan,
                    recorder=rec if rec else None,
                    max_retries=(
                        self.max_retries
                        if max_retries is None
                        else max_retries
                    ),
                    pool=pool,
                    should_stop=should_stop,
                )
        by_status = {STATUS_OK: 0, STATUS_ERROR: 0, STATUS_TIMEOUT: 0}
        for result in results:
            by_status[result.status] = by_status.get(result.status, 0) + 1
        return CampaignReport(
            total=len(self.specs),
            executed=len(todo),
            skipped=len(self.specs) - len(todo),
            ok=by_status[STATUS_OK],
            errors=by_status[STATUS_ERROR],
            timeouts=by_status[STATUS_TIMEOUT],
        )

    # ------------------------------------------------------------------
    def status(self) -> CampaignStatus:
        latest = self._load_latest()
        counts = {STATUS_OK: 0, STATUS_ERROR: 0, STATUS_TIMEOUT: 0}
        missing = 0
        for spec in self.specs:
            result = latest.get(spec.scenario_id)
            if result is None:
                missing += 1
            else:
                counts[result.status] = counts.get(result.status, 0) + 1
        elapsed_s = rate = None
        wanted = {spec.scenario_id for spec in self.specs}
        stamps = [t for sid, t in self.store.append_times() if sid in wanted]
        if len(stamps) >= 2:
            span = max(stamps) - min(stamps)
            if span > 0:
                elapsed_s = span
                done = len(self.specs) - missing
                rate = done / span if done else None
        return CampaignStatus(
            total=len(self.specs),
            ok=counts[STATUS_OK],
            errors=counts[STATUS_ERROR],
            timeouts=counts[STATUS_TIMEOUT],
            missing=missing,
            elapsed_s=elapsed_s,
            rate=rate,
        )

    # ------------------------------------------------------------------
    def results(self) -> list[ScenarioResult | None]:
        """Stored results in grid order (``None`` where still missing)."""
        latest = self._load_latest()
        return [latest.get(spec.scenario_id) for spec in self.specs]

    def completed_results(self) -> list[ScenarioResult]:
        """Stored results in grid order, missing scenarios dropped."""
        return [r for r in self.results() if r is not None]

    def report_table(self, limit: int | None = None) -> str:
        """A per-scenario result table (grid order)."""
        rows = [_report_row(r) for r in self.completed_results()]
        shown = rows if limit is None else rows[:limit]
        title = f"campaign report ({len(rows)} of {len(self.specs)} scenarios"
        if limit is not None and len(rows) > limit:
            title += f", first {limit} shown"
        title += ")"
        return format_table(REPORT_HEADERS, shown, title=title)

    def write_summary(self, path: str | os.PathLike) -> int:
        """Canonical grid-ordered summary JSONL (see
        :meth:`repro.engine.store.ResultStore.write_summary`)."""
        return self.store.write_summary(
            path, self.specs, latest=self._load_latest()
        )


def run_campaign(
    scenarios: ScenarioGrid | Iterable[ScenarioSpec],
    store: ResultStore | str | os.PathLike | None = None,
    jobs: int = 1,
    timeout: float | None = None,
    resume: bool = True,
    backend: str = "reference",
    batch_memory: int | None = None,
    pack_widths: bool = False,
    steal: bool = False,
) -> list[ScenarioResult]:
    """One-shot convenience: run (resuming) and return grid-ordered
    results.  The workhorse behind the refactored sweeps and benchmarks."""
    campaign = Campaign(
        list(scenarios) if not isinstance(scenarios, ScenarioGrid) else scenarios,
        store=store,
        jobs=jobs,
        timeout=timeout,
        backend=backend,
        batch_memory=batch_memory,
        pack_widths=pack_widths,
        steal=steal,
    )
    campaign.run(resume=resume)
    return campaign.completed_results()
