"""The campaign service: an always-on daemon with a local job API.

Every campaign used to be a one-shot CLI invocation that re-paid pool
spin-up, plan construction, and store open on each run.  This module
turns the engine into a long-running service (``campaign serve``) that
owns one persistent :class:`~repro.engine.executor.WorkerPool` and a
warm scheduler, and accepts campaign submissions over a local HTTP/JSON
API (stdlib ``http.server`` — no new dependencies):

``POST /campaigns``
    Submit a campaign (a registered ``family`` + params, a grid-axes
    dict, or an explicit spec list) → ``{"id": "c0001", ...}``.
``GET /campaigns``
    List jobs (``?store=PATH`` filters to one journal path).
``GET /campaigns/<id>``
    Status: ``queued`` / ``running`` / ``done`` / ``failed``, scenarios
    done/total and an ETA from the plan-derived
    :class:`~repro.engine.scheduler.ProgressReporter`, and the final
    store-vs-grid reconciliation once terminal.
``GET /campaigns/<id>/results``
    ``?view=summary`` (default) streams the canonical grid-ordered
    summary JSONL — byte-identical to ``Campaign.write_summary``;
    ``?view=table`` / ``?view=aggregate`` render the report tables.
``GET /healthz`` and ``GET /metrics``
    Liveness, and the per-campaign telemetry sidecars namespaced by
    campaign id.

A FIFO queue feeds ``--slots`` runner threads, so concurrent campaigns
multiplex across the shared pool at
:class:`~repro.engine.scheduler.PlannedBatch` granularity — each
campaign journals to its *own* store, and journal/summary bytes are
byte-identical to a one-shot ``campaign run`` of the same grid (the
core acceptance test of the daemon).

Shutdown: SIGTERM/SIGINT interrupts running campaigns via the
executor's ``should_stop`` seam (journals stay durable and resumable by
hash), closes the pool, flushes sidecars, and exits 0.
``--shutdown-after S`` instead *drains*: new submissions get 503, the
queue finishes, then the same clean exit.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.engine.campaign import Campaign, CampaignReport, CampaignStatus
from repro.engine.executor import ExecutionStopped, WorkerPool
from repro.engine.scenarios import ScenarioGrid, ScenarioSpec

SERVICE_SCHEMA = 1

#: Environment variable naming a running daemon's base URL; when set,
#: ``campaign run`` transparently becomes a thin client.
DAEMON_ENV = "REPRO_DAEMON"

_TERMINAL_STATES = ("done", "failed")


class SubmissionError(ValueError):
    """A campaign submission that cannot be turned into a Campaign."""


class _Discard:
    """A write-only sink for the reporter's human progress lines (the
    daemon serves progress as JSON snapshots instead)."""

    def write(self, _text: str) -> int:
        return 0

    def flush(self) -> None:  # pragma: no cover — stream protocol
        pass


def campaign_from_submission(
    payload: Mapping[str, Any], store: str, jobs: int
) -> Campaign:
    """Build a :class:`Campaign` from one POST body.

    Exactly one scenario source must be present: ``family`` (+ optional
    ``params``), ``grid`` (a :meth:`ScenarioGrid.to_dict` axes dict),
    or ``specs`` (explicit spec dicts — what a client sends for a
    hand-built spec list).  Engine knobs (``backend``, ``batch_memory``
    in bytes, ``pack_widths``, ``steal``, ``timeout``, ``max_retries``,
    ``label``) mirror the ``campaign run`` flags so a served campaign
    journals byte-identically to the equivalent one-shot run.
    """
    sources = [k for k in ("family", "grid", "specs") if payload.get(k)]
    if len(sources) != 1:
        raise SubmissionError(
            "submission needs exactly one of 'family', 'grid' or 'specs' "
            f"(got {sources or 'none'})"
        )
    timeout = payload.get("timeout")
    batch_memory = payload.get("batch_memory")
    knobs = dict(
        store=store,
        jobs=jobs,
        timeout=float(timeout) if timeout is not None else None,
        batch_memory=int(batch_memory) if batch_memory is not None else None,
        pack_widths=bool(payload.get("pack_widths", False)),
        steal=bool(payload.get("steal", False)),
        max_retries=int(payload.get("max_retries", 0) or 0),
    )
    if payload.get("family"):
        from repro.engine.registry import family_campaign

        try:
            return family_campaign(
                str(payload["family"]),
                payload.get("params") or {},
                backend=payload.get("backend"),
                **knobs,
            )
        except (KeyError, ValueError) as exc:
            msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            raise SubmissionError(str(msg)) from exc
    try:
        if payload.get("grid"):
            scenarios: Any = ScenarioGrid.from_dict(payload["grid"])
        else:
            scenarios = [
                ScenarioSpec.from_dict(d) for d in payload["specs"]
            ]
        return Campaign(
            scenarios,
            backend=payload.get("backend") or "reference",
            label=str(payload.get("label") or "grid"),
            **knobs,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SubmissionError(f"bad scenario source: {exc}") from exc


def _status_dict(status: CampaignStatus) -> dict:
    return {
        "total": status.total,
        "ok": status.ok,
        "errors": status.errors,
        "timeouts": status.timeouts,
        "missing": status.missing,
        "state": status.state(),
        "exit_code": status.exit_code(),
        "describe": status.describe(),
    }


def _report_dict(report: CampaignReport) -> dict:
    return {
        "total": report.total,
        "executed": report.executed,
        "skipped": report.skipped,
        "ok": report.ok,
        "errors": report.errors,
        "timeouts": report.timeouts,
    }


class CampaignJob:
    """One submitted campaign: queue entry, live progress, and outcome."""

    def __init__(
        self, job_id: str, campaign: Campaign, payload: Mapping[str, Any]
    ) -> None:
        self.id = job_id
        self.campaign = campaign
        self.store = str(campaign.store.path) if campaign.store.path else ""
        self.label = campaign.label or "grid"
        self.resume = bool(payload.get("resume", True))
        self.state = "queued"
        self.error: str | None = None
        self.report: CampaignReport | None = None
        self.status: CampaignStatus | None = None
        self.reporter = None  # plan-derived ProgressReporter once running
        self.recorder = None  # per-campaign telemetry Recorder
        self.workers: list[str] | None = None  # remote fleet, if any
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def to_dict(self) -> dict:
        doc = {
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "store": self.store,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.report is not None:
            doc["report"] = _report_dict(self.report)
        if self.status is not None:
            doc["status"] = _status_dict(self.status)
        reporter = self.reporter
        if self.state == "running" and reporter is not None:
            doc["progress"] = reporter.snapshot()
        return doc


class CampaignService:
    """The daemon core: a FIFO job queue over one shared worker pool.

    ``slots`` runner threads pull jobs off the queue; each runs its
    campaign through the shared :class:`WorkerPool` (``jobs`` worker
    processes), so up to ``slots`` campaigns interleave their planned
    batches across the pool at any moment.  Per-campaign state —
    journal store, telemetry recorder, progress reporter — stays fully
    isolated; only executor capacity is shared.
    """

    def __init__(
        self,
        jobs: int = 2,
        slots: int = 2,
        spool: str | os.PathLike | None = None,
        metrics: bool = True,
        workers: list | None = None,
    ) -> None:
        self.pool = WorkerPool(jobs)
        self.slots = max(1, slots)
        self.spool = os.fspath(spool) if spool is not None else None
        self.metrics = metrics
        # Default remote worker fleet (``campaign serve --workers``):
        # served campaigns fan out to these endpoints instead of the
        # local pool; a submission's own "workers" list overrides.
        self.workers = [str(w) for w in workers] if workers else None
        self.started_at = time.time()
        self.accepting = True
        self._queue: "queue.Queue[CampaignJob | None]" = queue.Queue()
        self._jobs: dict[str, CampaignJob] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._seq = 0

    # -- lifecycle ----------------------------------------------------
    def start(self) -> None:
        for i in range(self.slots):
            thread = threading.Thread(
                target=self._slot_loop, name=f"campaign-slot-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, drain: bool = False) -> None:
        """Stop the service.

        ``drain=True`` finishes every queued job first (new submissions
        are already refused by the time this is called);
        ``drain=False`` interrupts running campaigns via ``should_stop``
        and terminates the pool — journals stay durable, interrupted
        campaigns resume by hash on resubmission.
        """
        self.accepting = False
        if not drain:
            self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        if not drain:
            # Kill live workers so interrupted campaigns unwind fast.
            self.pool.close(terminate=True)
        for thread in self._threads:
            thread.join()
        if drain:
            self.pool.close()
        self._flush_sidecars()

    def idle(self) -> bool:
        """No queued or running job (the drain-mode exit condition)."""
        with self._lock:
            return all(
                job.state in _TERMINAL_STATES for job in self._jobs.values()
            )

    def _flush_sidecars(self) -> None:
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            self._write_sidecar(job)

    def _write_sidecar(self, job: CampaignJob) -> None:
        if job.recorder is not None and job.store:
            try:
                job.recorder.write_sidecar(
                    f"{job.store}.metrics.json", label=job.label
                )
            except OSError:  # pragma: no cover — sidecar is advisory
                pass

    # -- submission ---------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> CampaignJob:
        """Validate one POST body, build its Campaign, and enqueue it."""
        if not self.accepting:
            raise RuntimeError("service is shutting down")
        with self._lock:
            self._seq += 1
            job_id = f"c{self._seq:04d}"
        store = payload.get("store")
        if store:
            store = os.path.abspath(os.fspath(store))
        elif self.spool:
            store = os.path.join(self.spool, f"{job_id}.jsonl")
        else:
            raise SubmissionError(
                "submission needs a 'store' path (service has no spool dir)"
            )
        if payload.get("contracts"):
            # Arm the runtime contract layer process-wide.  Workers
            # forked before this point only get the parent-side checks;
            # boot the daemon with --contracts for full worker coverage.
            from repro.engine import contracts

            contracts.activate()
        campaign = campaign_from_submission(payload, store, self.pool.workers)
        job = CampaignJob(job_id, campaign, payload)
        raw_workers = payload.get("workers", self.workers)
        if raw_workers:
            from repro.engine.remote import parse_workers

            try:
                parse_workers(raw_workers)
            except ValueError as exc:
                raise SubmissionError(str(exc)) from exc
            job.workers = [str(w) for w in raw_workers]
        with self._lock:
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._queue.put(job)
        return job

    def job(self, job_id: str) -> CampaignJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, store: str | None = None) -> list[CampaignJob]:
        """Jobs in submission order; ``store`` filters to one journal."""
        with self._lock:
            found = [self._jobs[job_id] for job_id in self._order]
        if store:
            wanted = os.path.abspath(store)
            found = [job for job in found if job.store == wanted]
        return found

    # -- execution ----------------------------------------------------
    def _slot_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if self._stop.is_set():
                job.state = "failed"
                job.error = "interrupted: service shut down before start"
                job.finished_at = time.time()
                continue
            self._run_job(job)

    def _run_job(self, job: CampaignJob) -> None:
        from repro.engine.scheduler import ProgressReporter

        job.state = "running"
        job.started_at = time.time()
        if self.metrics:
            from repro.engine.telemetry import Recorder

            job.recorder = Recorder()

        def reporter_factory(total: int, plan) -> ProgressReporter:
            job.reporter = ProgressReporter(
                total=total, label=job.label, plan=plan, stream=_Discard()
            )
            return job.reporter

        try:
            job.report = job.campaign.run(
                jobs=self.pool.workers,
                resume=job.resume,
                recorder=job.recorder,
                # A remote fleet replaces the local pool for this job
                # (Campaign.run ignores pool when workers are set).
                pool=None if job.workers else self.pool,
                should_stop=self._stop.is_set,
                reporter_factory=reporter_factory,
                workers=job.workers,
            )
            job.campaign.refresh()
            job.status = job.campaign.status()
            # "done" mirrors the CLI's green-ness: complete with no
            # terminal failures (or vacuously empty, exit 2).
            job.state = (
                "done" if job.status.exit_code() in (0, 2) else "failed"
            )
            if job.state == "failed":
                job.error = job.status.describe()
        except ExecutionStopped as exc:
            job.state = "failed"
            job.error = f"interrupted: {exc}"
            self._final_status(job)
        except Exception as exc:  # noqa: BLE001 — one job, not the daemon
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self._final_status(job)
        finally:
            job.finished_at = time.time()
            self._write_sidecar(job)

    def _final_status(self, job: CampaignJob) -> None:
        try:
            job.campaign.refresh()
            job.status = job.campaign.status()
        except Exception:  # pragma: no cover — status is advisory here
            pass

    # -- introspection ------------------------------------------------
    def health(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "accepting": self.accepting,
            "uptime_s": round(time.time() - self.started_at, 3),
            "pool_workers": self.pool.workers,
            "pool_generation": self.pool.generation,
            "slots": self.slots,
            "campaigns": states,
        }

    def metrics_document(self) -> dict:
        """The ``/metrics`` body: per-campaign telemetry sidecars
        namespaced by campaign id, plus service-level gauges and a
        top-level pool/worker section — local pool size and generation
        plus remote-fleet endpoint liveness and the latest observed
        per-worker utilization — so fleet health is observable from one
        endpoint."""
        doc: dict = {"schema": SERVICE_SCHEMA, "service": self.health()}
        doc["pool"] = {
            "workers": self.pool.workers,
            "generation": self.pool.generation,
            "slots": self.slots,
        }
        remote = self._remote_section()
        if remote is not None:
            doc["remote"] = remote
        campaigns = {}
        for job in self.jobs():
            entry: dict = {"label": job.label, "state": job.state}
            if job.workers:
                entry["workers"] = list(job.workers)
            if job.recorder is not None:
                entry["metrics"] = job.recorder.to_sidecar(label=job.label)
            campaigns[job.id] = entry
        doc["campaigns"] = campaigns
        return doc

    def _remote_section(self) -> dict | None:
        """Remote-fleet health: configured endpoints probed live, plus
        the most recent finished job's per-worker utilization info (the
        ``remote.workers`` recorder info, if any job ran remotely)."""
        endpoints: list[str] = list(self.workers or [])
        jobs = self.jobs()
        for job in jobs:
            for endpoint in job.workers or []:
                if endpoint not in endpoints:
                    endpoints.append(endpoint)
        if not endpoints:
            return None
        from repro.engine.remote import probe_worker

        section: dict = {
            "endpoints": [probe_worker(endpoint) for endpoint in endpoints]
        }
        for job in reversed(jobs):
            if job.recorder is None or not job.workers:
                continue
            info = (
                job.recorder.snapshot().get("volatile", {}).get("info", {})
            )
            utilization = info.get("remote.workers")
            if utilization:
                section["utilization"] = {
                    "job": job.id,
                    "workers": utilization,
                }
                break
        return section

    def results_text(self, job: CampaignJob, view: str = "summary") -> str:
        """Render one campaign's results (the ``/results`` endpoint).

        ``summary`` streams exactly the canonical grid-ordered JSONL
        that :meth:`Campaign.write_summary` writes — served bytes are
        comparable with a one-shot run's summary file byte-for-byte.
        """
        campaign = job.campaign
        campaign.refresh()
        if view == "summary":
            lines = campaign.store.summary_lines(campaign.specs)
            return "".join(line + "\n" for line in lines)
        if view == "table":
            return campaign.report_table() + "\n"
        if view == "aggregate":
            from repro.engine.aggregate import latency_table

            ok_results = [r for r in campaign.completed_results() if r.ok]
            table = None
            if job.label not in (None, "grid"):
                from repro.engine.registry import get_family

                try:
                    family = get_family(job.label)
                except KeyError:
                    family = None
                if family is not None and family.aggregate is not None:
                    table = family.aggregate(ok_results)
            if table is None:
                table = latency_table(ok_results)
            return table.format(
                title=f"campaign aggregate ({len(ok_results)} scenarios)"
            ) + "\n"
        raise SubmissionError(
            f"unknown results view {view!r} (summary, table, aggregate)"
        )


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: CampaignService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer

    # -- plumbing -----------------------------------------------------
    def log_message(self, *_args) -> None:  # silence per-request stderr
        pass

    def _send_json(self, code: int, doc: dict) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    @property
    def service(self) -> CampaignService:
        return self.server.service

    # -- routes -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, _, query = self.path.partition("?")
        params = {
            key: values[0]
            for key, values in urllib.parse.parse_qs(query).items()
        }
        try:
            if path == "/healthz":
                self._send_json(200, self.service.health())
            elif path == "/metrics":
                self._send_json(200, self.service.metrics_document())
            elif path == "/campaigns":
                jobs = self.service.jobs(store=params.get("store") or None)
                self._send_json(
                    200, {"campaigns": [job.to_dict() for job in jobs]}
                )
            elif path.startswith("/campaigns/"):
                parts = path.strip("/").split("/")
                job = self.service.job(parts[1])
                if job is None:
                    self._error(404, f"unknown campaign {parts[1]!r}")
                elif len(parts) == 2:
                    self._send_json(200, job.to_dict())
                elif len(parts) == 3 and parts[2] == "results":
                    view = params.get("view") or "summary"
                    self._send_text(
                        200, self.service.results_text(job, view)
                    )
                else:
                    self._error(404, f"unknown path {path!r}")
            else:
                self._error(404, f"unknown path {path!r}")
        except SubmissionError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — one request, not the daemon
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.partition("?")[0]
        if path != "/campaigns":
            self._error(404, f"unknown path {path!r}")
            return
        if not self.service.accepting:
            self._error(503, "service is shutting down (draining)")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise SubmissionError("submission body must be a JSON object")
            job = self.service.submit(payload)
        except (SubmissionError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))
        except RuntimeError as exc:
            self._error(503, str(exc))
        except Exception as exc:  # noqa: BLE001
            self._error(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(
                201, {"id": job.id, "store": job.store, "state": job.state}
            )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """An HTTP error from the daemon, with its status code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServiceClient:
    """A tiny stdlib HTTP client for the daemon (CLI + test harness)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None):
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8"))
            except (ValueError, AttributeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach daemon: {exc.reason}") from exc
        if ctype.startswith("application/json"):
            return json.loads(raw)
        return raw.decode("utf-8")

    # -- endpoints ----------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(self, payload: dict) -> dict:
        return self._request("POST", "/campaigns", body=payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/campaigns/{job_id}")

    def jobs(self, store: str | None = None) -> list[dict]:
        path = "/campaigns"
        if store:
            path += "?store=" + urllib.parse.quote(
                os.path.abspath(store), safe=""
            )
        return self._request("GET", path)["campaigns"]

    def results_text(self, job_id: str, view: str = "summary") -> str:
        return self._request(
            "GET", f"/campaigns/{job_id}/results?view={view}"
        )

    def wait(
        self,
        job_id: str,
        poll: float = 0.2,
        timeout: float | None = None,
        on_progress=None,
    ) -> dict:
        """Poll until the job is terminal; returns its final document."""
        deadline = time.monotonic() + timeout if timeout else None
        while True:
            doc = self.job(job_id)
            if doc["state"] in _TERMINAL_STATES:
                return doc
            if on_progress is not None and doc.get("progress"):
                on_progress(doc)
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    0, f"campaign {job_id} still {doc['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)


def daemon_url(explicit: str | None = None) -> str | None:
    """Resolve the daemon base URL: an explicit ``--connect`` value
    wins, else the ``REPRO_DAEMON`` environment variable."""
    return explicit or os.environ.get(DAEMON_ENV) or None


# ----------------------------------------------------------------------
# The serve loop (what `campaign serve` runs)
# ----------------------------------------------------------------------
def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 2,
    slots: int = 2,
    spool: str | os.PathLike | None = None,
    shutdown_after: float | None = None,
    port_file: str | os.PathLike | None = None,
    metrics: bool = True,
    stream=None,
    workers: list | None = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT (or ``shutdown_after``).

    Binds ``host:port`` (port 0 → ephemeral), announces the resolved
    URL on ``stream`` (default stderr) and optionally in ``port_file``
    (written atomically, so a watcher never reads a half line), then
    serves until told to stop.  Returns the process exit code: 0 for
    every clean shutdown path — an interrupt is *clean* because each
    journal is durable per-append and resumable by hash.
    """
    out = stream if stream is not None else sys.stderr
    service = CampaignService(
        jobs=jobs, slots=slots, spool=spool, metrics=metrics,
        workers=workers,
    )
    httpd = ServiceServer((host, port), service)
    actual_host, actual_port = httpd.server_address[:2]
    url = f"http://{actual_host}:{actual_port}"
    if port_file is not None:
        tmp = f"{os.fspath(port_file)}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(url + "\n")
        os.replace(tmp, port_file)
    print(f"campaign service listening on {url}", file=out, flush=True)

    exit_event = threading.Event()
    interrupted = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 — signal API
        interrupted.set()
        exit_event.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover — non-main thread (tests)
            pass

    service.start()
    http_thread = threading.Thread(
        target=httpd.serve_forever, name="campaign-http", daemon=True
    )
    http_thread.start()
    try:
        if shutdown_after is not None:
            # Drain mode: accept until the deadline, then refuse new
            # submissions and wait the queue dry.  The HTTP server keeps
            # answering status polls the whole time.  A signal during
            # the drain escalates to an interrupt.
            exit_event.wait(shutdown_after)
            if not interrupted.is_set():
                service.accepting = False
                print(
                    "shutdown-after reached: draining queue",
                    file=out, flush=True,
                )
                while not service.idle() and not interrupted.is_set():
                    exit_event.wait(0.1)
                    exit_event.clear()
        else:
            exit_event.wait()
        drain = shutdown_after is not None and not interrupted.is_set()
        print(
            "campaign service shutting down "
            + ("(drained)" if drain else "(interrupt: journals resumable)"),
            file=out, flush=True,
        )
        service.shutdown(drain=drain)
    finally:
        httpd.shutdown()
        http_thread.join()
        httpd.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
