"""Deterministic, seed-driven fault injection for the executor/store
recovery paths.

A :class:`FaultPlan` is a pure function of its seed: whether a fault
fires for a given scenario is decided by hashing ``(seed, kind,
scenario_id)`` against the plan's per-kind rate, so the *same plan
always picks the same victims* — which is what lets tests and smoke
legs assert that a faulted campaign reconverges to journals
byte-identical to the fault-free run.

Fault kinds (all optional, rates in ``[0, 1]`` per scenario):

* ``kill`` — the worker process hard-exits (``os._exit``) before the
  victim scenario runs, breaking the pool mid-chunk.  Exercises crash
  isolation, running-vs-queued attribution and singleton-split retry.
* ``stall`` — the worker sleeps past the fleet deadline before the
  victim runs.  Exercises straggler termination and deadline retry.
* ``transient`` — the worker raises :class:`InjectedFault` before the
  victim runs.  Exercises retriable-vs-terminal classification and
  bounded in-run retry.
* ``torn`` — the *parent's* journal append writes a truncated line with
  no trailing newline and dies, simulating a writer killed mid-write.
  Exercises torn-tail healing and resume-by-hash.
* ``drop_meta`` — the worker's telemetry snapshot is dropped from its
  return payload.  Exercises the parent's tolerance for missing meta.

Every fault fires **at most once per plan** via an append-only ledger
file (written with ``O_APPEND`` + ``os.write`` so the entry is durable
even when the very next statement is ``os._exit``): the first run hits
the fault, the retry/resume does not, and the campaign must converge.
Without a ledger the plan fires on every encounter (useful for
unit-testing a single fault path).

Activation mirrors :mod:`repro.engine.contracts`: the plan is carried
in the ``REPRO_FAULTS`` environment variable as JSON so spawned pool
workers inherit it; :func:`active_plan` memoizes the decode.  With the
variable unset every hook is one dict lookup — zero-cost off.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, replace

FAULTS_ENV = "REPRO_FAULTS"

#: Worker-side fault kinds (fire only in pool workers, never the parent).
_WORKER_KINDS = ("kill", "stall", "transient")


class InjectedFault(RuntimeError):
    """Raised by an active fault plan (transient worker failures and the
    parent-side torn-write crash simulation)."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault campaign.  See module docstring."""

    seed: int
    kill: float = 0.0
    stall: float = 0.0
    transient: float = 0.0
    torn: float = 0.0
    drop_meta: float = 0.0
    #: How long a stalled worker sleeps — choose it >> the campaign
    #: ``--timeout`` so the stall reliably trips the fleet deadline.
    stall_s: float = 30.0
    #: Once-only ledger path (``None``: faults fire on every encounter).
    ledger: str | None = None
    #: Pid of the campaign parent — worker faults fire only in other
    #: processes, so serial in-process runs are never killed.
    parent_pid: int = 0

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_seed(cls, seed: int, **rates) -> "FaultPlan":
        return cls(seed=int(seed), parent_pid=os.getpid(), **rates)

    @classmethod
    def parse(cls, text: str, ledger: str | None = None) -> "FaultPlan":
        """Build a plan from the CLI's ``k=v[,k=v...]`` spec, e.g.
        ``"seed=11,kill=0.2,torn=0.1"``."""
        fields = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec {part!r}: expected key=value"
                )
            key, value = part.split("=", 1)
            key = key.strip()
            if key == "seed":
                fields[key] = int(value)
            elif key in (*_WORKER_KINDS, "torn", "drop_meta", "stall_s"):
                fields[key] = float(value)
            elif key == "ledger":
                fields[key] = value.strip()
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        if "seed" not in fields:
            raise ValueError("fault spec needs a seed=N entry")
        if ledger is not None and "ledger" not in fields:
            fields["ledger"] = ledger
        return cls.from_seed(**fields)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls(**json.loads(text))

    def install(self) -> "FaultPlan":
        """Publish this plan to the environment (workers inherit it) and
        make it this process's active plan."""
        global _CACHE
        plan = self if self.parent_pid else replace(
            self, parent_pid=os.getpid()
        )
        raw = plan.to_json()
        os.environ[FAULTS_ENV] = raw
        _CACHE = (raw, plan)
        return plan

    # ------------------------------------------------------------------
    # Victim selection (pure)
    # ------------------------------------------------------------------
    def wants(self, kind: str, scenario_id: str) -> bool:
        """Whether this plan targets ``scenario_id`` with ``kind`` —
        a pure function of ``(seed, kind, scenario_id)``."""
        rate = getattr(self, kind if kind != "drop" else "drop_meta")
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{scenario_id}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < rate

    def victims(self, kind: str, scenario_ids) -> list[str]:
        """The (deterministic) subset of ids the plan targets — lets
        tests and smoke legs pick seeds with known victim counts."""
        return [sid for sid in scenario_ids if self.wants(kind, sid)]

    # ------------------------------------------------------------------
    # Once-only ledger
    # ------------------------------------------------------------------
    def _fired(self, key: str) -> bool:
        if self.ledger is None or not os.path.exists(self.ledger):
            return False
        with open(self.ledger, "r", encoding="utf-8") as fh:
            return any(line.strip() == key for line in fh)

    def _record(self, key: str) -> None:
        if self.ledger is None:
            return
        # O_APPEND + one os.write: atomic enough that the entry lands
        # even when the very next statement is os._exit().
        fd = os.open(
            self.ledger, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, (key + "\n").encode())
        finally:
            os.close(fd)

    def claim(self, kind: str, scenario_id: str) -> bool:
        """True exactly once per ``(kind, scenario_id)`` the plan
        targets: checks the rate, then the ledger, then records."""
        if not self.wants(kind, scenario_id):
            return False
        key = f"{kind}:{scenario_id}"
        if self._fired(key):
            return False
        self._record(key)
        return True


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_CACHE: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The process's active plan, decoded (memoized) from the
    environment — ``None`` when fault injection is off."""
    global _CACHE
    raw = os.environ.get(FAULTS_ENV)
    if raw == _CACHE[0]:
        return _CACHE[1]
    plan = FaultPlan.from_json(raw) if raw else None
    _CACHE = (raw, plan)
    return plan


def clear() -> None:
    """Remove any active plan (tests)."""
    global _CACHE
    os.environ.pop(FAULTS_ENV, None)
    _CACHE = (None, None)


# ----------------------------------------------------------------------
# Hooks (called from the executor and store hot paths; one dict lookup
# when no plan is active)
# ----------------------------------------------------------------------
def before_scenario(spec) -> None:
    """Worker-side hook, called before each scenario executes.  Fires
    the plan's kill/stall/transient faults — only in pool workers, never
    in the campaign parent."""
    plan = active_plan()
    if plan is None:
        return
    if os.getpid() == plan.parent_pid:
        return
    if not (plan.kill or plan.stall or plan.transient):
        return
    sid = spec.scenario_id
    if plan.claim("kill", sid):
        # Hard worker death mid-chunk: no cleanup, no exception — the
        # pool's broken-pool protocol is the only witness.
        os._exit(17)
    if plan.claim("stall", sid):
        time.sleep(plan.stall_s)
    if plan.claim("transient", sid):
        raise InjectedFault(
            f"injected transient worker failure before {sid}"
        )


def torn_append(result) -> bool:
    """Parent-side hook, called by :meth:`ResultStore.append`.  True when
    the plan wants this journal append torn (the store then writes a
    truncated, newline-less line and raises :class:`InjectedFault`)."""
    plan = active_plan()
    if plan is None or not plan.torn:
        return False
    return plan.claim("torn", result.scenario_id)


def drop_worker_meta(chunk) -> bool:
    """Worker-side hook: whether this unit's telemetry snapshot should be
    dropped from the return payload (keyed on the unit's first id)."""
    plan = active_plan()
    if plan is None or not plan.drop_meta or not chunk:
        return False
    first = chunk[0]
    spec = first[1] if isinstance(first, tuple) else first
    return plan.claim("drop", spec.scenario_id)
