"""Zero-cost-off runtime contracts for the engine's purity invariants.

The engine's correctness story is a web of *pure-function* contracts —
adversary ``adjacency_stack`` block fetches are pure in ``(count,
start)``, the batch scheduler's plan is a pure function of the work
list, a compacted batch lane is bit-identical to a singleton run,
canonical summaries are backend-free, and the telemetry recorder's
deterministic plane merges commutatively.  Historically those are
enforced only by fixed test suites; this module makes them *runtime
checkable* so a fuzz campaign (or any paranoid production run) can
validate them against live workloads.

Design mirrors :mod:`repro.engine.telemetry` exactly:

* :data:`NO_CONTRACTS` is a falsy singleton — every call site guards
  with ``if contracts:`` (or the :func:`contract` decorator resolves
  the active instance per call), so the *off* path costs one truthiness
  check and nothing else.  Journal and summary bytes are identical with
  contracts on or off: checks re-derive and compare, they never mutate.
* Enabled via ``REPRO_CONTRACTS=1`` in the environment (inherited by
  pool workers) or ``campaign run --contracts`` (which sets the env
  var before the pool spawns).
* A violation raises :class:`ContractViolation` carrying a minimal,
  structured repro — contract name, spec id/seed, backend, batch shape
  — that survives pickling across the process-pool boundary and is
  re-raised past every blanket isolation handler, so it aborts the run
  loudly instead of becoming an ``"error"`` journal record.

Checks that re-run work (block re-fetch, re-plan, singleton lane
re-execution) are *sampled* through :meth:`Contracts.sample` so the
contracts-on overhead stays bounded; the first occurrence of every
checkpoint is always validated.
"""

from __future__ import annotations

import functools
import json
import os
from contextlib import contextmanager
from typing import Any, Callable

import numpy as np

CONTRACTS_ENV = "REPRO_CONTRACTS"

#: Validate every Nth occurrence of a sampled checkpoint (the first is
#: always validated).  Small enough to catch drift within one campaign,
#: large enough that contracts-on runs stay usable.
SAMPLE_EVERY = 8


class ContractViolation(AssertionError):
    """A runtime contract was violated.

    Carries a structured ``repro`` dict (spec id, seed, backend, batch
    shape, …) so the violation prints as a minimal reproduction recipe.
    Subclasses :class:`AssertionError` (it *is* a failed assertion) but
    is deliberately re-raised past the engine's blanket isolation
    handlers: a violated invariant means results can no longer be
    trusted, so the run must abort rather than journal an error record.
    """

    def __init__(
        self,
        contract: str,
        detail: str,
        repro: dict | None = None,
    ) -> None:
        self.contract = contract
        self.detail = detail
        self.repro = dict(repro or {})
        super().__init__(self._message())

    def _message(self) -> str:
        text = f"contract violated [{self.contract}]: {self.detail}"
        if self.repro:
            text += " | repro: " + json.dumps(
                self.repro, sort_keys=True, default=str
            )
        return text

    def with_context(self, **context: Any) -> "ContractViolation":
        """A copy enriched with outer-layer repro context.

        Existing keys win — the innermost frame knows the most precise
        value (e.g. the exact lane), outer frames only add what is
        missing (backend, batch shape, spec id).
        """
        merged = {**context, **self.repro}
        return ContractViolation(self.contract, self.detail, merged)

    def __reduce__(self):
        # Survive the pool's pickling round-trip with structure intact.
        return (ContractViolation, (self.contract, self.detail, self.repro))


class NullContracts:
    """The do-nothing contracts object (mirrors ``telemetry.NullRecorder``).

    Falsy, so hot paths guard with ``if contracts:`` and skip even
    argument construction when contracts are off.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def sample(self, name: str) -> bool:
        return False

    def check_block_fetch(self, provider, count, start, fetched,
                          context=None) -> None:
        pass

    def check_plan(self, plan, replan, context=None) -> None:
        pass

    def check_split_partition(self, batch, halves, context=None) -> None:
        pass

    def check_lane_identity(self, expected, actual, context=None) -> None:
        pass

    def check_canonical_backend_free(self, line_a, line_b,
                                     context=None) -> None:
        pass

    def check_merge_commutative(self, snapshots, context=None) -> None:
        pass

    def check_shard_merge(self, expected_ids, delivered_ids,
                          context=None) -> None:
        pass


NO_CONTRACTS = NullContracts()


class Contracts:
    """The live contract checker: sampled re-derive-and-compare checks.

    One instance per process; pool workers build their own from the
    inherited ``REPRO_CONTRACTS`` environment (see :func:`get`).
    ``violations`` stays 0 on a healthy run — the first violation
    raises, so the counter only ever reads 0 or records the raise site
    for post-mortem tooling that catches the exception.
    """

    def __init__(self, sample_every: int = SAMPLE_EVERY) -> None:
        self.sample_every = max(1, int(sample_every))
        self.checks = 0
        self.violations = 0
        self._counts: dict[str, int] = {}

    def __bool__(self) -> bool:
        return True

    def sample(self, name: str) -> bool:
        """Whether this occurrence of checkpoint ``name`` is validated.

        Deterministic per process: the first occurrence and every
        ``sample_every``-th after it."""
        seen = self._counts.get(name, 0)
        self._counts[name] = seen + 1
        return seen % self.sample_every == 0

    def _raise(self, contract: str, detail: str, repro: dict) -> None:
        self.violations += 1
        raise ContractViolation(contract, detail, repro)

    # ------------------------------------------------------------------
    # The named invariants
    # ------------------------------------------------------------------
    def check_block_fetch(
        self,
        provider: Callable[[int, int], Any],
        count: int,
        start: int,
        fetched: np.ndarray,
        context: dict | None = None,
    ) -> None:
        """Adversary block-fetch purity: ``provider(count, start)`` must
        be a pure function of ``(count, start)`` — re-fetching the same
        block must return a bit-identical adjacency stack.  (This is the
        invariant that makes lane compaction, batch splitting and resume
        sound: a lane re-run anywhere replays the same schedule.)
        """
        self.checks += 1
        again = np.asarray(provider(count, start), dtype=bool)
        expected = np.asarray(fetched, dtype=bool)
        if again.shape != expected.shape or not np.array_equal(
            again, expected
        ):
            diff = (
                "shape changed"
                if again.shape != expected.shape
                else f"{int(np.sum(again != expected))} cells differ"
            )
            self._raise(
                "adversary.block_fetch_purity",
                f"re-fetching adjacency block (count={count}, "
                f"start={start}) returned a different stack ({diff})",
                {"count": count, "start": start, **(context or {})},
            )

    def check_plan(
        self,
        plan: Any,
        replan: Callable[[], Any],
        context: dict | None = None,
    ) -> None:
        """Scheduler plan determinism: re-planning the identical work
        list under the identical envelope must reproduce the plan."""
        self.checks += 1
        again = replan()
        if again != plan:
            self._raise(
                "scheduler.plan_determinism",
                "re-planning the same work list produced a different "
                "plan",
                {
                    "plan": getattr(plan, "describe", lambda: repr(plan))(),
                    "replan": getattr(
                        again, "describe", lambda: repr(again)
                    )(),
                    **(context or {}),
                },
            )

    def check_split_partition(
        self,
        batch: Any,
        halves: tuple,
        context: dict | None = None,
    ) -> None:
        """Steal-split partition purity: cutting a planned batch must
        exactly partition its lane list (order preserved, nothing
        duplicated or dropped) while both halves keep the parent's
        tensor width and kernel envelope.  This is the invariant that
        keeps work stealing out of journal bytes: every lane still runs
        its exact per-scenario program, just on a different worker."""
        self.checks += 1
        rejoined = tuple(item for half in halves for item in half.items)
        same_shape = all(
            half.n == batch.n
            and half.bucket == batch.bucket
            and half.width == batch.width
            and half.lanes >= 1
            for half in halves
        )
        if rejoined != tuple(batch.items) or not same_shape:
            self._raise(
                "executor.steal_split_partition",
                "splitting a planned batch did not partition its lanes "
                "(or changed the tensor envelope)",
                {
                    "batch_lanes": batch.lanes,
                    "half_lanes": [half.lanes for half in halves],
                    "n": batch.n,
                    "bucket": batch.bucket,
                    **(context or {}),
                },
            )

    def check_lane_identity(
        self,
        expected: dict,
        actual: dict,
        context: dict | None = None,
    ) -> None:
        """Lane-compaction result identity: a sampled lane of a batched
        (possibly compacted) kernel run must be bit-identical to the
        same task executed as a singleton.  ``expected``/``actual`` are
        field dicts; array values compare with ``np.array_equal``."""
        self.checks += 1
        for name in sorted(set(expected) | set(actual)):
            a, b = expected.get(name), actual.get(name)
            same = (
                np.array_equal(a, b)
                if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
                else a == b
            )
            if not same:
                self._raise(
                    "backends.lane_identity",
                    f"batched lane field {name!r} differs from the "
                    f"singleton run (singleton={a!r}, batched={b!r})",
                    context or {},
                )

    def check_canonical_backend_free(
        self,
        line_a: str,
        line_b: str,
        context: dict | None = None,
    ) -> None:
        """Canonical-summary backend-freeness: the canonical record of a
        result must not depend on which backend produced it."""
        self.checks += 1
        if line_a != line_b:
            self._raise(
                "store.canonical_backend_free",
                "canonical summary line depends on the producing "
                "backend",
                context or {},
            )

    def check_merge_commutative(
        self,
        snapshots: list[dict],
        context: dict | None = None,
    ) -> None:
        """Telemetry det-plane merge commutativity: merging the workers'
        snapshots in any order must yield the same deterministic plane
        (that plane is the live form of the invariance contracts, so an
        order-dependent merge would silently unpin them)."""
        if len(snapshots) < 2:
            return
        self.checks += 1
        from repro.engine.telemetry import Recorder

        forward, backward = Recorder(), Recorder()
        for snap in snapshots:
            forward.merge(snap)
        for snap in reversed(snapshots):
            backward.merge(snap)
        det_fwd = forward.snapshot()["deterministic"]
        det_bwd = backward.snapshot()["deterministic"]
        if det_fwd != det_bwd:
            self._raise(
                "telemetry.merge_commutativity",
                "worker snapshot merge is order-dependent on the "
                "deterministic plane",
                {"snapshots": len(snapshots), **(context or {})},
            )

    def check_shard_merge(
        self,
        expected_ids: list[str],
        delivered_ids: list[str],
        context: dict | None = None,
    ) -> None:
        """Distributed shard-merge determinism: the coordinator must
        deliver results in exactly the canonical plan order — the order
        a serial single-host run journals in — whatever the worker
        count, completion order, or retry history.  ``expected_ids`` is
        the plan-order scenario-id sequence, ``delivered_ids`` the
        order results actually reached the journal callback."""
        self.checks += 1
        if list(expected_ids) != list(delivered_ids):
            first = next(
                (
                    i
                    for i, (a, b) in enumerate(
                        zip(expected_ids, delivered_ids)
                    )
                    if a != b
                ),
                min(len(expected_ids), len(delivered_ids)),
            )
            self._raise(
                "remote.shard_merge_order",
                f"merged delivery order diverges from plan order at "
                f"position {first} "
                f"(expected {len(expected_ids)} results, "
                f"delivered {len(delivered_ids)})",
                {"position": first, **(context or {})},
            )


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_ACTIVE: Contracts | NullContracts | None = None


def enabled() -> bool:
    """Whether the environment asks for contracts (workers inherit it)."""
    return os.environ.get(CONTRACTS_ENV, "") not in ("", "0")


def get() -> Contracts | NullContracts:
    """The process's active contracts object (memoized; falsy when off)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Contracts() if enabled() else NO_CONTRACTS
    return _ACTIVE


def activate() -> Contracts:
    """Turn contracts on for this process *and* its future pool workers
    (sets ``REPRO_CONTRACTS=1`` so spawned workers inherit it)."""
    global _ACTIVE
    os.environ[CONTRACTS_ENV] = "1"
    _ACTIVE = Contracts()
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    os.environ.pop(CONTRACTS_ENV, None)
    _ACTIVE = NO_CONTRACTS


@contextmanager
def contracts_enabled():
    """Enable contracts for a ``with`` block (tests), restoring the
    previous process state on exit."""
    global _ACTIVE
    prev_active = _ACTIVE
    prev_env = os.environ.get(CONTRACTS_ENV)
    try:
        yield activate()
    finally:
        _ACTIVE = prev_active
        if prev_env is None:
            os.environ.pop(CONTRACTS_ENV, None)
        else:
            os.environ[CONTRACTS_ENV] = prev_env


# ----------------------------------------------------------------------
# The @contract decorator (pymor idiom: debug-validated, zero-cost off)
# ----------------------------------------------------------------------
def contract(
    pre: Callable[..., bool] | None = None,
    post: Callable[..., bool] | None = None,
):
    """Attach runtime-checkable pre/post-conditions to a function.

    ``pre`` receives the call's ``(*args, **kwargs)``; ``post`` receives
    ``(result, *args, **kwargs)``.  Both return a truthy value when the
    condition holds (or raise :class:`ContractViolation` themselves with
    a richer repro).  When contracts are off the wrapper costs one
    memoized lookup and a truthiness check — conditions never run.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            active = get()
            if not active:
                return fn(*args, **kwargs)
            if pre is not None:
                _evaluate(active, fn, "pre", pre, args, kwargs)
            result = fn(*args, **kwargs)
            if post is not None:
                _evaluate(active, fn, "post", post, (result, *args), kwargs)
            return result

        return wrapper

    return decorate


def _evaluate(active, fn, phase, condition, args, kwargs) -> None:
    active.checks += 1
    try:
        ok = condition(*args, **kwargs)
    except ContractViolation:
        active.violations += 1
        raise
    except Exception as exc:  # noqa: BLE001 — condition bugs surface too
        active.violations += 1
        raise ContractViolation(
            f"{fn.__qualname__}.{phase}",
            f"condition raised {type(exc).__name__}: {exc}",
        ) from exc
    if not ok:
        active.violations += 1
        raise ContractViolation(
            f"{fn.__qualname__}.{phase}", "condition returned a falsy value"
        )
