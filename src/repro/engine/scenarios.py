"""The scenario grid DSL.

A *scenario* is one fully specified simulation: which algorithm, which
adversary, every parameter either fixes, and the analysis contract ``k`` it
is judged against.  :class:`ScenarioSpec` freezes all of that into an
immutable value with a **stable content-hash id** — two specs with the same
parameters have the same id in every process on every machine, which is
what makes campaigns resumable and parallel execution deterministic.

A *grid* is a declarative cartesian product over scenario axes:

>>> grid = ScenarioGrid(
...     n=[6, 9, 12],
...     k=[2, 3],
...     num_groups=[1, 2, 3],
...     seed=range(10),
...     noise=[0.0, 0.15],
...     where=[lambda s: s["k"] < s["n"], lambda s: s["num_groups"] <= s["k"]],
... )
>>> specs = grid.expand()

Expansion order is canonical (axis declaration is irrelevant; the field
order of :class:`ScenarioSpec` is what counts), so a grid always enumerates
the same specs in the same order — the campaign layer relies on this to
produce byte-identical summaries regardless of worker count.

Unknown axis names become *options*: free-form algorithm/adversary knobs
(``f`` for crash counts, ``horizon`` for the LocalMin baseline,
``purge_window`` / ``prune_unreachable`` for Algorithm 1's design knobs,
``quiet_period`` for the grouped adversary, ...).  They participate in the
content hash like every other field.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.adversaries.base import Adversary
from repro.adversaries.crash import CrashAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.baselines.async_kset import make_async_kset_processes
from repro.baselines.flooding import make_flooding_processes
from repro.baselines.floodmin import make_floodmin_processes
from repro.baselines.local_min import make_local_min_processes
from repro.core.algorithm import make_processes

Options = tuple[tuple[str, Any], ...]
Constraint = Callable[[Mapping[str, Any]], bool]


@dataclass(frozen=True)
class ScenarioSpec:
    """One immutable, content-addressed simulation scenario.

    Attributes
    ----------
    algorithm:
        Key into :data:`ALGORITHMS` — which process vector to run.
    adversary:
        Key into :data:`ADVERSARIES` — which network model to run against.
    n:
        Number of processes.
    k:
        The agreement contract the run is judged against (``Psrcs(k)``
        check, k-agreement bound).
    num_groups:
        Group count for the grouped-source adversary (ignored by others).
    seed:
        Base RNG seed; every scenario is a pure function of its spec.
    noise:
        Transient-edge probability (grouped adversary).
    topology:
        Intra-group topology (grouped adversary).
    max_rounds:
        Hard round cap; ``None`` means the algorithm-specific default
        (Lemma-11-generous ``6n + 20`` for Algorithm 1, ``80`` for the
        fixed-horizon baselines).
    options:
        Sorted ``(name, value)`` pairs of free-form knobs; values must be
        JSON scalars.  Use :meth:`opt` to read them.
    """

    n: int
    k: int = 1
    num_groups: int = 1
    seed: int = 0
    noise: float = 0.0
    topology: str = "cycle"
    algorithm: str = "algorithm1"
    adversary: str = "grouped"
    max_rounds: int | None = None
    options: Options = ()

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS or self.adversary not in ADVERSARIES:
            # Experiment families register extra algorithms/adversaries at
            # import time; make sure they have had the chance before
            # rejecting a name (decoding a figure1/duality journal record
            # must work without the caller pre-importing the family).
            _load_family_registrations()
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"known: {sorted(ALGORITHMS)}"
            )
        if self.adversary not in ADVERSARIES:
            raise ValueError(
                f"unknown adversary {self.adversary!r}; "
                f"known: {sorted(ADVERSARIES)}"
            )
        canonical = tuple(sorted((str(k), v) for k, v in self.options))
        if canonical != self.options:
            object.__setattr__(self, "options", canonical)

    # ------------------------------------------------------------------
    def opt(self, name: str, default: Any = None) -> Any:
        """Read a free-form option by name."""
        for key, value in self.options:
            if key == name:
                return value
        return default

    def with_options(self, **extra: Any) -> "ScenarioSpec":
        """A copy with additional/overridden options."""
        merged = dict(self.options)
        merged.update(extra)
        return replace(self, options=tuple(sorted(merged.items())))

    # ------------------------------------------------------------------
    @property
    def scenario_id(self) -> str:
        """Stable content hash (12 hex chars) of the canonical dict form.

        Independent of process, machine and ``PYTHONHASHSEED`` — the
        resume key of the result store.  Numerically equal values hash
        equal: ``noise=0`` and ``noise=0.0`` are the same spec (dataclass
        equality) and must be the same scenario (integer-valued floats
        are canonicalized to ints before hashing).
        """
        payload = json.dumps(
            _canonical_json(self.to_dict()),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def to_dict(self) -> dict:
        """JSON-friendly canonical form (inverse of :meth:`from_dict`)."""
        return {
            "algorithm": self.algorithm,
            "adversary": self.adversary,
            "n": self.n,
            "k": self.k,
            "num_groups": self.num_groups,
            "seed": self.seed,
            "noise": self.noise,
            "topology": self.topology,
            "max_rounds": self.max_rounds,
            "options": {k: v for k, v in self.options},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)} - {"options"}
        kwargs = {k: v for k, v in data.items() if k in known}
        options = dict(data.get("options", {}))
        return cls(**kwargs, options=tuple(sorted(options.items())))

    # ------------------------------------------------------------------
    def resolved_max_rounds(self) -> int:
        """The effective round cap (see :attr:`max_rounds`)."""
        if self.max_rounds is not None:
            return self.max_rounds
        if self.algorithm == "algorithm1":
            return 6 * self.n + 20
        return 80

    def build_adversary(self) -> Adversary:
        """Instantiate the adversary this spec names."""
        return ADVERSARIES[self.adversary](self)

    def build_processes(self) -> list:
        """Instantiate the process vector this spec names."""
        return ALGORITHMS[self.algorithm](self)


def _canonical_json(value: Any) -> Any:
    """Normalize a JSON-ready value for hashing: integer-valued floats
    become ints (``0.0`` → ``0``) so that specs that compare equal hash
    equal; containers are normalized recursively."""
    if isinstance(value, dict):
        return {k: _canonical_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_json(v) for v in value]
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


# ----------------------------------------------------------------------
# Registries.  Builders receive the full spec so any option can matter.
# ----------------------------------------------------------------------
def _build_grouped(spec: ScenarioSpec) -> Adversary:
    return GroupedSourceAdversary(
        spec.n,
        num_groups=spec.num_groups,
        seed=spec.seed,
        noise=spec.noise,
        quiet_period=spec.opt("quiet_period", 5),
        topology=spec.topology,
    )


def _build_partition(spec: ScenarioSpec) -> Adversary:
    # ``k_env`` lets the environment's partition level differ from the
    # contract k the run is judged against (BASELINE(b) does exactly this).
    return PartitionAdversary(spec.n, spec.opt("k_env", spec.k))


def _build_crash(spec: ScenarioSpec) -> Adversary:
    # The classic staggered schedule: process i crashes in round i+1.
    f = spec.opt("f", 1)
    crash_rounds = {i + 1: i + 1 for i in range(f)}
    return CrashAdversary(spec.n, crash_rounds, seed=spec.seed)


def _build_static(spec: ScenarioSpec) -> Adversary:
    # A seeded random strongly connected graph played in every round
    # (``G^r = G^∩∞`` for all r) — the perpetually synchronous corner of
    # the scenario space; ``noise`` is the extra-edge density.
    import numpy as np

    from repro.adversaries.static import StaticAdversary
    from repro.graphs.generators import random_strongly_connected

    rng = np.random.default_rng([spec.seed, spec.n])
    return StaticAdversary(
        spec.n, random_strongly_connected(spec.n, spec.noise, rng)
    )


ADVERSARIES: dict[str, Callable[[ScenarioSpec], Adversary]] = {
    "grouped": _build_grouped,
    "partition": _build_partition,
    "crash": _build_crash,
    "static": _build_static,
}


def _load_family_registrations() -> None:
    """Import the registered experiment families (idempotent), giving
    them the chance to :func:`register_adversary`/:func:`register_algorithm`
    before an unknown name is rejected.  Lazy to keep this module free of
    an import cycle with :mod:`repro.engine.registry`."""
    from repro.engine.registry import load_families

    load_families()


def register_adversary(
    name: str, builder: Callable[["ScenarioSpec"], Adversary]
) -> None:
    """Register an extra adversary name (experiment-family extension
    point; the builder receives the full spec so any option can matter)."""
    ADVERSARIES[name] = builder


def register_algorithm(
    name: str, builder: Callable[["ScenarioSpec"], list]
) -> None:
    """Register an extra algorithm name (experiment-family extension
    point)."""
    ALGORITHMS[name] = builder

ALGORITHMS: dict[str, Callable[[ScenarioSpec], list]] = {
    "algorithm1": lambda s: make_processes(
        s.n,
        purge_window=s.opt("purge_window"),
        prune_unreachable=s.opt("prune_unreachable", True),
    ),
    "floodmin": lambda s: make_floodmin_processes(
        s.n, f=s.opt("f", 1), k=s.k
    ),
    "flooding": lambda s: make_flooding_processes(s.n, f=s.opt("f", 1)),
    "local_min": lambda s: make_local_min_processes(
        s.n, horizon=s.opt("horizon", 2)
    ),
    "async_kset": lambda s: make_async_kset_processes(s.n, f=s.opt("f", 0)),
}


# ----------------------------------------------------------------------
# The grid DSL
# ----------------------------------------------------------------------
_FIELD_ORDER = [f.name for f in fields(ScenarioSpec) if f.name != "options"]


@dataclass(frozen=True)
class ScenarioGrid:
    """A declarative cartesian product of scenario axes.

    Every keyword is an axis: a scalar pins the axis to one value, a
    sequence enumerates it.  Known :class:`ScenarioSpec` field names bind
    to fields; anything else becomes a free-form option.  ``where``
    constraints (each a ``dict -> bool`` callable over the raw combo)
    prune infeasible corners *before* specs are built.

    Grids are values: hashable-by-content via :meth:`expand` and
    composable with :func:`expand_grids`.
    """

    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    where: tuple[Constraint, ...] = field(default=(), compare=False)

    def __init__(
        self,
        where: Iterable[Constraint] = (),
        **axes: Any,
    ) -> None:
        normalized = []
        for name, values in axes.items():
            # Strings are scalars; every other iterable (list, range,
            # generator, ...) enumerates the axis.
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Iterable
            ):
                values = (values,)
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            normalized.append((name, values))
        # Canonical expansion order: spec fields first (in declaration
        # order), then options alphabetically — independent of the order
        # the caller wrote the axes in.
        def sort_key(item: tuple[str, tuple]) -> tuple:
            name = item[0]
            if name in _FIELD_ORDER:
                return (0, _FIELD_ORDER.index(name), name)
            return (1, 0, name)

        object.__setattr__(self, "axes", tuple(sorted(normalized, key=sort_key)))
        object.__setattr__(self, "where", tuple(where))

    # ------------------------------------------------------------------
    def expand(self) -> list[ScenarioSpec]:
        """All feasible specs, in canonical grid order."""
        names = [name for name, _ in self.axes]
        if "n" not in names:
            raise ValueError("a grid needs an 'n' axis")
        specs: list[ScenarioSpec] = []
        for combo in itertools.product(*(vals for _, vals in self.axes)):
            raw = dict(zip(names, combo))
            if not all(pred(raw) for pred in self.where):
                continue
            field_kwargs = {k: v for k, v in raw.items() if k in _FIELD_ORDER}
            options = tuple(
                sorted(
                    (k, v) for k, v in raw.items() if k not in _FIELD_ORDER
                )
            )
            specs.append(ScenarioSpec(**field_kwargs, options=options))
        return specs

    def __len__(self) -> int:
        return len(self.expand())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON form (constraints are not serializable and are dropped)."""
        return {"axes": {name: list(vals) for name, vals in self.axes}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGrid":
        return cls(**dict(data.get("axes", {})))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioGrid":
        """Parse a grid from a JSON object ``{"axes": {...}}``."""
        return cls.from_dict(json.loads(text))


def expand_grids(grids: Iterable[ScenarioGrid]) -> list[ScenarioSpec]:
    """Union of several grids: concatenated expansion, deduplicated by
    scenario id, first occurrence wins (order-preserving)."""
    seen: set[str] = set()
    specs: list[ScenarioSpec] = []
    for grid in grids:
        for spec in grid.expand():
            sid = spec.scenario_id
            if sid not in seen:
                seen.add(sid)
                specs.append(spec)
    return specs


# ----------------------------------------------------------------------
# Canonical grids for the standing experiment families
# ----------------------------------------------------------------------
def agreement_grid(
    ns: Sequence[int],
    ks: Sequence[int],
    seeds: Sequence[int],
    noises: Sequence[float] = (0.15,),
    topology: str = "cycle",
) -> ScenarioGrid:
    """ALG-AGREE / THM1: every ``(n, k, seed)`` with every feasible group
    count ``m <= k`` (the same expansion as the historical
    ``agreement_sweep``, now declarative)."""
    max_groups = max(ks) if ks else 1
    return ScenarioGrid(
        n=ns,
        k=ks,
        num_groups=range(1, max_groups + 1),
        seed=seeds,
        noise=noises,
        topology=topology,
        where=[
            lambda s: s["k"] < s["n"],
            lambda s: s["num_groups"] <= min(s["k"], s["n"]),
        ],
    )


def termination_grid(
    ns: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    num_groups: int = 2,
) -> list[ScenarioSpec]:
    """ALG-TERM: decision latency vs Lemma 11's bound across system sizes.

    Mirrors the historical ``termination_sweep`` exactly: the group count
    is *clamped* per system size (``k = m = min(num_groups, n)``), never
    dropped — a single grid cannot express a per-``n`` clamp, so this is
    a union of one-``n`` grids and returns the expanded specs."""
    return expand_grids(
        ScenarioGrid(
            n=[n],
            k=[min(num_groups, n)],
            num_groups=[min(num_groups, n)],
            seed=seeds,
            noise=noise,
            topology="cycle",
        )
        for n in ns
    )
