"""The experiment registry: every experiment family as one declarative spec.

Historically each experiment family (`figure1`, `theorem2`, the agreement
and termination sweeps, `ablation`, `duality`, `eventual`, the latency
distributions) carried its own in-process driver loop — its own iteration
order, its own error handling, its own aggregation.  The registry replaces
all of that with one abstraction:

    an :class:`ExperimentSpec` = name + scenario-grid builder +
    per-scenario runner + row schema + aggregator.

Every family is a ~50-line configuration of the campaign engine, and every
family therefore gets the engine's whole feature set for free: ``--jobs N``
parallelism, resume-by-hash journaling, crash isolation,
``--backend {reference,vectorized,auto}``, canonical byte-identical
summaries, and store-native aggregation via :mod:`repro.engine.aggregate`.

How a family plugs in
---------------------
* The family module builds :class:`~repro.engine.scenarios.ScenarioSpec`
  grids.  Extra algorithms/adversaries are added through
  :func:`repro.engine.scenarios.register_algorithm` /
  ``register_adversary`` at import time.
* A family with a **custom runner** (per-scenario logic beyond the stock
  :func:`~repro.engine.executor.execute_scenario` — invariant hooks,
  structural-only analysis, extra report fields) tags its specs with a
  ``family`` option.  The executor's worker kernel sees the tag and
  dispatches back here (:func:`run_registered_scenario`), so custom
  runners work across process boundaries: the *spec* travels, the runner
  is looked up by name on the worker.  Family-specific metrics ride in
  ``ScenarioResult.extras``.
* A family with the **stock runner** leaves its specs untagged — their
  content hashes (and therefore existing journals) are unchanged — and
  may declare itself ``vectorizable`` to default onto the fast path.

Families register themselves at import; :func:`load_families` imports the
standard seven (plus the termination sweep) and is invoked lazily by every
lookup, so ``campaign run --family duality`` works without any caller
pre-importing :mod:`repro.experiments.duality`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.reporting import format_table
from repro.engine.aggregate import AggregateTable
from repro.engine.contracts import ContractViolation
from repro.engine.executor import ScenarioResult, execute_scenario
from repro.engine.scenarios import ScenarioSpec

#: ``params -> specs``: a declarative grid builder.  ``params`` is a plain
#: mapping (typically CLI flags); missing keys fall back to the family's
#: ``defaults``.
GridBuilder = Callable[[Mapping[str, Any]], Sequence[ScenarioSpec]]

#: ``spec -> result``: the per-scenario runner (executed in the worker).
Runner = Callable[[ScenarioSpec], ScenarioResult]

#: ``results -> (text, exit_code)``: the family's CLI face — must emit the
#: same text (and verdict) the family's pre-registry subcommand printed.
Renderer = Callable[[Sequence[ScenarioResult]], tuple[str, int]]

#: ``results -> AggregateTable``: the family's store-native aggregation.
Aggregator = Callable[[Sequence[ScenarioResult]], AggregateTable]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment family, declaratively.

    Attributes
    ----------
    name:
        Registry key (``campaign run --family <name>``).
    title:
        One-line description for listings.
    build_grid:
        Scenario-grid builder; receives ``defaults`` overlaid with the
        caller's params.
    render:
        Renders executed results into the family's historical CLI output
        and exit code.
    headers / row:
        The per-scenario row schema (``campaign report`` table).  ``None``
        falls back to the engine's generic report columns.
    runner:
        Custom per-scenario runner, or ``None`` for the stock
        :func:`~repro.engine.executor.execute_scenario`.  Custom runners
        execute on the reference simulator unless they also register a
        ``fast_result`` twin.
    fast_result:
        Optional fast-path twin of a custom runner: a
        ``(spec, FastPathRun, adversary) -> ScenarioResult`` builder that
        reproduces the runner's result record (metrics *and* extras,
        byte-identical) from a finished fast-path run.  Families with a
        twin execute on the vectorized/batched backends — including the
        mega-batched kernel, which stacks their scenarios with any other
        compatible same-``n`` work.
    fast_supported:
        Optional per-spec scope predicate for the twin: ``spec -> bool``.
        A family whose twin covers only *some* of its arms (the ablation
        family: its invariant-hook arm and the bespoke line-27 variant
        run only on the reference simulator) registers one; excluded
        specs raise ``FastPathUnsupported`` at the backend layer, so
        ``auto`` transparently falls back to the family runner per spec.
        Partial coverage cannot be *forced*: ``supports_backend``
        rejects explicit vectorized/batched requests for such families.
    aggregate:
        Store-native aggregator (``campaign report --aggregate``), or
        ``None`` for the generic latency percentile table.
    defaults:
        Default grid params as sorted ``(name, value)`` pairs.
    vectorizable:
        Whether the family's scenarios are covered by the fast-path
        kernels (stock-runner Algorithm-1 families, or custom runners
        with a ``fast_result`` twin); such families default to
        ``backend="auto"``.
    """

    name: str
    title: str
    build_grid: GridBuilder
    render: Renderer
    headers: tuple[str, ...] = ()
    row: Callable[[ScenarioResult], list] | None = None
    runner: Runner | None = None
    fast_result: Callable[..., ScenarioResult] | None = None
    fast_supported: Callable[[ScenarioSpec], bool] | None = None
    aggregate: Aggregator | None = None
    defaults: tuple[tuple[str, Any], ...] = ()
    vectorizable: bool = False

    # ------------------------------------------------------------------
    def grid(self, params: Mapping[str, Any] | None = None) -> list[ScenarioSpec]:
        """Expand the family grid with ``params`` over the defaults."""
        merged = dict(self.defaults)
        merged.update(params or {})
        return list(self.build_grid(merged))

    @property
    def default_backend(self) -> str:
        return "auto" if self.vectorizable else "reference"

    def supports_backend(self, backend: str) -> bool:
        """Whether a *forced* backend choice can execute this family.

        Partial fast-path coverage (a ``fast_supported`` predicate) is
        an ``auto``-only affair: forcing vectorized/batched on a family
        whose reference-only arms would come back as errors is rejected
        up front instead.
        """
        if backend in ("vectorized", "batched"):
            return self.vectorizable and (
                self.runner is None
                or (self.fast_result is not None and self.fast_supported is None)
            )
        return True

    def table(self, results: Sequence[ScenarioResult], title: str | None = None) -> str:
        """The per-scenario table in the family's row schema."""
        if self.row is None or not self.headers:
            raise ValueError(f"family {self.name!r} has no row schema")
        return format_table(
            list(self.headers),
            [self.row(r) for r in results],
            title=title,
        )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ExperimentSpec] = {}

#: Modules that register the standing experiment families on import.
FAMILY_MODULES = (
    "repro.experiments.figure1",
    "repro.experiments.theorem2",
    "repro.experiments.sweeps",
    "repro.experiments.ablation",
    "repro.experiments.duality",
    "repro.experiments.eventual",
    "repro.analysis.distributions",
    "repro.experiments.fuzz",
)

_loaded = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a family (last registration wins — re-imports are
    idempotent).  Returns the spec for decorator-style use."""
    _REGISTRY[spec.name] = spec
    return spec


def load_families() -> None:
    """Import every standard family module (idempotent)."""
    global _loaded
    if _loaded:
        return
    # Flag first: the family modules import engine modules that may call
    # back into here while half-initialized.
    _loaded = True
    for module in FAMILY_MODULES:
        importlib.import_module(module)


#: Convenience aliases accepted by :func:`get_family` (CLI spellings).
ALIASES = {
    "latency-dist": "latency",
    "latency_dist": "latency",
    "sweep": "sweeps",
}


def family_names() -> list[str]:
    load_families()
    return sorted(_REGISTRY)


def get_family(name: str) -> ExperimentSpec:
    load_families()
    try:
        return _REGISTRY[ALIASES.get(name, name)]
    except KeyError:
        raise KeyError(
            f"unknown experiment family {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


# ----------------------------------------------------------------------
# Worker-side dispatch
# ----------------------------------------------------------------------
def run_registered_scenario(
    spec: ScenarioSpec, backend: str, recorder=None
) -> ScenarioResult:
    """Execute one family-tagged scenario (the executor's worker kernel
    for specs carrying a ``family`` option).

    Never raises: unknown families and runner crashes become terminal
    ``"error"`` results, preserving the executor's isolation contract.
    The reference-simulator paths are uninstrumented; ``recorder``
    reaches only the fast-path kernels.
    """
    try:
        family = get_family(spec.opt("family"))
    except KeyError as exc:
        return ScenarioResult.failure(spec, str(exc), backend=backend)
    if family.runner is None:
        # Stock runner: honor the backend choice like any other spec.
        if backend == "reference":
            return execute_scenario(spec)
        from repro.engine.backends import execute_scenario_with_backend

        return execute_scenario_with_backend(spec, backend, recorder=recorder)
    if family.fast_result is not None and backend != "reference":
        # The family registered a fast-path twin of its runner: forced
        # fast backends run it (the twin builds the runner's exact result
        # record from a FastPathRun), and ``auto`` prefers it with the
        # usual transparent fallback to the family runner.
        from repro.engine.backends import (
            FastPathUnsupported,
            execute_scenario_vectorized,
            execute_scenario_with_backend,
        )

        if backend in ("vectorized", "batched"):
            return execute_scenario_with_backend(spec, backend, recorder=recorder)
        try:
            return execute_scenario_vectorized(spec, recorder=recorder)
        except FastPathUnsupported:
            pass
    elif backend in ("vectorized", "batched"):
        # A forced fast-path request must not silently execute the
        # family's bespoke reference-only logic.
        return ScenarioResult.failure(
            spec,
            f"FastPathUnsupported: family {family.name!r} runs only on "
            "the reference backend",
            backend=backend,
        )
    try:
        return family.runner(spec)
    except ContractViolation as exc:
        # A violated runtime contract means results can no longer be
        # trusted: abort the run loudly instead of journaling an error
        # record a resume would treat as settled.
        raise exc.with_context(id=spec.scenario_id, seed=spec.seed)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return ScenarioResult.failure(spec, f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# Campaign sugar
# ----------------------------------------------------------------------
def family_campaign(
    name: str,
    params: Mapping[str, Any] | None = None,
    store=None,
    jobs: int = 1,
    timeout: float | None = None,
    backend: str | None = None,
    batch_memory: int | None = None,
    pack_widths: bool = False,
    steal: bool = False,
    max_retries: int = 0,
):
    """A :class:`~repro.engine.campaign.Campaign` over a family's grid.

    The workhorse behind both ``campaign run --family <name>`` and the
    per-family CLI subcommands (which are sugar over exactly this)."""
    from repro.engine.campaign import Campaign

    family = get_family(name)
    resolved = family.default_backend if backend is None else backend
    if not family.supports_backend(resolved):
        raise ValueError(
            f"family {name!r} does not support backend {resolved!r}"
        )
    return Campaign(
        family.grid(params),
        store=store,
        jobs=jobs,
        timeout=timeout,
        backend=resolved,
        batch_memory=batch_memory,
        pack_widths=pack_widths,
        steal=steal,
        label=family.name,
        max_retries=max_retries,
    )


def run_family(
    name: str,
    params: Mapping[str, Any] | None = None,
    store=None,
    jobs: int = 1,
    timeout: float | None = None,
    backend: str | None = None,
    batch_memory: int | None = None,
    pack_widths: bool = False,
    steal: bool = False,
    max_retries: int = 0,
) -> list[ScenarioResult]:
    """One-shot: run (resuming) a family campaign, return grid-ordered
    completed results."""
    campaign = family_campaign(
        name,
        params,
        store=store,
        jobs=jobs,
        timeout=timeout,
        backend=backend,
        batch_memory=batch_memory,
        pack_widths=pack_widths,
        steal=steal,
        max_retries=max_retries,
    )
    campaign.run()
    return campaign.completed_results()
