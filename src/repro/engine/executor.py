"""The parallel scenario executor.

:func:`execute_scenario` is a *pure function* of a :class:`ScenarioSpec`:
every RNG in the simulation stack is derived from the spec's seed, so the
same spec produces bit-identical metrics in any process on any worker.
That purity is what the parallel backend leans on — results are collected
in completion order but re-sorted into submission order, so a campaign's
output is deterministic regardless of ``jobs``.

Backends:

* serial (``jobs <= 1``) — a plain loop, no pickling, easiest to debug;
* ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) — chunked
  dispatch (each task is a contiguous slice of the grid, amortizing
  IPC; under the ``batched``/``auto`` backends each task is instead one
  of the scheduler's planned batches, so pool chunking cannot break a
  batch — see :mod:`repro.engine.scheduler`), per-chunk timeouts (a
  stuck chunk is marked ``"timeout"`` and the stragglers are killed
  when the pool exits), and crash isolation (a scenario that raises
  becomes a ``"error"`` result instead of poisoning the pool).

Hard-killed workers (OOM killer, segfault in an extension) are detected
without needing a ``timeout``: dispatch runs on
``concurrent.futures.ProcessPoolExecutor``, whose broken-pool protocol
fails every outstanding chunk with ``BrokenProcessPool`` the moment a
worker vanishes.  Chunks that were *observed running* come back as
terminal ``"error"`` records (one of them killed its worker); chunks
still queued when the pool broke never executed and come back retriable,
so a resumed campaign re-runs the innocent majority instead of skipping
it forever.  Either way the campaign surfaces the loss and exits red
instead of hanging.  A ``timeout`` is still available for *stragglers*
(scenarios that run but never finish): chunks past the fleet deadline
yield retriable ``"timeout"`` records and their workers are killed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import random
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing.pool import MaybeEncodingError
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.properties import check_agreement_properties
from repro.analysis.stats import decision_stats
from repro.engine import faults as _faults
from repro.engine.contracts import ContractViolation
from repro.engine.contracts import get as _get_contracts
from repro.engine.scenarios import ScenarioSpec
from repro.engine.telemetry import Recorder
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs
from repro.rounds.simulator import RoundSimulator, SimulationConfig

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


class ExecutionStopped(RuntimeError):
    """Raised when a run is interrupted by a ``should_stop`` signal (the
    campaign service's shutdown path).  Every result journaled before the
    stop is already durable; the remaining scenarios simply never ran, so
    a resumed/resubmitted campaign picks up exactly where this left off."""


def is_terminal(status: str) -> bool:
    """Whether a journaled status is final for resume purposes.

    ``ok`` and deterministic ``error`` records are never re-executed;
    ``timeout`` (including transient chunk failures journaled as
    timeouts) stays retriable.  The single source of truth for the
    resume invariant — used by both ``ResultStore`` and ``Campaign``."""
    return status != STATUS_TIMEOUT


@dataclass(frozen=True)
class ScenarioResult:
    """The summary record of one executed scenario.

    Only *summaries* are kept (the decision/skeleton statistics the
    experiment tables report) — full :class:`~repro.rounds.run.Run`
    objects stay in the worker.  ``status`` is ``"ok"``, ``"error"`` or
    ``"timeout"``; metric fields are ``None`` for non-ok results.
    ``backend`` records which execution engine produced the result
    (provenance only: it is journaled but excluded from canonical
    summaries, which must be byte-identical across backends).
    ``extras`` holds family-specific metrics as sorted ``(name, value)``
    pairs of JSON scalars — registered experiment families stash the
    quantities the core schema has no column for (ablation invariant
    verdicts, duality α, the Figure 1 rendering).  Read via
    :meth:`extra`; empty extras are omitted from encoded records so core
    summaries keep their historical bytes.
    """

    spec: ScenarioSpec
    status: str = STATUS_OK
    error: str | None = None
    backend: str = "reference"
    num_rounds: int | None = None
    root_components: int | None = None
    psrcs_holds: bool | None = None
    distinct_decisions: int | None = None
    all_decided: bool | None = None
    k_agreement_holds: bool | None = None
    validity_holds: bool | None = None
    first_decision_round: int | None = None
    last_decision_round: int | None = None
    stabilization: int | None = None
    lemma11_bound: int | None = None
    within_bound: bool | None = None
    decision_values: tuple = ()
    extras: tuple = ()

    def __post_init__(self) -> None:
        canonical = tuple(sorted((str(k), v) for k, v in self.extras))
        if canonical != self.extras:
            object.__setattr__(self, "extras", canonical)

    def extra(self, name: str, default: Any = None) -> Any:
        """Read a family-specific extra metric by name."""
        for key, value in self.extras:
            if key == name:
                return value
        return default

    @property
    def scenario_id(self) -> str:
        return self.spec.scenario_id

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @classmethod
    def failure(
        cls,
        spec: ScenarioSpec,
        error: str,
        status: str = STATUS_ERROR,
        backend: str = "reference",
    ) -> "ScenarioResult":
        return cls(spec=spec, status=status, error=error, backend=backend)


def require_ok(
    results: Sequence[ScenarioResult],
) -> Sequence[ScenarioResult]:
    """Raise if any result is non-ok, surfacing the workers' errors.

    The executor converts worker exceptions into ``status != "ok"``
    records with ``None`` metrics; callers that build tables from the
    metrics would only blow up later (e.g. ``distinct_decisions > k``
    raising TypeError) with the real traceback lost."""
    failed = [r for r in results if not r.ok]
    if failed:
        details = "; ".join(
            f"{r.scenario_id} ({r.status}): {r.error}" for r in failed[:3]
        )
        raise RuntimeError(
            f"{len(failed)}/{len(results)} scenarios failed: {details}"
        )
    return results


def execute_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario end-to-end and summarize it.

    Never raises: any exception from construction or simulation becomes a
    ``"error"`` result, so a bad corner of a grid cannot take down a
    campaign.
    """
    try:
        adversary = spec.build_adversary()
        processes = spec.build_processes()
        config = SimulationConfig(max_rounds=spec.resolved_max_rounds())
        run = RoundSimulator(processes, adversary, config).run()
        stable = run.stable_skeleton()
        stats = decision_stats(run)
        report = check_agreement_properties(run, spec.k)
        return ScenarioResult(
            spec=spec,
            num_rounds=run.num_rounds,
            root_components=len(root_components(stable)),
            psrcs_holds=Psrcs(spec.k).check_skeleton(stable).holds,
            distinct_decisions=report.num_decision_values,
            all_decided=report.termination.holds,
            k_agreement_holds=report.k_agreement.holds,
            validity_holds=report.validity.holds,
            first_decision_round=stats.first_decision_round,
            last_decision_round=stats.last_decision_round,
            stabilization=stats.stabilization,
            lemma11_bound=stats.lemma11_bound,
            within_bound=stats.within_bound,
            decision_values=tuple(
                sorted(run.decision_values(), key=repr)
            ),
        )
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return ScenarioResult.failure(spec, f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# Parallel dispatch
# ----------------------------------------------------------------------
IndexedSpec = tuple[int, ScenarioSpec]


def _run_one(
    spec: ScenarioSpec, backend: str, recorder=None
) -> ScenarioResult:
    """Execute one scenario on the requested backend.

    Specs carrying a ``family`` option belong to a registered experiment
    family and dispatch through :mod:`repro.engine.registry` (which may
    supply a custom per-scenario runner).  The common plain
    ``"reference"`` case stays import-free; other paths resolve lazily
    (those modules import this one, so the imports must not be circular
    at load time).
    """
    _faults.before_scenario(spec)
    if spec.opt("family") is not None:
        from repro.engine.registry import run_registered_scenario

        return run_registered_scenario(spec, backend, recorder=recorder)
    if backend == "reference":
        return execute_scenario(spec)
    from repro.engine.backends import execute_scenario_with_backend

    return execute_scenario_with_backend(spec, backend, recorder=recorder)


def _iter_chunk(
    chunk: Sequence[IndexedSpec],
    backend: str,
    batch_memory: int | None = None,
    compact: bool = True,
    pack_widths: bool = False,
    recorder=None,
) -> Iterable[tuple[int, ScenarioResult]]:
    """Yield one work list's results, tagged with their input indices.

    The ``batched`` and ``auto`` backends route through the batch
    scheduler (:func:`repro.engine.scheduler.iter_planned`), which packs
    batch-compatible specs into planned lane-compacting batches — yield
    order is plan order there, input order otherwise; every result
    carries its index, and journal record bytes are a pure function of
    the spec, so consumers are order-agnostic.
    """
    if backend in ("batched", "auto"):
        from repro.engine.scheduler import iter_planned

        yield from iter_planned(
            chunk, backend, batch_memory=batch_memory, compact=compact,
            pack_widths=pack_widths, recorder=recorder,
        )
        return
    for idx, spec in chunk:
        yield idx, _run_one(spec, backend, recorder=recorder)


def _worker_meta(recorder: Recorder, t0: float) -> dict:
    """The metrics envelope a collecting worker returns with its payload."""
    return {
        "pid": os.getpid(),
        "busy_s": time.perf_counter() - t0,
        "snapshot": recorder.snapshot(),
    }


def _split_payload(payload):
    """``(payload, meta)`` from a worker return value.

    Collecting workers return ``(payload, meta_dict)``; everything else
    (legacy shape, monkeypatched test doubles, the parent's own
    timeout/failure synthesizers) returns the bare payload.
    """
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and isinstance(payload[1], dict)
    ):
        return payload
    return payload, None


def _execute_chunk(
    chunk: Sequence[IndexedSpec],
    backend: str = "reference",
    collect_metrics: bool = False,
) -> Any:
    """Worker entry point: run one slice of the grid (per-scenario
    backends, and the scheduler's non-batchable singles).

    With ``collect_metrics`` the worker builds its own
    :class:`~repro.engine.telemetry.Recorder` and returns
    ``(payload, meta)`` — pid, busy seconds and a metrics snapshot —
    for the parent to merge; otherwise the bare payload (so existing
    callers and test doubles see the historical shape).
    """
    if not collect_metrics:
        return list(_iter_chunk(chunk, backend))
    recorder = Recorder()
    t0 = time.perf_counter()
    payload = list(_iter_chunk(chunk, backend, recorder=recorder))
    if _faults.drop_worker_meta(chunk):
        return payload
    return payload, _worker_meta(recorder, t0)


def _execute_planned(
    batch,
    backend: str = "batched",
    compact: bool = True,
    collect_metrics: bool = False,
) -> Any:
    """Worker entry point: run one whole planned batch.

    The pool ships :class:`~repro.engine.scheduler.PlannedBatch` units
    instead of order-chunks under the batched/auto backends, so pool
    chunking can never break a batch.  ``collect_metrics`` works as in
    :func:`_execute_chunk`.
    """
    from repro.engine.scheduler import run_planned_batch

    for _idx, spec in batch.items:
        _faults.before_scenario(spec)
    if not collect_metrics:
        return run_planned_batch(batch, backend, compact=compact)
    recorder = Recorder()
    t0 = time.perf_counter()
    payload = run_planned_batch(
        batch, backend, compact=compact, recorder=recorder
    )
    if _faults.drop_worker_meta(list(batch.items)):
        return payload
    return payload, _worker_meta(recorder, t0)


def _count_result(recorder, result: ScenarioResult) -> None:
    """Parent-side result accounting (single source for both backends)."""
    recorder.inc("executor.scenarios")
    if result.status == STATUS_OK:
        recorder.inc("executor.results_ok")
    elif result.status == STATUS_TIMEOUT:
        recorder.vinc("executor.results_timeout")
    else:
        recorder.vinc("executor.results_error")


def _chunked(items: Sequence[IndexedSpec], size: int) -> list[list[IndexedSpec]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def default_chunksize(num_specs: int, jobs: int) -> int:
    """~4 chunks per worker: large enough to amortize fork+pickle, small
    enough that the pool load-balances uneven scenario costs."""
    return max(1, num_specs // max(1, jobs * 4))


_RETRY_BASE_S = 0.05
_RETRY_CAP_S = 2.0


def _stop_aware_sleep(
    seconds: float,
    should_stop: Callable[[], bool] | None,
    slice_s: float = 0.05,
) -> None:
    """Sleep up to ``seconds``, waking early when ``should_stop`` flips.

    The dispatch loop's idle wait covers retry-backoff windows too
    (queued units gate on ``not_before``), so a plain ``time.sleep``
    would stall daemon drain for the whole backoff when SIGTERM lands
    mid-window.  Slicing the wait keeps the stop latency bounded by
    ``slice_s`` whatever the poll interval or backoff schedule."""
    if should_stop is None or seconds <= slice_s:
        time.sleep(seconds)
        return
    deadline = time.monotonic() + seconds
    while not should_stop():
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(slice_s, remaining))


def retry_delay(key: str, attempt: int) -> float:
    """Backoff before in-run retry ``attempt`` (1-based) of a unit.

    Capped exponential with *deterministic* decorrelated jitter: the
    jitter RNG is seeded from the unit's first scenario id (a content
    hash that embeds the campaign seed) and the attempt number, so two
    colliding units spread apart but the schedule is reproducible."""
    spread = 0.5 + random.Random(f"{key}:{attempt}").random()
    return min(_RETRY_CAP_S, _RETRY_BASE_S * (2 ** (attempt - 1)) * spread)


def _reset_worker_signals() -> None:  # pragma: no cover — runs in workers
    """Pool-worker initializer: restore default signal dispositions.

    Workers fork *after* the CLI (or the service daemon) installed its
    graceful SIGTERM/SIGINT handlers, and fork copies those handlers
    into the child.  A worker that inherits "SIGTERM raises
    KeyboardInterrupt" survives ``proc.terminate()``: the interrupt is
    swallowed by the executor's task loop as an ordinary task failure
    and the worker goes right back to waiting for work — which turns
    every straggler-termination / fast-shutdown path into a hang (the
    parent exits only after joining the executor's manager thread,
    which waits on the immortal worker).  SIGTERM must mean death here;
    SIGINT is ignored so a terminal Ctrl-C interrupts only the parent,
    which then winds the pool down deliberately."""
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _terminate_pool(executor: ProcessPoolExecutor) -> int:
    """Shut a pool down *without* waiting, terminating every live worker
    (stragglers past the deadline, stalled or orphaned processes of a
    broken pool).  Returns the number of processes terminated.  The
    worker list must be snapshotted before shutdown clears it."""
    procs = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    terminated = 0
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            terminated += 1
    for proc in procs:
        if proc.is_alive():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover — last resort
                proc.kill()
                proc.join(timeout=1.0)
    return terminated


class WorkerPool:
    """A rebuildable process pool that can outlive one campaign.

    :func:`execute_scenarios` historically created (and destroyed) a
    ``ProcessPoolExecutor`` per call — the right shape for one-shot CLI
    runs, the wrong one for the always-on campaign service, which pays
    pool spin-up once and then multiplexes many campaign submissions
    across the same warm workers.  This wrapper owns that lifecycle:

    * ``submit`` delegates to the live executor (thread-safe: concurrent
      campaigns dispatch from their own threads);
    * ``rebuild`` terminates every worker and swaps in a fresh executor
      — the broken-pool / straggler recovery primitive.  It is
      *generation-aware*: a caller that observed the pool break passes
      the generation it saw, and the rebuild is skipped when another
      campaign already replaced that generation (so N concurrent victims
      of one crash do not thrash N fresh pools);
    * ``close`` ends the pool for good (``terminate=True`` kills live
      workers instead of waiting — the service's fast-shutdown path).
      A closed pool refuses new work and ``rebuild`` becomes a no-op,
      so in-flight campaigns wind down instead of respawning workers
      under a daemon that is exiting.

    Sharing one pool means one campaign's recovery actions are visible
    to its neighbors: a rebuild kills *all* in-flight units, whose
    campaigns see ``BrokenProcessPool`` and retry (``max_retries``) or
    journal retriable records for resume.  That is the deliberate
    trade — crash isolation stays at the campaign level, capacity is
    shared at the batch level.
    """

    def __init__(self, workers: int, mp_context=None) -> None:
        self.workers = max(1, workers)
        self._ctx = mp_context or multiprocessing.get_context()
        self._lock = threading.Lock()
        self._generation = 0
        self._closing = False
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._ctx,
            initializer=_reset_worker_signals,
        )

    @property
    def generation(self) -> int:
        """Bumped on every rebuild (see :meth:`rebuild`)."""
        return self._generation

    @property
    def closing(self) -> bool:
        return self._closing

    def submit(self, fn, /, *args):
        """Submit one call to the live executor.

        Raises ``RuntimeError`` once the pool is closed and
        ``BrokenProcessPool`` when the executor is broken — callers
        treat both as "this unit did not dispatch" and requeue."""
        with self._lock:
            if self._closing:
                raise RuntimeError("worker pool is closed")
            return self._executor.submit(fn, *args)

    def rebuild(self, seen_generation: int | None = None) -> int:
        """Terminate every worker and bring up a fresh executor.

        Returns the number of processes terminated (0 when the rebuild
        was skipped: pool closing, or ``seen_generation`` already
        replaced by a concurrent rebuild)."""
        with self._lock:
            if self._closing:
                return 0
            if (
                seen_generation is not None
                and seen_generation != self._generation
            ):
                return 0
            terminated = _terminate_pool(self._executor)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx,
                initializer=_reset_worker_signals,
            )
            self._generation += 1
            return terminated

    def close(self, terminate: bool = False) -> int:
        """Shut the pool down for good.  ``terminate=True`` kills live
        workers (fast shutdown); otherwise waits for in-flight work.
        Returns the number of processes terminated."""
        with self._lock:
            if self._closing:
                return 0
            self._closing = True
            if terminate:
                return _terminate_pool(self._executor)
            self._executor.shutdown(wait=True, cancel_futures=True)
            return 0


def _terminal_failure(exc: BaseException, was_running: bool) -> bool:
    """Whether a unit-level failure is deterministic (retrying would
    fail identically).  Single source for the journal classifier
    (:func:`failed_chunk` records) and the in-run retry gate."""
    if isinstance(exc, BrokenProcessPool):
        return was_running
    return isinstance(
        exc,
        (pickle.PicklingError, MaybeEncodingError, AttributeError,
         TypeError),
    )


def execute_scenarios(
    specs: Iterable[ScenarioSpec],
    jobs: int = 1,
    timeout: float | None = None,
    chunksize: int | None = None,
    on_result: Callable[[ScenarioResult], Any] | None = None,
    poll_interval: float = 0.01,
    backend: str = "reference",
    batch_memory: int | None = None,
    compact: bool = True,
    pack_widths: bool = False,
    steal: bool = False,
    plan=None,
    recorder=None,
    max_retries: int = 0,
    pool: "WorkerPool | None" = None,
    should_stop: Callable[[], bool] | None = None,
) -> list[ScenarioResult]:
    """Execute many scenarios, serially or on a process pool.

    Parameters
    ----------
    specs:
        The scenarios, in grid order.
    jobs:
        Worker processes; ``<= 1`` selects the serial backend (unless a
        ``timeout`` is set, which always routes through a pool — a hung
        scenario cannot be interrupted in-process).
    timeout:
        Per-scenario time budget in seconds.  The budgets pool into one
        fleet deadline (``timeout * ceil(len(specs) / workers)`` from
        pool start): chunks still pending at the deadline yield
        retriable ``"timeout"`` results and their workers are killed
        when the pool exits.  Coarse by design — it unsticks campaigns;
        it is not a precise per-run stopwatch.
    chunksize:
        Scenarios per dispatched task (default: :func:`default_chunksize`).
    on_result:
        Callback invoked in the *parent* process as each result arrives
        (completion order) — the campaign layer journals through this,
        so an interrupted campaign keeps every chunk that finished
        before the interrupt.
    poll_interval:
        Seconds between readiness polls of outstanding chunks.
    backend:
        Execution engine per scenario: ``"reference"`` (default),
        ``"vectorized"``, ``"batched"`` (scheduler-planned mega-batches
        of same-``n`` scenarios through one tensor program) or
        ``"auto"`` — see :mod:`repro.engine.backends`.
    batch_memory:
        Per-batch memory envelope in bytes for the batched/auto
        backends (``None``: the built-in budget) — a pure packing knob,
        results and journal bytes are identical whatever the envelope.
    compact:
        Whether the batch kernel compacts live lanes as batchmates
        retire (diagnostic toggle for the differential suite and the
        fast-path benchmark; results are bit-identical either way).
    pack_widths:
        Cross-``n`` packing for the batched/auto backends when the plan
        is computed *here* (``plan=None``): mixed-``n`` grids batch into
        one padded tensor program per round bucket — see
        :func:`repro.engine.scheduler.plan_batches`.  A pure packing
        knob: results and journal bytes are identical either way.
    steal:
        Work-stealing pool mode (pool path, batched/auto backends).
        The parent throttles dispatch to one in-flight unit per worker
        and keeps the rest queued; whenever the ready backlog is
        thinner than the pool, the largest queued planned batch is cut
        in half at its deterministic midpoint
        (:func:`repro.engine.scheduler.split_planned`) so idle workers
        steal the tail of oversized batches instead of draining out.
        Split points are a pure function of the plan and batched
        results are tagged by backend, never by grouping — journal
        bytes and the deterministic telemetry plane are steal-invariant
        (the differential suite pins this).
    plan:
        A precomputed :class:`~repro.engine.scheduler.BatchPlan` for
        exactly this work list (the campaign layer passes the plan its
        progress reporter was built from, so the list is only planned
        once).  ``None``: the batched/auto backends plan here.
    recorder:
        Optional :class:`~repro.engine.telemetry.Recorder`.  On the pool
        path workers collect into their own recorders and return
        snapshots with their payloads; the parent merges them (the merge
        is commutative, so the result is independent of worker count and
        completion order) and adds dispatch-side durations — per-unit
        turnaround, worker busy time, queue wait — plus per-worker
        utilization info.
    max_retries:
        Bounded *in-run* retries per dispatch unit for retriable
        failures (fleet-deadline timeouts, transient worker errors,
        broken pools) before the failure is journaled for a later
        resume.  Retries back off with :func:`retry_delay`; a unit that
        broke the pool while running is re-run as singleton chunks so
        the innocent majority completes and only the true killer (if
        deterministic) fails terminally.  ``0`` (default) preserves the
        journal-on-first-failure behavior exactly.
    pool:
        A shared :class:`WorkerPool` (the campaign service's persistent
        pool).  ``None`` (default): a private pool is created and torn
        down here, exactly as before.  With a shared pool this call
        never shuts the pool down — broken pools and stragglers are
        handled by generation-aware :meth:`WorkerPool.rebuild` so
        concurrent campaigns on the same pool keep running.  A pool
        forces the pool code path even for ``jobs <= 1`` (the daemon
        multiplexes every campaign through its workers).
    should_stop:
        Zero-argument callable polled between dispatch rounds (and
        between serial results).  Returning ``True`` cancels pending
        work and raises :class:`ExecutionStopped`; everything already
        delivered to ``on_result`` stays journaled, so the campaign is
        resumable by hash.

    Returns
    -------
    Results in the same order as ``specs``, independent of ``jobs``.
    """
    spec_list = list(specs)
    if not spec_list:
        return []
    if (jobs <= 1 or len(spec_list) <= 1) and timeout is None and pool is None:
        # The serial path streams through the same kernels the pool
        # workers use, so the batched/auto backends run the scheduler's
        # planned batches here too; results are re-sorted into grid
        # order (they journal in plan order).
        results: list = [None] * len(spec_list)
        if backend in ("batched", "auto") and plan is not None:
            from repro.engine.scheduler import iter_plan

            streamed = iter_plan(
                plan, backend, compact=compact, recorder=recorder
            )
        else:
            streamed = _iter_chunk(
                list(enumerate(spec_list)),
                backend,
                batch_memory=batch_memory,
                compact=compact,
                pack_widths=pack_widths,
                recorder=recorder,
            )
        for idx, result in streamed:
            if recorder:
                _count_result(recorder, result)
            if on_result is not None:
                on_result(result)
            results[idx] = result
            if should_stop is not None and should_stop():
                raise ExecutionStopped("run interrupted by shutdown signal")
        return results

    indexed = list(enumerate(spec_list))
    jobs = max(1, jobs)
    # Dispatch units: under the batched/auto backends the scheduler's
    # whole planned batches ship to workers (pool chunking must not
    # break batches); everything else — other backends, and the plan's
    # non-batchable singles — ships as contiguous order-chunks.
    units: list[tuple[list[IndexedSpec], tuple]] = []
    # The collect flag is appended only when metrics are on, so the
    # worker-call shape (and every monkeypatched test double) is
    # untouched on the default path.
    collect: tuple = (True,) if recorder else ()
    if backend in ("batched", "auto"):
        if plan is None:
            from repro.engine.scheduler import plan_batches

            plan = plan_batches(
                indexed, batch_memory=batch_memory, jobs=jobs,
                pack_widths=pack_widths, recorder=recorder,
            )
        for batch in plan.batches:
            units.append(
                (
                    list(batch.items),
                    (_execute_planned, batch, backend, compact) + collect,
                )
            )
        singles = list(plan.singles)
        if singles:
            for chunk in _chunked(
                singles, chunksize or default_chunksize(len(singles), jobs)
            ):
                units.append(
                    (chunk, (_execute_chunk, chunk, backend) + collect)
                )
    else:
        for chunk in _chunked(
            indexed, chunksize or default_chunksize(len(indexed), jobs)
        ):
            units.append((chunk, (_execute_chunk, chunk, backend) + collect))
    steal = steal and backend in ("batched", "auto")
    steal_splits = 0

    def _split_unit(call) -> list[tuple[list[IndexedSpec], tuple]]:
        # Halve one planned batch at the deterministic midpoint; the
        # halves inherit the call's backend/compact/collect tail.
        from repro.engine.scheduler import split_planned

        nonlocal steal_splits
        steal_splits += 1
        halves = split_planned(call[1])
        active_contracts = _get_contracts()
        if active_contracts and active_contracts.sample("steal_split"):
            active_contracts.check_split_partition(
                call[1], halves, context={"backend": backend}
            )
        return [
            (list(half.items), (_execute_planned, half) + call[2:])
            for half in halves
        ]

    def _largest_splittable(entries, unit_of) -> int | None:
        from repro.engine.scheduler import can_split

        best = None
        best_lanes = 0
        for i, entry in enumerate(entries):
            call = unit_of(entry)
            if call[0] is _execute_planned and can_split(call[1]):
                if call[1].lanes > best_lanes:
                    best, best_lanes = i, call[1].lanes
        return best

    if steal:
        # Pre-split so the pool is never narrower than jobs just
        # because the plan produced few (large) batches.
        while len(units) < jobs:
            i = _largest_splittable(units, lambda entry: entry[1])
            if i is None:
                break
            call = units.pop(i)[1]
            units[i:i] = _split_unit(call)
    workers = min(jobs, len(units))
    collected: dict[int, ScenarioResult] = {}
    # pid -> [units, busy_s]; feeds the per-worker utilization info.
    worker_stats: dict[int, list] = {}

    def deliver(payload, submit_t: float | None = None) -> None:
        payload, meta = _split_payload(payload)
        if recorder and submit_t is not None:
            turnaround = time.monotonic() - submit_t
            recorder.add_duration("executor.unit_wall_s", turnaround)
            if meta is not None:
                if merge_witness is not None:
                    merge_witness.append(meta["snapshot"])
                recorder.merge(meta["snapshot"])
                busy = meta["busy_s"]
                recorder.add_duration("executor.worker_busy_s", busy)
                recorder.add_duration(
                    "executor.queue_wait_s", max(0.0, turnaround - busy)
                )
                stats = worker_stats.setdefault(meta["pid"], [0, 0.0])
                stats[0] += 1
                stats[1] += busy
        for idx, result in payload:
            if recorder:
                _count_result(recorder, result)
            collected[idx] = result
            if on_result is not None:
                on_result(result)

    def timed_out(chunk: Sequence[IndexedSpec], budget: float) -> list:
        return [
            (
                idx,
                ScenarioResult.failure(
                    spec,
                    f"no result within {budget:.1f}s",
                    status=STATUS_TIMEOUT,
                    backend=backend,
                ),
            )
            for idx, spec in chunk
        ]

    def failed_chunk(
        chunk: Sequence[IndexedSpec], exc: BaseException, was_running: bool
    ) -> list:
        # Chunk-level failure: scenario-level exceptions are already
        # contained inside execute_scenario, so this is one of
        #   * a hard-killed worker (OOM killer, segfault) — the broken-
        #     pool protocol fails every outstanding chunk.  Only chunks
        #     *observed running* are journaled as terminal errors (one
        #     of them killed its worker; retrying would kill another
        #     host); chunks still queued when the pool broke never
        #     executed at all and stay retriable, so a resumed campaign
        #     re-runs them instead of skipping them forever;
        #   * a deterministic task/result (un)pickling failure —
        #     terminal, a retry would fail identically;
        #   * transient worker infrastructure (MemoryError, broken
        #     pipes) — journaled retriable like a timeout so a resumed
        #     campaign re-runs the chunk.
        terminal = _terminal_failure(exc, was_running)
        return [
            (
                idx,
                ScenarioResult.failure(
                    spec,
                    f"chunk failed: {type(exc).__name__}: {exc}",
                    status=STATUS_ERROR if terminal else STATUS_TIMEOUT,
                    backend=backend,
                ),
            )
            for idx, spec in chunk
        ]

    contracts = _get_contracts()
    # Worker snapshots in delivery order: the merge-commutativity
    # contract re-merges them forward and backward at the end.
    merge_witness: list[dict] | None = [] if (contracts and recorder) else None
    max_retries = max(0, max_retries)
    # A broken pool must be rebuilt before retried work can run; bound
    # the rebuilds so a deterministically-crashing workload terminates.
    max_rebuilds = 2 * max_retries + 2
    rebuilds = 0
    owned = pool is None
    if owned:
        pool = WorkerPool(workers)
    abandoned = False
    pool_dead = False
    # Generation of the pool observed broken — a concurrent campaign on
    # a shared pool may rebuild it first, making our rebuild a no-op.
    dead_gen: int | None = None
    try:
        start = time.monotonic()
        window = (
            timeout * math.ceil(len(spec_list) / workers)
            if timeout is not None
            else None
        )
        deadline = start + window if window is not None else None
        # The work queue: [items, call, attempts, not_before].  Retried
        # units re-enter with attempts+1 and a backoff delay.
        queue: list[list] = [
            [items, call, 0, 0.0] for items, call in units
        ]
        # (items, call, attempts, handle, t, pool generation at submit)
        pending: list[tuple] = []
        # Which futures were ever observed executing on a worker — the
        # broken-pool classifier's running/queued attribution.  Polled,
        # so a worker that dies within one poll interval of starting may
        # leave its chunk attributed as queued (retriable) — erring
        # retriable is safe: the run still terminates and reports red.
        seen_running: set[int] = set()

        def unit_key(items) -> str:
            return items[0][1].scenario_id if items else "empty"

        def requeue(items, call, attempts) -> None:
            delay = retry_delay(unit_key(items), attempts + 1)
            queue.append(
                [items, call, attempts + 1, time.monotonic() + delay]
            )
            if recorder:
                recorder.vinc("executor.unit_retries")

        def split_singletons(items, attempts) -> None:
            # A hard-killed worker took a whole unit down without saying
            # which scenario was guilty: re-run the members as singleton
            # chunks so the innocent majority completes and only the
            # true killer (if deterministic) fails terminally.  Safe for
            # planned batches too — batched results are tagged by
            # backend, not by grouping, so journal bytes are identical.
            for item in items:
                requeue(
                    [item],
                    (_execute_chunk, [item], backend) + collect,
                    attempts,
                )
            if recorder:
                recorder.vinc("executor.singleton_splits")

        def rebuild_pool() -> None:
            nonlocal pool_dead, rebuilds, dead_gen
            pool.rebuild(dead_gen)
            pool_dead = False
            dead_gen = None
            rebuilds += 1
            if recorder:
                recorder.vinc("executor.pool_rebuilds")

        # Harvest units in *completion* order so every finished unit is
        # journaled immediately — a slow unit must not hold back the
        # durability of the fast ones behind it.
        while queue or pending:
            if should_stop is not None and should_stop():
                # Service shutdown: cancel what never dispatched and
                # bail.  Delivered results are already journaled; a
                # resubmit of the same grid resumes by hash.
                for _items, _call, _attempts, handle, _t, _gen in pending:
                    handle.cancel()
                raise ExecutionStopped("run interrupted by shutdown signal")
            now = time.monotonic()
            progressed = False
            if pool_dead and not pending and queue:
                # Broken futures all drained; bring up a fresh pool for
                # the retried/queued work (or give up retriably).
                if rebuilds < max_rebuilds:
                    rebuild_pool()
                else:
                    exc = BrokenProcessPool(
                        "worker pool broken and rebuild budget exhausted"
                    )
                    for items, call, attempts, _ in queue:
                        deliver(failed_chunk(items, exc, False))
                    queue = []
                progressed = True
            if not pool_dead and queue:
                if steal:
                    # Steal: keep the backlog deep enough that no
                    # worker can go idle behind one oversized batch —
                    # cut the largest queued planned batch in half
                    # (deterministic midpoint) until there are at least
                    # two units per worker in the system or nothing
                    # splittable is left.
                    while len(queue) + len(pending) < 2 * workers:
                        i = _largest_splittable(
                            queue, lambda entry: entry[1]
                        )
                        if i is None:
                            break
                        items, call, attempts, not_before = queue.pop(i)
                        queue[i:i] = [
                            [half_items, half_call, attempts, not_before]
                            for half_items, half_call in _split_unit(call)
                        ]
                waiting = []
                for entry in queue:
                    items, call, attempts, not_before = entry
                    # Throttled dispatch under steal: one in-flight unit
                    # per worker, the rest stay here where they can
                    # still be split.  Eager dispatch otherwise.
                    if pool_dead or not (
                        not_before <= now
                        and (not steal or len(pending) < workers)
                    ):
                        waiting.append(entry)
                        continue
                    submit_gen = pool.generation
                    try:
                        handle = pool.submit(call[0], *call[1:])
                    except (BrokenProcessPool, RuntimeError):
                        # The pool broke (or a shared pool is closing)
                        # before this unit dispatched — it never ran,
                        # so it stays queued for the rebuilt pool.
                        pool_dead = True
                        if dead_gen is None:
                            dead_gen = submit_gen
                        waiting.append(entry)
                        continue
                    pending.append(
                        (items, call, attempts, handle,
                         time.monotonic(), submit_gen)
                    )
                    progressed = True
                queue = waiting
            still_pending = []
            deadline_retried = False
            for items, call, attempts, handle, submit_t, gen in pending:
                if handle.running():
                    seen_running.add(id(handle))
                if handle.done():
                    progressed = True
                    try:
                        payload = handle.result()
                    except ContractViolation:
                        # A violated invariant aborts the run loudly —
                        # never journaled, never retried.
                        raise
                    except BaseException as exc:  # noqa: BLE001
                        was_running = id(handle) in seen_running
                        if isinstance(exc, BrokenProcessPool):
                            pool_dead = True
                            if dead_gen is None:
                                dead_gen = gen
                        if attempts < max_retries and (
                            isinstance(exc, BrokenProcessPool)
                            or not _terminal_failure(exc, was_running)
                        ):
                            if (
                                isinstance(exc, BrokenProcessPool)
                                and was_running
                                and len(items) > 1
                            ):
                                split_singletons(items, attempts)
                            else:
                                requeue(items, call, attempts)
                            continue
                        payload = failed_chunk(items, exc, was_running)
                    deliver(payload, submit_t)
                elif deadline is not None and now > deadline:
                    # Fleet deadline: every still-pending unit expires
                    # together.  With retries left the stragglers'
                    # workers are killed (pool rebuild) and the units
                    # re-enter the queue under a fresh window; otherwise
                    # they journal as retriable timeouts for resume.
                    handle.cancel()
                    if attempts < max_retries:
                        requeue(items, call, attempts)
                        pool_dead = True
                        if dead_gen is None:
                            dead_gen = gen
                        deadline_retried = True
                    else:
                        deliver(timed_out(items, window))
                        abandoned = True
                    progressed = True
                else:
                    still_pending.append(
                        (items, call, attempts, handle, submit_t, gen)
                    )
            pending = still_pending
            if deadline_retried:
                deadline = time.monotonic() + window
            if (queue or pending) and not progressed:
                _stop_aware_sleep(poll_interval, should_stop)
    finally:
        # Any in-flight exception (contract violation, injected fault,
        # SIGINT/SIGTERM translated to KeyboardInterrupt) must not hang
        # on stuck workers: terminate instead of waiting, exactly like
        # the straggler path.
        failing = sys.exc_info()[0] is not None
        if owned:
            if abandoned or pool_dead or failing:
                terminated = pool.close(terminate=True)
                if recorder and terminated and abandoned:
                    recorder.vinc(
                        "executor.straggler_terminations", terminated
                    )
            else:
                pool.close()
        elif abandoned or pool_dead:
            # A shared pool outlives this campaign: replace the broken
            # or straggler-holding workers instead of shutting down, so
            # the daemon's other campaigns keep a live pool.  No-op if
            # the pool is closing (service shutdown) or a neighbor
            # already rebuilt the generation we saw break.
            terminated = pool.rebuild(dead_gen)
            if recorder and terminated and abandoned:
                recorder.vinc("executor.straggler_terminations", terminated)
    if merge_witness is not None and len(merge_witness) > 1:
        contracts.check_merge_commutative(
            merge_witness, context={"backend": backend, "jobs": jobs}
        )
    if recorder:
        recorder.vinc("executor.units_dispatched", len(units))
        if steal_splits:
            # One split turns one queued batch into two stealable
            # halves.  Volatile plane: how often stealing kicked in is
            # pure execution shape (jobs, timing), never results.
            recorder.vinc("executor.steal_splits", steal_splits)
            recorder.vinc("executor.batches_stolen", 2 * steal_splits)
        recorder.vgauge_max("executor.pool_workers", workers)
        wall = time.monotonic() - start
        if worker_stats:
            recorder.set_info(
                "executor.workers",
                [
                    {"pid": pid, "units": stats[0],
                     "busy_s": round(stats[1], 6)}
                    for pid, stats in sorted(worker_stats.items())
                ],
            )
            busy_total = sum(stats[1] for stats in worker_stats.values())
            if wall > 0:
                recorder.vgauge_max(
                    "executor.worker_utilization_pct",
                    round(100.0 * busy_total / (workers * wall), 1),
                )
    return [collected[i] for i in range(len(spec_list))]
