"""Execution backends: the reference simulator and the vectorized fast path.

One scenario can be executed two ways:

* ``"reference"`` — :func:`repro.engine.executor.execute_scenario`: the
  per-object :class:`~repro.rounds.simulator.RoundSimulator`.  Supports
  everything (state histories, message recording, every algorithm).
* ``"vectorized"`` — :func:`execute_scenario_vectorized`: the batched
  matrix kernel in :mod:`repro.rounds.fastpath`.  Covers exactly the
  sweep/latency/distribution workloads (Algorithm 1, summary metrics
  only) and raises :class:`FastPathUnsupported` for anything else.
* ``"auto"`` — try the fast path, transparently fall back to the
  reference simulator when the scenario is out of its scope (figure1 /
  lemma-checker style workloads that need full state histories, baseline
  algorithms, non-integer proposals).

Both backends are *exactly equivalent* where they overlap: the fast path
consumes bit-identical adversary schedules
(:meth:`~repro.adversaries.base.Adversary.adjacency_stack`) and mirrors
Algorithm 1's update order, so the resulting metrics — and therefore the
canonical campaign summaries — are byte-identical.
``tests/test_fastpath_equivalence.py`` enforces this, and
``scripts/smoke.sh`` diffs summaries from both backends on every change.
Results are tagged with the backend that produced them (journal records
only — canonical summaries stay provenance-free so they compare equal
across backends).
"""

from __future__ import annotations

from repro.analysis.stats import DecisionStats
from repro.engine.executor import ScenarioResult, execute_scenario
from repro.engine.scenarios import ScenarioSpec
from repro.graphs.matrices import root_component_count_matrix
from repro.predicates.psrcs import Psrcs
from repro.rounds.fastpath import FastPathUnsupported, simulate_fastpath

BACKEND_REFERENCE = "reference"
BACKEND_VECTORIZED = "vectorized"
BACKEND_AUTO = "auto"
BACKENDS = (BACKEND_REFERENCE, BACKEND_VECTORIZED, BACKEND_AUTO)

# Algorithms the fast path covers; everything else falls back/raises.
_FASTPATH_ALGORITHMS = frozenset({"algorithm1"})


def fastpath_supported(spec: ScenarioSpec) -> bool:
    """Whether the vectorized backend covers this scenario."""
    return spec.algorithm in _FASTPATH_ALGORITHMS


def execute_scenario_vectorized(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario through the batched matrix fast path.

    Raises
    ------
    FastPathUnsupported
        When the scenario is outside the fast path's scope (so ``auto``
        can fall back *before* any work is done).  Every other exception
        is contained into an ``"error"`` result, mirroring
        :func:`~repro.engine.executor.execute_scenario`.
    """
    if not fastpath_supported(spec):
        raise FastPathUnsupported(
            f"algorithm {spec.algorithm!r} has no vectorized fast path"
        )
    try:
        adversary = spec.build_adversary()
        fast = simulate_fastpath(
            adversary.adjacency_stack,
            list(range(spec.n)),
            purge_window=spec.opt("purge_window"),
            prune_unreachable=spec.opt("prune_unreachable", True),
            max_rounds=spec.resolved_max_rounds(),
        )
        # Run-level (once-per-scenario) analysis goes through the matrix
        # kernels, which the test suite cross-validates against the
        # set-based machinery the reference path uses — on the *same*
        # stable skeleton, so equality is structural, not approximate.
        declared_matrix = adversary.declared_stable_matrix()
        stable_matrix = (
            declared_matrix
            if declared_matrix is not None
            else fast.final_skeleton_matrix()
        )
        r_st = fast.stabilization_round(declared_matrix)
        decision_rounds = sorted(fast.decision_rounds().values())
        stats = DecisionStats(
            n=fast.n,
            num_rounds=fast.num_rounds,
            num_decided=len(decision_rounds),
            first_decision_round=decision_rounds[0] if decision_rounds else None,
            last_decision_round=decision_rounds[-1] if decision_rounds else None,
            stabilization=r_st,
            lemma11_bound=(r_st + 2 * fast.n - 1) if r_st is not None else None,
            stabilization_known=declared_matrix is not None,
        )
        values = fast.decision_values()
        proposals = set(fast.initial_values)
        return ScenarioResult(
            spec=spec,
            backend=BACKEND_VECTORIZED,
            num_rounds=fast.num_rounds,
            root_components=root_component_count_matrix(stable_matrix),
            psrcs_holds=Psrcs(spec.k).check_skeleton_matrix(stable_matrix).holds,
            distinct_decisions=len(values),
            all_decided=fast.all_decided(),
            k_agreement_holds=len(values) <= spec.k,
            validity_holds=values <= proposals,
            first_decision_round=stats.first_decision_round,
            last_decision_round=stats.last_decision_round,
            stabilization=stats.stabilization,
            lemma11_bound=stats.lemma11_bound,
            within_bound=stats.within_bound,
            decision_values=tuple(sorted(values, key=repr)),
        )
    except FastPathUnsupported:
        raise
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return ScenarioResult.failure(
            spec,
            f"{type(exc).__name__}: {exc}",
            backend=BACKEND_VECTORIZED,
        )


def execute_scenario_with_backend(
    spec: ScenarioSpec, backend: str = BACKEND_REFERENCE
) -> ScenarioResult:
    """Dispatch one scenario to a backend (the executor's worker kernel).

    ``"auto"`` prefers the fast path and silently falls back to the
    reference simulator on :class:`FastPathUnsupported`.  A *forced*
    ``"vectorized"`` backend instead reports unsupported scenarios as
    ``"error"`` results — an explicit choice must not silently execute on
    a different engine.
    """
    if backend == BACKEND_REFERENCE:
        return execute_scenario(spec)
    if backend == BACKEND_VECTORIZED:
        try:
            return execute_scenario_vectorized(spec)
        except FastPathUnsupported as exc:
            return ScenarioResult.failure(
                spec, f"FastPathUnsupported: {exc}", backend=BACKEND_VECTORIZED
            )
    if backend == BACKEND_AUTO:
        try:
            return execute_scenario_vectorized(spec)
        except FastPathUnsupported:
            return execute_scenario(spec)
    raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
