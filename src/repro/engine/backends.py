"""Execution backends: reference simulator, vectorized and batched fast paths.

One scenario can be executed three ways:

* ``"reference"`` — :func:`repro.engine.executor.execute_scenario`: the
  per-object :class:`~repro.rounds.simulator.RoundSimulator`.  Supports
  everything (state histories, message recording, every algorithm).
* ``"vectorized"`` — :func:`execute_scenario_vectorized`: the batched
  matrix kernel in :mod:`repro.rounds.fastpath`, one scenario at a time.
  Covers exactly the sweep/latency/distribution workloads (Algorithm 1,
  summary metrics only) and raises :class:`FastPathUnsupported` for
  anything else.
* ``"batched"`` — :func:`execute_scenario_batch`: the *mega*-batched
  kernel (:func:`~repro.rounds.fastpath.simulate_fastpath_batch`): a
  group of same-``n`` scenarios stacked into one ``(S, n, ...)`` tensor
  program, so every ensemble round costs one set of kernel calls for the
  whole group instead of one per scenario.  Scenario grouping happens at
  the work-list level by the batch scheduler
  (:mod:`repro.engine.scheduler`): batch-compatible specs are grouped
  *globally* by ``(n, round-budget bucket)`` and packed into planned
  batches capped by the
  :func:`~repro.rounds.fastpath.default_batch_size` memory envelope;
  the kernel compacts live lanes as batchmates retire and refills freed
  width from the batch's pending lanes.
* ``"auto"`` — prefer the fast path, transparently fall back to the
  reference simulator when the scenario is out of its scope.  On a work
  list, ``auto`` routes every batch-compatible scenario through the
  scheduler's planned batches (singletons included, so provenance tags
  stay partition-independent).

All backends are *exactly equivalent* where they overlap: the fast paths
consume bit-identical adversary schedules
(:meth:`~repro.adversaries.base.Adversary.adjacency_stack`) and mirror
Algorithm 1's update order, so the resulting metrics — and therefore the
canonical campaign summaries — are byte-identical.
``tests/test_fastpath_equivalence.py`` and
``tests/test_batched_equivalence.py`` enforce this, and
``scripts/smoke.sh`` diffs summaries from all backends on every change.
Results are tagged with the backend that produced them (journal records
only — canonical summaries stay provenance-free so they compare equal
across backends).  On the work-list paths (``"batched"`` and ``"auto"``)
the tag is a pure function of the spec, never of the batch grouping, so
journal records are byte-identical whatever the partition or worker
count.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace
from typing import Callable, Sequence

from repro.analysis.stats import DecisionStats
from repro.engine.contracts import ContractViolation, contract
from repro.engine.contracts import get as _get_contracts
from repro.engine.executor import ScenarioResult, execute_scenario
from repro.engine.scenarios import ScenarioSpec
from repro.graphs.matrices import root_component_count_matrix
from repro.predicates.psrcs import Psrcs
from repro.rounds.fastpath import (
    FastPathRun,
    FastPathTask,
    FastPathUnsupported,
    simulate_fastpath,
    simulate_fastpath_batch,
)

BACKEND_REFERENCE = "reference"
BACKEND_VECTORIZED = "vectorized"
BACKEND_BATCHED = "batched"
BACKEND_AUTO = "auto"
BACKENDS = (
    BACKEND_REFERENCE,
    BACKEND_VECTORIZED,
    BACKEND_BATCHED,
    BACKEND_AUTO,
)

# Algorithms the fast path covers; everything else falls back/raises.
_FASTPATH_ALGORITHMS = frozenset({"algorithm1"})


class SkeletonCache:
    """Bounded LRU for skeleton-only statistics, shared across batches.

    Ensemble campaigns sweep many seeds over few adversary *skeletons*:
    every seed of one cell declares the same stable matrix, so the two
    skeleton-only verdicts (root-component count, ``Psrcs(k)``) repeat
    across batches, not just within one.  Keys embed the stable matrix
    *bytes* (plus ``k`` for Psrcs), so a hit can only ever return the
    value the miss path would have computed — pure memoization, journal
    bytes are cache-invariant (the differential suite pins this).
    Hit/miss totals land on the telemetry *volatile* plane: they depend
    on batch execution order, never on results.

    Per-process state: pool workers each grow their own (their counters
    merge through the worker telemetry sidecar).  ``clear()`` exists for
    tests and memory hygiene, not correctness.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("need max_entries >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key, compute: Callable):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._data[key] = value
            if len(self._data) > self.max_entries:
                self._data.popitem(last=False)
            return value
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


#: The process-wide skeleton-statistics cache (see :class:`SkeletonCache`).
skeleton_cache = SkeletonCache()


def fastpath_supported(spec: ScenarioSpec) -> bool:
    """Whether the fast-path kernels cover this scenario's algorithm."""
    return spec.algorithm in _FASTPATH_ALGORITHMS


def _family_fast_result(spec: ScenarioSpec):
    """The family-specific fast-twin result builder for a tagged spec.

    ``None`` means the stock metric schema applies (untagged specs and
    stock-runner families).  A tagged family whose custom runner has no
    registered fast twin — or whose ``fast_supported`` predicate
    excludes this particular spec (e.g. the ablation family's
    invariant-hook arm) — raises :class:`FastPathUnsupported`, so forced
    fast backends report it and ``auto`` falls back to the family runner.
    """
    name = spec.opt("family")
    if name is None:
        return None
    from repro.engine.registry import get_family

    family = get_family(name)
    if family.runner is None:
        return None
    if family.fast_result is None:
        raise FastPathUnsupported(
            f"family {name!r} runs only on the reference simulator"
        )
    if family.fast_supported is not None and not family.fast_supported(spec):
        raise FastPathUnsupported(
            f"scenario outside family {name!r}'s fast-path scope"
        )
    return family.fast_result


def batch_compatible(spec: ScenarioSpec) -> bool:
    """Whether this spec can join a mega-batch.

    True for fast-path-supported specs whose result schema the batch
    layer knows how to build: the stock schema, or a registered family
    fast twin (``ExperimentSpec.fast_result``) whose ``fast_supported``
    predicate (if any) accepts the spec.
    """
    if not fastpath_supported(spec):
        return False
    name = spec.opt("family")
    if name is None:
        return True
    from repro.engine.registry import get_family

    try:
        family = get_family(name)
    except KeyError:
        return False
    if family.runner is None:
        return True
    if family.fast_result is None:
        return False
    return family.fast_supported is None or family.fast_supported(spec)


def fastpath_decision_stats(
    fast: FastPathRun, adversary
) -> tuple[DecisionStats, object]:
    """``(DecisionStats, declared_stable_matrix)`` for a finished run —
    the decision/stabilization assembly shared by the stock result schema
    and every family ``fast_result`` twin, so the Lemma-11 bookkeeping
    lives in exactly one place."""
    declared_matrix = adversary.declared_stable_matrix()
    r_st = fast.stabilization_round(declared_matrix)
    decision_rounds = sorted(fast.decision_rounds().values())
    stats = DecisionStats(
        n=fast.n,
        num_rounds=fast.num_rounds,
        num_decided=len(decision_rounds),
        first_decision_round=decision_rounds[0] if decision_rounds else None,
        last_decision_round=decision_rounds[-1] if decision_rounds else None,
        stabilization=r_st,
        lemma11_bound=(r_st + 2 * fast.n - 1) if r_st is not None else None,
        stabilization_known=declared_matrix is not None,
    )
    return stats, declared_matrix


def _stock_result(
    spec: ScenarioSpec,
    fast: FastPathRun,
    adversary,
    cache: SkeletonCache | None = None,
) -> ScenarioResult:
    """Build the stock metric schema from one finished fast-path run.

    Run-level (once-per-scenario) analysis goes through the matrix
    kernels, which the test suite cross-validates against the set-based
    machinery the reference path uses — on the *same* stable skeleton, so
    equality is structural, not approximate.

    ``cache`` (the process-wide :class:`SkeletonCache` on the batch
    path) memoizes the two skeleton-only statistics — root-component
    count and the ``Psrcs(k)`` verdict — keyed by the stable matrix
    bytes: every seed of one ensemble cell shares its declared stable
    skeleton, so the campaign computes each verdict once instead of
    once per lane.  Pure memoization: values are identical with or
    without it.
    """
    stats, declared_matrix = fastpath_decision_stats(fast, adversary)
    stable_matrix = (
        declared_matrix
        if declared_matrix is not None
        else fast.final_skeleton_matrix()
    )
    values = fast.decision_values()
    proposals = set(fast.initial_values)
    if cache is None:
        root_components = root_component_count_matrix(stable_matrix)
        psrcs_holds = Psrcs(spec.k).check_skeleton_matrix(stable_matrix).holds
    else:
        stable_key = stable_matrix.tobytes()
        root_components = cache.get(
            ("roots", stable_key),
            lambda: root_component_count_matrix(stable_matrix),
        )
        psrcs_holds = cache.get(
            ("psrcs", spec.k, stable_key),
            lambda: Psrcs(spec.k).check_skeleton_matrix(stable_matrix).holds,
        )
    return ScenarioResult(
        spec=spec,
        num_rounds=fast.num_rounds,
        root_components=root_components,
        psrcs_holds=psrcs_holds,
        distinct_decisions=len(values),
        all_decided=fast.all_decided(),
        k_agreement_holds=len(values) <= spec.k,
        validity_holds=values <= proposals,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(values, key=repr)),
    )


def _fastpath_task(spec: ScenarioSpec, adversary) -> FastPathTask:
    """The batch-kernel lane for one scenario."""
    return FastPathTask(
        adjacency=adversary.adjacency_stack,
        initial_values=tuple(range(spec.n)),
        purge_window=spec.opt("purge_window"),
        prune_unreachable=spec.opt("prune_unreachable", True),
        max_rounds=spec.resolved_max_rounds(),
    )


def execute_scenario_vectorized(
    spec: ScenarioSpec, recorder=None
) -> ScenarioResult:
    """Run one scenario through the per-scenario matrix fast path.

    Raises
    ------
    FastPathUnsupported
        When the scenario is outside the fast path's scope (so ``auto``
        can fall back *before* any work is done).  Every other exception
        is contained into an ``"error"`` result, mirroring
        :func:`~repro.engine.executor.execute_scenario`.
    """
    if not fastpath_supported(spec):
        raise FastPathUnsupported(
            f"algorithm {spec.algorithm!r} has no vectorized fast path"
        )
    builder = _family_fast_result(spec) or _stock_result
    try:
        adversary = spec.build_adversary()
        task = _fastpath_task(spec, adversary)
        fast = simulate_fastpath(
            task.adjacency,
            list(task.initial_values),
            purge_window=task.purge_window,
            prune_unreachable=task.prune_unreachable,
            max_rounds=task.max_rounds,
            recorder=recorder,
        )
        return replace(
            builder(spec, fast, adversary), backend=BACKEND_VECTORIZED
        )
    except FastPathUnsupported:
        raise
    except ContractViolation as exc:
        # A violated invariant must abort loudly, never become an
        # "error" journal record a resume would treat as settled.
        raise exc.with_context(
            id=spec.scenario_id, seed=spec.seed, backend=BACKEND_VECTORIZED
        ) from exc
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return ScenarioResult.failure(
            spec,
            f"{type(exc).__name__}: {exc}",
            backend=BACKEND_VECTORIZED,
        )


@contract(
    # One result per spec, in spec order, whatever fell back or failed.
    # (Mixed-n batches are legal since cross-n packing: the kernel pads
    # narrower lanes to the widest member and masks the padding.)
    post=lambda result, specs, width=None, compact=True, recorder=None: (
        len(result) == len(specs)
        and all(r.spec == s for r, s in zip(result, specs))
    ),
)
def execute_scenario_batch(
    specs: Sequence[ScenarioSpec],
    width: int | None = None,
    compact: bool = True,
    recorder=None,
) -> list[ScenarioResult]:
    """Run a group of scenarios through one mega-batched kernel.

    The scenario-level face of
    :func:`~repro.rounds.fastpath.simulate_fastpath_batch`: adversary
    schedules are pulled lane-wise through ``adjacency_stack`` into the
    shared ``(S, R, n, n)`` stack and the whole group advances round by
    round with zero per-scenario Python control flow.  Lanes need not
    share ``n``: a packed (mixed-``n``) group runs at the widest
    member's width with the padding masked by the kernel.  ``width`` caps
    the kernel's concurrent lanes (the scheduler passes the memory
    envelope; surplus lanes refill freed width as batchmates retire)
    and ``compact`` toggles live-lane compaction — both are pure
    execution-shape knobs: results are bit-identical either way.
    Isolation mirrors the per-scenario backends:

    * a spec the fast path cannot cover, or whose adversary construction
      fails, becomes an ``"error"`` result without poisoning the batch;
    * a failure *inside* the shared kernel retries every lane as a
      singleton batch, so one bad lane cannot take down its batchmates —
      and because the kernel is lane-independent, the surviving results
      are identical to what the healthy batch would have produced.

    Every result is tagged ``backend="batched"`` regardless of the group
    size, so journal bytes do not depend on how a work list was cut into
    batches.
    """
    results: dict[int, ScenarioResult] = {}
    lanes: list[tuple[int, ScenarioSpec, object, object]] = []
    tasks: list[FastPathTask] = []
    for pos, spec in enumerate(specs):
        try:
            if not fastpath_supported(spec):
                raise FastPathUnsupported(
                    f"algorithm {spec.algorithm!r} has no vectorized fast path"
                )
            builder = _family_fast_result(spec) or _stock_result
            adversary = spec.build_adversary()
            tasks.append(_fastpath_task(spec, adversary))
            lanes.append((pos, spec, adversary, builder))
        except FastPathUnsupported as exc:
            results[pos] = ScenarioResult.failure(
                spec, f"FastPathUnsupported: {exc}", backend=BACKEND_BATCHED
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            results[pos] = ScenarioResult.failure(
                spec, f"{type(exc).__name__}: {exc}", backend=BACKEND_BATCHED
            )
    if lanes:
        try:
            runs = simulate_fastpath_batch(
                tasks, width=width, compact=compact, recorder=recorder
            )
        except ContractViolation as exc:
            raise exc.with_context(
                backend=BACKEND_BATCHED, lanes=len(lanes), width=width,
                compact=compact,
            ) from exc
        except Exception as exc:  # noqa: BLE001 — isolate, then retry solo
            if len(lanes) == 1:
                pos, spec, _, _ = lanes[0]
                prefix = (
                    "FastPathUnsupported: "
                    if isinstance(exc, FastPathUnsupported)
                    else f"{type(exc).__name__}: "
                )
                results[pos] = ScenarioResult.failure(
                    spec, f"{prefix}{exc}", backend=BACKEND_BATCHED
                )
            else:
                if recorder:
                    recorder.vinc(
                        "executor.batch_singleton_retries", len(lanes)
                    )
                for pos, spec, _, _ in lanes:
                    results[pos] = execute_scenario_batch(
                        [spec], recorder=recorder
                    )[0]
        else:
            contracts = _get_contracts()
            if (
                contracts
                and len(lanes) > 1
                and contracts.sample("backends.lane_identity")
            ):
                _verify_lane_identity(
                    contracts, lanes, runs, width=width, compact=compact
                )
            cache = skeleton_cache
            hits0, misses0 = cache.hits, cache.misses
            for (pos, spec, adversary, builder), fast in zip(lanes, runs):
                try:
                    if builder is _stock_result:
                        result = _stock_result(spec, fast, adversary, cache)
                    else:
                        result = builder(spec, fast, adversary)
                    results[pos] = replace(result, backend=BACKEND_BATCHED)
                except ContractViolation as exc:
                    raise exc.with_context(
                        id=spec.scenario_id, seed=spec.seed,
                        backend=BACKEND_BATCHED, lanes=len(lanes),
                    ) from exc
                except Exception as exc:  # noqa: BLE001
                    results[pos] = ScenarioResult.failure(
                        spec,
                        f"{type(exc).__name__}: {exc}",
                        backend=BACKEND_BATCHED,
                    )
            if recorder:
                # Volatile plane: hit/miss split depends on how the
                # campaign was cut into batches and which worker ran
                # them — never on result bytes.
                recorder.vinc(
                    "backends.skeleton_cache_hits", cache.hits - hits0
                )
                recorder.vinc(
                    "backends.skeleton_cache_misses", cache.misses - misses0
                )
                recorder.vgauge_max(
                    "backends.skeleton_cache_entries", len(cache)
                )
    return [results[pos] for pos in range(len(specs))]


def _verify_lane_identity(
    contracts, lanes, runs, width, compact
) -> None:
    """Lane-compaction identity checkpoint: re-run one deterministically
    sampled lane of a just-finished mega-batch as a *singleton* kernel
    call (fresh adversary, so the pure schedule re-derives) and demand
    bit-identical decisions — the live form of the batched-equivalence
    differential suite."""
    digest = hashlib.sha256(
        "".join(spec.scenario_id for _, spec, _, _ in lanes).encode()
    ).hexdigest()
    lane = int(digest[:8], 16) % len(lanes)
    _pos, spec, _adversary, _builder = lanes[lane]
    batched = runs[lane]
    adversary = spec.build_adversary()
    task = _fastpath_task(spec, adversary)
    solo = simulate_fastpath(
        task.adjacency,
        list(task.initial_values),
        purge_window=task.purge_window,
        prune_unreachable=task.prune_unreachable,
        max_rounds=task.max_rounds,
    )
    fields = lambda run: {  # noqa: E731 — tiny local projection
        "num_rounds": run.num_rounds,
        "all_decided": run.all_decided(),
        "decision_rounds": run.decision_rounds(),
        "decision_values": sorted(run.decision_values(), key=repr),
    }
    contracts.check_lane_identity(
        fields(solo),
        fields(batched),
        context={
            "id": spec.scenario_id,
            "seed": spec.seed,
            "backend": BACKEND_BATCHED,
            "n": spec.n,
            "lane": lane,
            "lanes": len(lanes),
            "width": width,
            "compact": compact,
        },
    )


def execute_scenario_with_backend(
    spec: ScenarioSpec, backend: str = BACKEND_REFERENCE, recorder=None
) -> ScenarioResult:
    """Dispatch one scenario to a backend (the executor's worker kernel).

    ``"auto"`` prefers the fast path and silently falls back to the
    reference simulator on :class:`FastPathUnsupported`.  A *forced*
    ``"vectorized"`` or ``"batched"`` backend instead reports unsupported
    scenarios as ``"error"`` results — an explicit choice must not
    silently execute on a different engine.  (``"batched"`` on a single
    scenario runs a one-lane batch: semantically the vectorized kernel,
    tagged ``"batched"`` so provenance does not depend on grouping.)
    """
    if backend == BACKEND_REFERENCE:
        return execute_scenario(spec)
    if backend == BACKEND_VECTORIZED:
        try:
            return execute_scenario_vectorized(spec, recorder=recorder)
        except FastPathUnsupported as exc:
            return ScenarioResult.failure(
                spec, f"FastPathUnsupported: {exc}", backend=BACKEND_VECTORIZED
            )
    if backend == BACKEND_BATCHED:
        return execute_scenario_batch([spec], recorder=recorder)[0]
    if backend == BACKEND_AUTO:
        try:
            return execute_scenario_vectorized(spec, recorder=recorder)
        except FastPathUnsupported:
            return execute_scenario(spec)
    raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
