"""Engine telemetry: counters, gauges, histograms, and span timers.

Every engine layer (scheduler, executor, fastpath kernel, store) accepts
an optional :class:`Recorder`.  When none is supplied the layers fall
back to the module-level :data:`NULL` singleton, whose methods are
no-ops and which is *falsy* — hot loops guard instrumentation with
``if recorder:`` so the disabled path costs one branch, and the kernel
accumulates plain local ints that are flushed once per call.

Metrics live on two planes, and the distinction is load-bearing:

``deterministic``
    Pure functions of the scenario set: per-lane kernel work (rounds,
    decisions, RNG fetches), scheduler grouping (including the
    cross-``n`` packing accounting — ``scheduler.padded_lane_width``,
    ``scheduler.wasted_pad_cells``), result counts, journal bytes.
    These are **invariant** across ``--jobs``, batch shuffle,
    compaction on/off, work stealing, and the active array namespace —
    the same contract the journal obeys — and the test suite pins that
    invariance.

``volatile``
    Execution-shape metrics: wall-clock durations, batch cuts after
    jobs-splitting, steal activity (``executor.steal_splits``,
    ``executor.batches_stolen``), skeleton-cache hits/misses,
    compaction/refill events, queue waits, per-worker utilization.
    Useful for profiling, excluded from invariance comparisons.

Workers build their own ``Recorder``, return ``snapshot()`` alongside
chunk payloads, and the parent ``merge()``s them.  Every merge operation
is commutative and associative (counter sums, gauge max, histogram
bucket sums, duration count/total/max), so the merged result does not
depend on worker count or completion order.

The ``campaign run --metrics[=PATH]`` flag writes the merged snapshot as
a schema-versioned JSON sidecar next to the journal; journal and summary
bytes are untouched.  ``campaign report --metrics`` renders it as a
table via :func:`render_sidecar`.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "SIDECAR_SCHEMA",
    "Recorder",
    "NullRecorder",
    "NULL",
    "read_sidecar",
    "render_sidecar",
    "validate_sidecar",
]

#: Version stamp written into every metrics sidecar.  Bump on any
#: backwards-incompatible change to the snapshot layout.
SIDECAR_SCHEMA = 1

#: Default histogram bucket upper bounds (powers of two).  Bucket ``i``
#: counts values ``<= edges[i]`` (and ``> edges[i-1]``); one overflow
#: bucket catches everything above the last edge.
DEFAULT_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class _Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Iterable[float] = DEFAULT_EDGES):
        self.edges = tuple(edges)
        if not self.edges or list(self.edges) != sorted(set(self.edges)):
            raise ValueError("histogram edges must be sorted and unique")
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, data: dict[str, Any]) -> None:
        if tuple(data["edges"]) != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{tuple(data['edges'])} vs {self.edges}"
            )
        for i, c in enumerate(data["counts"]):
            self.counts[i] += c
        self.count += data["count"]
        self.total += data["sum"]
        for attr, pick in (("min", min), ("max", max)):
            incoming = data[attr]
            if incoming is not None:
                current = getattr(self, attr)
                setattr(
                    self,
                    attr,
                    incoming if current is None else pick(current, incoming),
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class _Span:
    __slots__ = ("_recorder", "_name", "_t0")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._recorder.add_duration(
            self._name, time.perf_counter() - self._t0
        )
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Two-plane metrics recorder.

    ``inc``/``gauge_max``/``observe`` write the deterministic plane;
    the ``v``-prefixed twins write the volatile plane.  ``span`` /
    ``add_duration`` record wall-clock durations (always volatile).
    """

    __slots__ = ("_dc", "_dg", "_dh", "_vc", "_vg", "_vh", "_dur", "_info")

    def __init__(self) -> None:
        self._dc: dict[str, int] = {}
        self._dg: dict[str, float] = {}
        self._dh: dict[str, _Histogram] = {}
        self._vc: dict[str, int] = {}
        self._vg: dict[str, float] = {}
        self._vh: dict[str, _Histogram] = {}
        # name -> [count, total_s, max_s]
        self._dur: dict[str, list[float]] = {}
        self._info: dict[str, Any] = {}

    def __bool__(self) -> bool:
        return True

    # -- deterministic plane ------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        self._dc[name] = self._dc.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        if value > self._dg.get(name, float("-inf")):
            self._dg[name] = value

    def observe(
        self, name: str, value: float, edges: Iterable[float] = DEFAULT_EDGES
    ) -> None:
        hist = self._dh.get(name)
        if hist is None:
            hist = self._dh[name] = _Histogram(edges)
        hist.observe(value)

    # -- volatile plane -----------------------------------------------
    def vinc(self, name: str, value: int = 1) -> None:
        self._vc[name] = self._vc.get(name, 0) + value

    def vgauge_max(self, name: str, value: float) -> None:
        if value > self._vg.get(name, float("-inf")):
            self._vg[name] = value

    def vobserve(
        self, name: str, value: float, edges: Iterable[float] = DEFAULT_EDGES
    ) -> None:
        hist = self._vh.get(name)
        if hist is None:
            hist = self._vh[name] = _Histogram(edges)
        hist.observe(value)

    def add_duration(self, name: str, seconds: float) -> None:
        entry = self._dur.get(name)
        if entry is None:
            self._dur[name] = [1, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds > entry[2]:
                entry[2] = seconds

    def span(self, name: str) -> _Span:
        """``with recorder.span("campaign.run_s"): ...``"""
        return _Span(self, name)

    def set_info(self, key: str, value: Any) -> None:
        """Attach a free-form (JSON-serializable) annotation.

        Parent-side only; :meth:`merge` refuses conflicting keys so a
        snapshot merge can never silently drop worker data.
        """
        self._info[key] = value

    # -- reading ------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of a counter, searching both planes."""
        return self._dc.get(name, self._vc.get(name, 0))

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of everything recorded so far."""
        return {
            "deterministic": {
                "counters": dict(self._dc),
                "gauges": dict(self._dg),
                "histograms": {
                    k: h.to_dict() for k, h in self._dh.items()
                },
            },
            "volatile": {
                "counters": dict(self._vc),
                "gauges": dict(self._vg),
                "histograms": {
                    k: h.to_dict() for k, h in self._vh.items()
                },
                "durations": {
                    k: {"count": int(v[0]), "total_s": v[1], "max_s": v[2]}
                    for k, v in self._dur.items()
                },
                "info": dict(self._info),
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another recorder into this one.

        Commutative and associative: merging worker snapshots in any
        completion order yields the same state.
        """
        if not snapshot:
            return
        det = snapshot.get("deterministic", {})
        vol = snapshot.get("volatile", {})
        for name, value in det.get("counters", {}).items():
            self.inc(name, value)
        for name, value in det.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, data in det.get("histograms", {}).items():
            self._merge_hist(self._dh, name, data)
        for name, value in vol.get("counters", {}).items():
            self.vinc(name, value)
        for name, value in vol.get("gauges", {}).items():
            self.vgauge_max(name, value)
        for name, data in vol.get("histograms", {}).items():
            self._merge_hist(self._vh, name, data)
        for name, dur in vol.get("durations", {}).items():
            entry = self._dur.get(name)
            if entry is None:
                self._dur[name] = [
                    dur["count"], dur["total_s"], dur["max_s"]
                ]
            else:
                entry[0] += dur["count"]
                entry[1] += dur["total_s"]
                if dur["max_s"] > entry[2]:
                    entry[2] = dur["max_s"]
        for key, value in vol.get("info", {}).items():
            if key in self._info and self._info[key] != value:
                raise ValueError(
                    f"conflicting info key in merged snapshot: {key!r}"
                )
            self._info[key] = value

    @staticmethod
    def _merge_hist(
        store: dict[str, _Histogram], name: str, data: dict[str, Any]
    ) -> None:
        hist = store.get(name)
        if hist is None:
            hist = store[name] = _Histogram(data["edges"])
        hist.merge(data)

    # -- sidecar ------------------------------------------------------
    def to_sidecar(self, label: str = "campaign") -> dict[str, Any]:
        return {
            "schema": SIDECAR_SCHEMA,
            "label": label,
            **self.snapshot(),
        }

    def write_sidecar(self, path: str | Path, label: str = "campaign") -> Path:
        """Write the schema-versioned metrics sidecar as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_sidecar(label), indent=2, sort_keys=True)
            + "\n"
        )
        return path


class NullRecorder:
    """Falsy no-op recorder: the zero-cost-when-off singleton.

    ``if recorder:`` is False, so guarded instrumentation blocks are
    skipped entirely; unguarded calls (cold paths) dispatch to no-ops.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(
        self, name: str, value: float, edges: Iterable[float] = DEFAULT_EDGES
    ) -> None:
        pass

    def vinc(self, name: str, value: int = 1) -> None:
        pass

    def vgauge_max(self, name: str, value: float) -> None:
        pass

    def vobserve(
        self, name: str, value: float, edges: Iterable[float] = DEFAULT_EDGES
    ) -> None:
        pass

    def add_duration(self, name: str, seconds: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def set_info(self, key: str, value: Any) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {}

    def merge(self, snapshot: dict[str, Any]) -> None:
        pass


#: Shared no-op recorder used as the default everywhere.
NULL = NullRecorder()


# ---------------------------------------------------------------------
# Sidecar reading / validation / rendering
# ---------------------------------------------------------------------

def validate_sidecar(data: Any) -> dict[str, Any]:
    """Check sidecar structure; raise ``ValueError`` on any mismatch."""
    if not isinstance(data, dict):
        raise ValueError("metrics sidecar must be a JSON object")
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise ValueError(f"bad sidecar schema field: {schema!r}")
    if schema > SIDECAR_SCHEMA:
        raise ValueError(
            f"sidecar schema {schema} is newer than supported "
            f"{SIDECAR_SCHEMA}"
        )
    for plane in ("deterministic", "volatile"):
        section = data.get(plane)
        if not isinstance(section, dict):
            raise ValueError(f"sidecar missing {plane!r} plane")
        for kind in ("counters", "gauges", "histograms"):
            if not isinstance(section.get(kind), dict):
                raise ValueError(f"sidecar {plane}.{kind} must be an object")
        for name, hist in section["histograms"].items():
            edges = hist.get("edges")
            counts = hist.get("counts")
            if (
                not isinstance(edges, list)
                or not isinstance(counts, list)
                or len(counts) != len(edges) + 1
            ):
                raise ValueError(f"sidecar histogram {name!r} malformed")
            if sum(counts) != hist.get("count"):
                raise ValueError(
                    f"sidecar histogram {name!r} bucket/count mismatch"
                )
    vol = data["volatile"]
    if not isinstance(vol.get("durations"), dict):
        raise ValueError("sidecar volatile.durations must be an object")
    for name, dur in vol["durations"].items():
        if not all(k in dur for k in ("count", "total_s", "max_s")):
            raise ValueError(f"sidecar duration {name!r} malformed")
    return data


def read_sidecar(path: str | Path) -> dict[str, Any]:
    """Load and validate a metrics sidecar written by ``--metrics``."""
    with open(path) as fh:
        return validate_sidecar(json.load(fh))


def _section(name: str) -> str:
    return name.split(".", 1)[0] if "." in name else "misc"


def render_sidecar(data: dict[str, Any]) -> str:
    """Render a sidecar as the ``campaign report --metrics`` table."""
    from repro.analysis.reporting import format_table

    rows: list[list[str]] = []
    for plane_key, plane_tag in (("deterministic", "det"),
                                 ("volatile", "vol")):
        plane = data[plane_key]
        for name, value in plane["counters"].items():
            rows.append([_section(name), name, "counter", plane_tag,
                         str(value)])
        for name, value in plane["gauges"].items():
            rows.append([_section(name), name, "gauge", plane_tag,
                         f"{value:g}"])
        for name, hist in plane["histograms"].items():
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            rows.append([
                _section(name), name, "histogram", plane_tag,
                f"n={hist['count']} mean={mean:.1f} max={hist['max']}",
            ])
    for name, dur in data["volatile"]["durations"].items():
        rows.append([
            _section(name), name, "duration", "vol",
            f"n={dur['count']} total={dur['total_s']:.3f}s "
            f"max={dur['max_s']:.3f}s",
        ])
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    lines = [
        f"metrics sidecar (schema {data['schema']}, "
        f"label {data.get('label', '?')})",
        format_table(
            ["section", "metric", "kind", "plane", "value"], rows
        ),
    ]
    info = data["volatile"].get("info") or {}
    for key in sorted(info):
        lines.append(f"{key}: {json.dumps(info[key], sort_keys=True)}")
    return "\n".join(lines)
