"""The lane-compacting batch scheduler: plan a campaign into packed batches.

Algorithm-1 ensembles are heterogeneous by construction — decision latency
varies with the adversary, the noise level and ``n`` — so two things used
to waste fast-path width:

* the work-list segmentation only packed *contiguous* same-``n`` runs of
  batch-compatible specs, so interleaved grids (a noise×``n`` sweep, a
  family whose reference-only arms sit between vectorizable ones, a
  resumed campaign's scattered remainder) fragmented into small batches;
* under a process pool, order-chunking cut the work list *before*
  batching, so chunk boundaries broke batches again.

This module fixes both by planning the **whole campaign** before
execution:

* :func:`plan_batches` groups batch-compatible scenarios *globally* —
  not just contiguous runs — by ``(n, round-budget bucket)``, packs each
  group into :class:`PlannedBatch` units sized by the
  :func:`~repro.rounds.fastpath.default_batch_size` memory envelope
  (overridable via ``campaign run --batch-memory``), and emits a
  deterministic :class:`BatchPlan`.  Planning is a pure function of the
  work list (and the envelope), so the plan — and therefore every
  journal record — is independent of worker count and chunking.
* :func:`run_planned_batch` executes one planned batch through the
  mega-batched kernel with lane **compaction** on (retired lanes are
  compressed out and freed width is refilled from the batch's pending
  lanes — see :func:`~repro.rounds.fastpath.simulate_fastpath_batch`),
  preserving the ``auto`` backend's transparent per-lane fallback.
* the executor ships whole planned batches to pool workers
  (:func:`repro.engine.executor.execute_scenarios`), so pool chunking
  can no longer break batches.

Every mapping back to journal order is by work-list index: results are
re-sorted into grid order by the executor and journal record *bytes* are
a pure function of the spec, so store bytes are invariant under batch
partitioning, compaction on/off and ``--jobs`` (the differential suite
pins this).

:class:`ProgressReporter` is the campaign-progress face of the plan:
``campaign run`` derives completed/total, scenarios/s, batches
completed/planned and an ETA from it, emitted to *stderr* so stdout
summaries stay byte-identical.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.engine.backends import (
    BACKEND_AUTO,
    batch_compatible,
    execute_scenario_batch,
)
from repro.engine.contracts import contract
from repro.engine.contracts import get as _get_contracts
from repro.engine.executor import ScenarioResult
from repro.engine.scenarios import ScenarioSpec
from repro.rounds.fastpath import default_batch_size, lane_bytes

IndexedSpec = tuple[int, ScenarioSpec]

#: Lanes per planned batch, as a multiple of the kernel width: the kernel
#: runs ``width`` concurrent lanes and refills freed width from the
#: batch's own pending queue, so one planned batch amortizes several
#: envelope-widths of work without exceeding the memory budget.
BATCH_DEPTH = 4


def round_bucket(max_rounds: int) -> int:
    """The round-budget bucket of a scenario: the power-of-two ceiling.

    Batches share one ``(S, R, n, n)`` schedule stack sized for the
    largest round budget in the batch, so mixing a 10-round lane with a
    500-round lane would waste memory (and shrink the width envelope)
    for everyone.  Bucketing by power-of-two ceiling bounds that waste
    at 2x while keeping the grouping deterministic and coarse enough
    that whole ensembles land in one bucket.
    """
    if max_rounds < 1:
        raise ValueError("need max_rounds >= 1")
    return 1 << int(max_rounds - 1).bit_length()


@dataclass(frozen=True)
class PlannedBatch:
    """One packed tensor batch, sharing a round-budget bucket.

    ``items`` holds ``(work-list index, spec)`` pairs in work-list order;
    ``width`` is the kernel's concurrent-lane cap (the memory envelope) —
    ``len(items)`` may exceed it, in which case the kernel refills freed
    width from the remaining lanes as earlier ones retire.  ``n`` is the
    batch's *tensor* width: without ``pack_widths`` every member shares
    it; under cross-``n`` packing it is the widest member's ``n`` and
    narrower lanes run padded up to it (the kernel masks the padding, so
    results are bit-identical either way).
    """

    n: int
    bucket: int
    width: int
    items: tuple[IndexedSpec, ...]

    @property
    def lanes(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class BatchPlan:
    """A deterministic execution plan for one campaign work list.

    ``batches`` cover every batch-compatible scenario (grouped globally
    by ``(n, bucket)``, first-appearance order); ``singles`` are the
    scenarios only the per-scenario dispatch can run, in work-list
    order.  The plan is a pure function of the work list and the memory
    envelope — never of worker count or chunking.
    """

    batches: tuple[PlannedBatch, ...]
    singles: tuple[IndexedSpec, ...]

    @property
    def total(self) -> int:
        return sum(b.lanes for b in self.batches) + len(self.singles)

    @property
    def batched_lanes(self) -> int:
        return sum(b.lanes for b in self.batches)

    def describe(self) -> str:
        """One human line: how the work list was packed."""
        return (
            f"{len(self.batches)} batches ({self.batched_lanes} lanes) + "
            f"{len(self.singles)} singles"
        )


#: Smallest lane count worth cutting a batch down to when spreading a
#: group across workers: the mega-batch kernel's per-round amortization
#: has mostly plateaued by here, so thinner batches trade little kernel
#: efficiency for pool parallelism.
MIN_SPLIT_LANES = 8


def estimate_batch_bytes(n: int, max_rounds: int, lanes: int = 1) -> int:
    """Working-set bytes of a planned batch running ``lanes`` concurrent
    lanes at tensor width ``n``.

    This is the quantity the ``--batch-memory`` envelope bounds.  Under
    cross-``n`` packing, ``n`` must be the batch's *padded* width (its
    widest member), never a member's nominal ``n`` — a packed lane
    occupies a full padded slice of every kernel tensor, so sizing the
    envelope from nominal widths would overflow it by up to
    ``(pad/n)^3`` per lane.
    """
    if lanes < 1:
        raise ValueError("need lanes >= 1")
    return lanes * lane_bytes(n, max_rounds)


def can_split(batch: PlannedBatch) -> bool:
    """Whether a planned batch is worth cutting in half for stealing."""
    return batch.lanes >= 2 * MIN_SPLIT_LANES


def split_planned(batch: PlannedBatch) -> tuple[PlannedBatch, PlannedBatch]:
    """Cut a planned batch in two at the deterministic midpoint.

    The split point (``lanes // 2``) is a pure function of the batch —
    and the batch is a pure function of the plan — so work stealing
    built on this cut can never leak into journal bytes or the
    deterministic telemetry plane: both halves keep the parent's tensor
    width and kernel envelope, and every lane still runs its exact
    per-scenario program.
    """
    if not can_split(batch):
        raise ValueError(
            f"batch of {batch.lanes} lanes is below the "
            f"{2 * MIN_SPLIT_LANES}-lane split threshold"
        )
    mid = batch.lanes // 2
    return (
        PlannedBatch(
            n=batch.n, bucket=batch.bucket, width=batch.width,
            items=batch.items[:mid],
        ),
        PlannedBatch(
            n=batch.n, bucket=batch.bucket, width=batch.width,
            items=batch.items[mid:],
        ),
    )


def plan_batches(
    items: Iterable[IndexedSpec],
    batch_memory: int | None = None,
    jobs: int = 1,
    pack_widths: bool = False,
    recorder=None,
    _verify: bool = True,
) -> BatchPlan:
    """Plan a work list into packed tensor batches.

    Batch-compatible specs are grouped globally by ``(n, round-budget
    bucket)`` — interleaved grids and non-contiguous resume remainders
    pack as tightly as a sorted work list — then each group is cut into
    :class:`PlannedBatch` units of at most ``width * BATCH_DEPTH`` lanes,
    where ``width`` is the group's
    :func:`~repro.rounds.fastpath.default_batch_size` memory envelope
    (``batch_memory`` overrides the envelope budget, in bytes).
    Everything else becomes a single.

    ``pack_widths`` drops ``n`` from the grouping key: every
    batch-compatible spec in a round bucket lands in *one* group, run at
    the widest member's ``n`` with narrower lanes padded (cross-``n``
    packing).  A mixed-``n`` grid then becomes one tensor program
    instead of one group per ``n``, at the cost of padded cells — see
    the ``scheduler.padded_lane_width`` / ``scheduler.wasted_pad_cells``
    counters for how much.  The width envelope is sized from the
    *padded* width (:func:`estimate_batch_bytes`), so ``batch_memory``
    bounds the real tensor program, and the kernel masks padding out of
    every commit point, so results and journal bytes are identical to
    the unpacked plan.

    ``jobs`` is the pool width the plan will be dispatched across: a
    group large enough to keep several workers busy is cut into at
    least ``jobs`` batches (never thinner than
    :data:`MIN_SPLIT_LANES` lanes), so a homogeneous campaign cannot
    serialize onto one worker.  Deterministic: same work list, envelope,
    packing and jobs, same plan — and execution results are a pure
    function of the spec, so the cut never shows in journal bytes.
    """
    items = list(items)
    groups: dict[tuple[int, int], list[IndexedSpec]] = {}
    singles: list[IndexedSpec] = []
    for idx, spec in items:
        if batch_compatible(spec):
            bucket = round_bucket(spec.resolved_max_rounds())
            key = (0, bucket) if pack_widths else (spec.n, bucket)
            groups.setdefault(key, []).append((idx, spec))
        else:
            singles.append((idx, spec))
    batches: list[PlannedBatch] = []
    padded_lane_width = wasted_pad_cells = 0
    max_batch_bytes = 0
    for (_, bucket), members in groups.items():
        # The group's tensor width: the widest member (== every member
        # without pack_widths).  Sizing the envelope from it is what
        # keeps --batch-memory honest under packing.
        n = max(spec.n for _, spec in members)
        rmax = max(spec.resolved_max_rounds() for _, spec in members)
        width = default_batch_size(n, rmax, budget_bytes=batch_memory)
        for _, spec in members:
            if spec.n < n:
                padded_lane_width += n
                wasted_pad_cells += n * n - spec.n * spec.n
        cap = width * BATCH_DEPTH
        if jobs > 1:
            per_worker = -(-len(members) // jobs)  # ceil
            cap = min(cap, max(per_worker, min(width, MIN_SPLIT_LANES)))
        for lo in range(0, len(members), cap):
            chunk = tuple(members[lo : lo + cap])
            max_batch_bytes = max(
                max_batch_bytes,
                estimate_batch_bytes(n, rmax, min(width, len(chunk))),
            )
            batches.append(
                PlannedBatch(n=n, bucket=bucket, width=width, items=chunk)
            )
    plan = BatchPlan(batches=tuple(batches), singles=tuple(singles))
    if recorder:
        # Deterministic plane: the global grouping is a pure function of
        # the work list and the packing mode (jobs only changes how
        # groups are *cut*; padding is decided per group, not per cut).
        recorder.inc("scheduler.scenarios", plan.total)
        recorder.inc("scheduler.singles", len(plan.singles))
        recorder.inc("scheduler.groups", len(groups))
        recorder.inc("scheduler.batched_lanes", plan.batched_lanes)
        if pack_widths:
            recorder.inc("scheduler.padded_lane_width", padded_lane_width)
            recorder.inc("scheduler.wasted_pad_cells", wasted_pad_cells)
        for members in groups.values():
            recorder.observe("scheduler.group_lanes", len(members))
            recorder.gauge_max("scheduler.max_group_lanes", len(members))
        # Volatile plane: batch cuts (and therefore packing efficiency)
        # depend on the jobs split.
        recorder.vinc("scheduler.batches_planned", len(plan.batches))
        slots = sum(
            b.width * -(-b.lanes // b.width) for b in plan.batches
        )
        recorder.vinc("scheduler.lane_slots", slots)
        recorder.vinc(
            "scheduler.wasted_lane_width", slots - plan.batched_lanes
        )
        if slots:
            recorder.vgauge_max(
                "scheduler.packing_efficiency_pct",
                round(100.0 * plan.batched_lanes / slots, 1),
            )
        if max_batch_bytes:
            recorder.vgauge_max("scheduler.max_batch_bytes", max_batch_bytes)
    if _verify:
        contracts = _get_contracts()
        if contracts and contracts.sample("scheduler.plan_determinism"):
            # Plan determinism: re-planning the identical work list must
            # reproduce the plan bit-for-bit (the invariant that makes
            # journal bytes independent of when/where planning happens).
            contracts.check_plan(
                plan,
                lambda: plan_batches(
                    items, batch_memory, jobs, pack_widths, recorder=None,
                    _verify=False,
                ),
                context={
                    "scenarios": len(items),
                    "batch_memory": batch_memory,
                    "jobs": jobs,
                    "pack_widths": pack_widths,
                },
            )
    return plan


@contract(
    post=lambda result, batch, backend, compact=True, recorder=None: (
        [idx for idx, _ in result] == [idx for idx, _ in batch.items]
    )
)
def run_planned_batch(
    batch: PlannedBatch, backend: str, compact: bool = True, recorder=None
) -> list[tuple[int, ScenarioResult]]:
    """Execute one planned batch; returns ``(work-list index, result)``.

    The kernel runs ``batch.width`` concurrent lanes with compaction on,
    refilling freed width from the batch's own pending lanes.  Under
    ``"auto"`` a lane the fast path turns out not to cover re-runs
    through the per-scenario ``auto`` dispatch (and thus the reference
    simulator) instead of surfacing a forced-backend error, exactly as
    the pre-scheduler segmentation did.
    """
    from repro.engine.executor import STATUS_ERROR, _run_one

    specs = [spec for _, spec in batch.items]
    results = execute_scenario_batch(
        specs, width=batch.width, compact=compact, recorder=recorder
    )
    if backend == BACKEND_AUTO:
        results = [
            _run_one(spec, BACKEND_AUTO, recorder=recorder)
            if result.status == STATUS_ERROR
            and result.error is not None
            and result.error.startswith("FastPathUnsupported: ")
            else result
            for spec, result in zip(specs, results)
        ]
    return [
        (idx, result)
        for (idx, _), result in zip(batch.items, results)
    ]


def iter_plan(
    plan: BatchPlan, backend: str, compact: bool = True, recorder=None
) -> Iterator[tuple[int, ScenarioResult]]:
    """Execute an already-computed plan, yielding ``(index, result)``.

    The serial face of the scheduler (the pool path ships the same
    planned batches to workers instead).  Yield order is plan order —
    batches first, then singles — but every result carries its work-list
    index, and journal record bytes are a pure function of the spec, so
    consumers that need grid order re-sort by index and summaries stay
    byte-identical to any other execution order.
    """
    from repro.engine.executor import _run_one

    for batch in plan.batches:
        yield from run_planned_batch(
            batch, backend, compact=compact, recorder=recorder
        )
    for idx, spec in plan.singles:
        yield idx, _run_one(spec, backend, recorder=recorder)


def iter_planned(
    items: Iterable[IndexedSpec],
    backend: str,
    batch_memory: int | None = None,
    compact: bool = True,
    pack_widths: bool = False,
    recorder=None,
) -> Iterator[tuple[int, ScenarioResult]]:
    """Plan a work list and execute it: :func:`plan_batches` +
    :func:`iter_plan` in one call.

    ``recorder`` reaches only the *execution* half: pool workers re-plan
    their own chunk through this helper, and letting that inner plan
    record scheduler metrics would double-count them (the parent
    campaign's :func:`plan_batches` is the single scheduler-metrics
    source)."""
    yield from iter_plan(
        plan_batches(items, batch_memory, pack_widths=pack_widths),
        backend, compact=compact, recorder=recorder,
    )


# ----------------------------------------------------------------------
# Campaign progress (stderr-only; stdout summaries stay byte-identical)
# ----------------------------------------------------------------------
def _fmt_eta(seconds: float) -> str:
    if not math.isfinite(seconds):
        return "?"
    seconds = max(0, int(round(seconds)))
    minutes, sec = divmod(seconds, 60)
    if minutes >= 60:
        hours, minutes = divmod(minutes, 60)
        return f"{hours}:{minutes:02d}:{sec:02d}"
    return f"{minutes}:{sec:02d}"


class ProgressReporter:
    """Family-aware campaign progress lines, derived from the batch plan.

    Emits at most one line per ``interval`` seconds (plus a final line)
    of the form::

        [latency] 96/252 scenarios (38%) · 131.2/s · batch 4/11 · eta 0:01

    ``plan`` (a :class:`BatchPlan`) supplies the batch column: a planned
    batch counts as completed when all of its lanes have reported.
    Writes to ``stream`` (default: ``sys.stderr``) so machine-read
    stdout — campaign tables, canonical summaries — is never touched.
    ``interval`` is floored at 0.1 s so tiny fast campaigns cannot spam
    one line per scenario.  A live :class:`~repro.engine.telemetry.Recorder`
    lets the reporter surface executor failure counters as they happen.
    """

    def __init__(
        self,
        total: int,
        label: str | None = None,
        plan: BatchPlan | None = None,
        stream: TextIO | None = None,
        interval: float = 0.5,
        clock=time.monotonic,
        recorder=None,
    ) -> None:
        self.total = total
        self.label = label or "campaign"
        self.stream = stream if stream is not None else sys.stderr
        self.interval = max(interval, 0.1)
        self.recorder = recorder
        self._clock = clock
        self._start = clock()
        self._last_emit = float("-inf")
        self._done = 0
        self.num_batches = 0
        self._batch_of: dict[str, int] = {}
        self._batch_left: list[int] = []
        self._batches_done = 0
        if plan is not None:
            self.num_batches = len(plan.batches)
            self._batch_left = [batch.lanes for batch in plan.batches]
            for b, batch in enumerate(plan.batches):
                for _, spec in batch.items:
                    self._batch_of[spec.scenario_id] = b

    def update(self, result: ScenarioResult) -> None:
        """Record one completed scenario; emit a line when due."""
        self._done += 1
        b = self._batch_of.get(result.scenario_id)
        if b is not None and self._batch_left[b] > 0:
            self._batch_left[b] -= 1
            if self._batch_left[b] == 0:
                self._batches_done += 1
        now = self._clock()
        if self._done == self.total or now - self._last_emit >= self.interval:
            self._last_emit = now
            self._emit(now)

    def snapshot(self) -> dict:
        """Machine-readable progress (the campaign service's status
        endpoint).  Same numbers the human line prints: completed/total,
        rate, plan-derived batch progress, and an ETA in seconds
        (``None`` until there is a measurable rate)."""
        now = self._clock()
        elapsed = now - self._start
        rate = self._done / elapsed if elapsed > 1e-3 else 0.0
        remaining = self.total - self._done
        return {
            "done": self._done,
            "total": self.total,
            "elapsed_s": round(elapsed, 3),
            "rate_per_s": round(rate, 3) if rate > 0 else None,
            "batches_done": self._batches_done,
            "batches_planned": self.num_batches,
            "eta_s": (
                round(remaining / rate, 3) if remaining and rate > 0 else None
            ),
        }

    def _emit(self, now: float) -> None:
        # Guard the rate (and the ETA derived from it) against a
        # zero-elapsed first emission: a sub-millisecond clock delta
        # yields an absurd rate and a divide-toward-infinity ETA.
        elapsed = now - self._start
        rate = self._done / elapsed if elapsed > 1e-3 else 0.0
        pct = 100 * self._done // self.total if self.total else 100
        shown = f"{rate:.1f}" if rate > 0 else "?"
        line = (
            f"[{self.label}] {self._done}/{self.total} scenarios "
            f"({pct}%) · {shown}/s"
        )
        if self.num_batches:
            line += f" · batch {self._batches_done}/{self.num_batches}"
        if self.recorder:
            failed = self.recorder.counter(
                "executor.results_error"
            ) + self.recorder.counter("executor.results_timeout")
            if failed:
                line += f" · {failed} failed"
        remaining = self.total - self._done
        if remaining and rate > 0:
            line += f" · eta {_fmt_eta(remaining / rate)}"
        print(line, file=self.stream, flush=True)
