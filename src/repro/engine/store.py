"""Append-only JSONL result store with resume-by-hash.

One line per executed scenario.  The journal is *append-only* and ordered
by completion (nondeterministic under a parallel run); determinism is
recovered at read time by keying every record on the scenario's stable
content-hash id.  :meth:`ResultStore.write_summary` then emits a
*canonical* summary — records re-ordered into grid order with sorted JSON
keys — which is byte-identical however many workers produced the journal.

Resume: a campaign asks :meth:`ResultStore.completed_ids` which scenarios
already have a terminal record (``ok`` or deterministic ``error``;
``timeout`` records are retriable) and only executes the rest.  Partial
trailing lines from a killed writer are tolerated and skipped.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Iterator

from repro.engine import faults as _faults
from repro.engine.contracts import get as _get_contracts
from repro.engine.executor import (
    STATUS_OK,
    ScenarioResult,
    is_terminal,
)
from repro.engine.scenarios import ScenarioSpec
from repro.engine.telemetry import NULL, Recorder

log = logging.getLogger("repro.engine.store")

SCHEMA_VERSION = 1


class SchemaVersionError(ValueError):
    """A journal record was written by a newer schema than this code
    supports.  Deliberately *not* swallowed by the corrupt-line
    tolerance: resuming against a forward-incompatible journal must fail
    loudly, not silently re-execute the whole campaign."""

_METRIC_FIELDS = (
    "num_rounds",
    "root_components",
    "psrcs_holds",
    "distinct_decisions",
    "all_decided",
    "k_agreement_holds",
    "validity_holds",
    "first_decision_round",
    "last_decision_round",
    "stabilization",
    "lemma11_bound",
    "within_bound",
)


def encode_result(result: ScenarioResult) -> dict:
    """The versioned JSON record of one result (inverse of
    :func:`decode_result`).

    Deliberately excludes the producing backend: two backends that
    compute the same metrics must encode to the same record, which is
    what makes canonical summaries byte-comparable across backends.
    Journal lines add the backend as provenance via :func:`journal_line`.
    """
    record = {
        "schema": SCHEMA_VERSION,
        "id": result.scenario_id,
        "spec": result.spec.to_dict(),
        "status": result.status,
        "error": result.error,
        "metrics": {name: getattr(result, name) for name in _METRIC_FIELDS},
        "decision_values": list(result.decision_values),
    }
    if result.extras:
        # Family-specific extras.  Only written when present, so records
        # of the core families keep their historical bytes.
        record["extras"] = {k: v for k, v in result.extras}
    return record


def decode_result(record: dict) -> ScenarioResult:
    """Rebuild a :class:`ScenarioResult` from its JSON record."""
    schema = record.get("schema", SCHEMA_VERSION)
    if schema > SCHEMA_VERSION:
        raise SchemaVersionError(
            f"record schema {schema} is newer than supported "
            f"{SCHEMA_VERSION}"
        )
    metrics = record.get("metrics", {})
    return ScenarioResult(
        spec=ScenarioSpec.from_dict(record["spec"]),
        status=record.get("status", STATUS_OK),
        error=record.get("error"),
        backend=record.get("backend", "reference"),
        decision_values=tuple(record.get("decision_values", ())),
        extras=tuple(sorted(record.get("extras", {}).items())),
        **{name: metrics.get(name) for name in _METRIC_FIELDS},
    )


def canonical_line(result: ScenarioResult) -> str:
    """One record as a canonical JSON line (sorted keys, tight separators)
    — the unit of byte-identical summaries."""
    return json.dumps(
        encode_result(result), sort_keys=True, separators=(",", ":")
    )


def journal_record(result: ScenarioResult) -> dict:
    """The journal-line dict: the canonical record plus the producing
    backend (provenance that must not leak into summaries).  Also the
    unit the distributed workers ship back over the wire
    (:mod:`repro.engine.remote`), so remote shards carry exactly what
    the journal stores."""
    record = encode_result(result)
    record["backend"] = result.backend
    return record


def journal_line(result: ScenarioResult) -> str:
    """One *journal* line (the serialized :func:`journal_record`)."""
    return json.dumps(
        journal_record(result), sort_keys=True, separators=(",", ":")
    )


class ResultStore:
    """The campaign journal: one JSONL file, append-only, id-keyed.

    A ``path`` of ``None`` keeps everything in memory (handy for tests and
    throwaway campaigns); otherwise the parent directory is created on
    first append.

    Journal bytes are pinned (pure function of the spec set), so append
    wall-clock timestamps live in a separate ``<journal>.times`` sidecar
    — one tiny JSON line per append — which ``campaign status`` reads to
    derive elapsed time and scenarios/s for finished stores.
    """

    def __init__(
        self,
        path: str | os.PathLike | None,
        recorder: Recorder | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.times_path = (
            Path(str(self.path) + ".times") if self.path is not None else None
        )
        self.recorder = NULL if recorder is None else recorder
        self._memory: list[ScenarioResult] = []
        self._memory_times: list[tuple[str, float]] = []
        self._tail_checked = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _heal_torn_tail(self) -> None:
        """Terminate a torn (newline-less) trailing line left by a killed
        writer, so re-appended records start on their own line instead of
        gluing onto the fragment (which would corrupt a *valid* record).
        Checked once per store instance, before the first file append."""
        if self._tail_checked:
            return
        self._tail_checked = True
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with self.path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            torn = fh.read(1) != b"\n"
        if torn:
            log.warning(
                "journal %s ends in a torn line (killed writer?); "
                "terminating it — the fragment is skipped on read and "
                "its scenario re-runs", self.path,
            )
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write("\n")

    def append(self, result: ScenarioResult) -> None:
        """Journal one result (flushed immediately — a killed campaign
        loses at most the line being written)."""
        contracts = _get_contracts()
        if contracts and contracts.sample("store.canonical_backend_free"):
            contracts.check_canonical_backend_free(
                canonical_line(result),
                canonical_line(replace(result, backend="__contracts__")),
                context={
                    "id": result.scenario_id,
                    "backend": result.backend,
                    "seed": result.spec.seed,
                },
            )
        line = journal_line(result)
        now = time.time()
        if self.path is None:
            self._memory.append(result)
            self._memory_times.append((result.scenario_id, now))
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._heal_torn_tail()
            if _faults.torn_append(result):
                # Simulate a writer killed mid-write: flush a truncated
                # line with no newline, then die before the .times
                # sidecar entry lands.
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(line[: max(1, (2 * len(line)) // 3)])
                    fh.flush()
                raise _faults.InjectedFault(
                    f"injected torn journal write for "
                    f"{result.scenario_id}"
                )
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
            with self.times_path.open("a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(
                        {"id": result.scenario_id, "t": round(now, 6)},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
        if self.recorder:
            self.recorder.inc("store.appends")
            self.recorder.inc("store.bytes", len(line.encode("utf-8")) + 1)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def iter_results(self) -> Iterator[ScenarioResult]:
        """All journaled results in append order (corrupt lines skipped)."""
        if self.path is None:
            yield from self._memory
            return
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        continue
                    yield decode_result(record)
                except SchemaVersionError:
                    raise
                except (json.JSONDecodeError, AttributeError, KeyError,
                        TypeError, ValueError):
                    # Partial trailing line from a killed writer, or a
                    # foreign line (TypeError/AttributeError: valid JSON
                    # whose spec is missing ScenarioSpec fields or has
                    # the wrong shape): resume simply re-runs that
                    # scenario.
                    log.warning(
                        "skipping %s journal line %d in %s "
                        "(%d bytes); its scenario will re-run on resume",
                        "torn trailing"
                        if not raw.endswith("\n")
                        else "corrupt",
                        lineno, self.path, len(raw),
                    )
                    continue

    def append_times(self) -> list[tuple[str, float]]:
        """(scenario_id, unix_time) per journaled append, in append order.

        Read from the ``.times`` sidecar (advisory: malformed or stale
        lines are skipped, a missing sidecar yields ``[]``), so journals
        produced before the sidecar existed — or hand-truncated ones —
        still load fine."""
        if self.path is None:
            return list(self._memory_times)
        if self.times_path is None or not self.times_path.exists():
            return []
        out: list[tuple[str, float]] = []
        with self.times_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    record = json.loads(line)
                    out.append((record["id"], float(record["t"])))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue
        return out

    def load(self) -> dict[str, ScenarioResult]:
        """Latest result per scenario id (last journal entry wins, so a
        retried timeout overwrites the timeout record)."""
        latest: dict[str, ScenarioResult] = {}
        for result in self.iter_results():
            latest[result.scenario_id] = result
        return latest

    def completed_ids(self) -> set[str]:
        """Ids with a terminal record — ``ok`` and ``error`` count
        (errors are deterministic), ``timeout`` stays retriable."""
        return {
            sid
            for sid, result in self.load().items()
            if is_terminal(result.status)
        }

    def missing(self, specs: Iterable[ScenarioSpec]) -> list[ScenarioSpec]:
        """The subset of ``specs`` with no terminal record yet — exactly
        what a resumed campaign still has to execute."""
        done = self.completed_ids()
        return [spec for spec in specs if spec.scenario_id not in done]

    # ------------------------------------------------------------------
    # Canonical summaries
    # ------------------------------------------------------------------
    def summary_lines(
        self,
        specs: Iterable[ScenarioSpec],
        latest: dict[str, ScenarioResult] | None = None,
    ) -> list[str]:
        """The canonical summary lines for ``specs``, grid-ordered.

        The exact lines :meth:`write_summary` writes (without trailing
        newlines) — the campaign service serves them over HTTP so a
        daemon-fetched summary is byte-identical to a written one.
        """
        if latest is None:
            latest = self.load()
        lines = []
        for spec in specs:
            result = latest.get(spec.scenario_id)
            if result is not None:
                lines.append(canonical_line(result))
        return lines

    def write_summary(
        self,
        path: str | os.PathLike,
        specs: Iterable[ScenarioSpec],
        latest: dict[str, ScenarioResult] | None = None,
    ) -> int:
        """Write the canonical summary JSONL for ``specs``.

        Records appear in grid order with canonical JSON formatting, so
        the output is byte-identical whether the journal was produced by
        1 worker or 40.  Scenarios with no record are skipped.  Returns
        the number of lines written.  Pass a pre-:meth:`load`-ed
        ``latest`` snapshot to skip re-scanning the journal.
        """
        lines = self.summary_lines(specs, latest)
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
        return len(lines)
