"""Store-native streaming aggregation: grouped percentile/mean/CI tables.

The campaign journal holds one summary record per executed scenario.  This
module turns a stream of those records into the *distribution* tables the
experiments report — percentile latencies per ``(n, groups, noise)`` cell,
mean/violation counts per variant, confidence intervals over seed
ensembles — without any experiment writing its own accumulation loop.

Three layers:

* **Kernels** (:func:`p50`, :func:`p95`, :func:`mean`, :func:`ci95`,
  :func:`summarize_values`) — the scalar statistics, pinned to the exact
  NumPy calls the historical per-experiment aggregators used, so the
  refactored tables are *byte-identical* to the pre-registry output.
* **Rollup** (:func:`group_results`, :func:`rollup`,
  :class:`AggregateTable`) — group a result stream by spec fields and/or
  free-form options (first-occurrence order, i.e. grid order in, grid
  order out — deterministic however many workers produced the journal)
  and apply named column statistics per group.
* **Domain tables** (:func:`decision_latency_summary`,
  :func:`latency_groups`, :func:`latency_table`) — the LATENCY-DIST
  percentile aggregation that :mod:`repro.analysis.distributions` and
  ``campaign report --aggregate`` both route through.

Everything consumes plain result sequences (anything shaped like
:class:`~repro.engine.executor.ScenarioResult`), which is exactly what
:meth:`ResultStore.iter_results` / :meth:`Campaign.completed_results`
yield — aggregation reads straight off the JSONL journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.reporting import format_table

# ----------------------------------------------------------------------
# Scalar kernels
# ----------------------------------------------------------------------


def p50(values: Sequence[float]) -> float:
    """Median via ``np.percentile`` (linear interpolation, the historical
    choice of every latency table)."""
    return float(np.percentile(np.asarray(values, dtype=float), 50))


def p95(values: Sequence[float]) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), 95))


def mean(values: Sequence[float]) -> float:
    return float(np.mean(values))


def vmax(values: Sequence[float]) -> float:
    return np.asarray(values).max().item()


def vmin(values: Sequence[float]) -> float:
    return np.asarray(values).min().item()


def total(values: Sequence[float]) -> float:
    return np.asarray(values).sum().item()


def count(values: Sequence[Any]) -> int:
    return len(values)


def count_true(values: Sequence[Any]) -> int:
    return sum(1 for v in values if v)


def count_false(values: Sequence[Any]) -> int:
    return sum(1 for v in values if not v)


def ci95(values: Sequence[float]) -> tuple[float, float]:
    """A normal-approximation 95% confidence interval for the mean.

    Seed ensembles are i.i.d. draws, so the usual ``mean ± 1.96 s/√n``
    applies; degenerate ensembles (one value, or zero variance) collapse
    to a point.
    """
    arr = np.asarray(values, dtype=float)
    m = float(arr.mean())
    if arr.size < 2:
        return (m, m)
    half = 1.96 * float(arr.std(ddof=1)) / float(np.sqrt(arr.size))
    return (m - half, m + half)


def format_ci(interval: tuple[float, float]) -> str:
    """Render a confidence interval as one table cell (``lo..hi``)."""
    lo, hi = interval
    return f"{lo:.2f}..{hi:.2f}"


STATS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "p50": p50,
    "p95": p95,
    "mean": mean,
    "max": vmax,
    "min": vmin,
    "sum": total,
    "count": count,
    "count_true": count_true,
    "count_false": count_false,
    "ci95": ci95,
}


def summarize_values(values: Sequence[float]) -> dict[str, Any]:
    """One-shot descriptive summary of a value list (the single-ensemble
    face of the kernels; :mod:`repro.analysis.stats` routes its message
    and latency summaries through this)."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty value list")
    arr = np.asarray(values)
    return {
        "count": len(values),
        "max": arr.max().item(),
        "min": arr.min().item(),
        "mean": float(arr.mean()),
        "sum": arr.sum().item(),
        "p50": float(np.percentile(arr.astype(float), 50)),
        "p95": float(np.percentile(arr.astype(float), 95)),
    }


# ----------------------------------------------------------------------
# Generic grouped rollup
# ----------------------------------------------------------------------
def field_value(result: Any, name: str) -> Any:
    """Resolve ``name`` against a result: spec fields first, then free-form
    spec options, then result metrics/extras.  This is what lets group
    keys and columns name anything a journal record carries."""
    spec = result.spec
    if hasattr(spec, name):
        return getattr(spec, name)
    sentinel = object()
    value = spec.opt(name, sentinel)
    if value is not sentinel:
        return value
    if hasattr(result, name):
        return getattr(result, name)
    value = result.extra(name, sentinel)
    if value is not sentinel:
        return value
    raise KeyError(
        f"{name!r} is neither a spec field, a spec option, a result "
        f"metric nor a result extra"
    )


def group_results(
    results: Iterable[Any], group_by: Sequence[str]
) -> dict[tuple, list]:
    """Group results by the named keys, preserving first-occurrence order
    (dicts iterate in insertion order).  Feeding grid-ordered results in
    yields grid-ordered groups out — the determinism the byte-identical
    tables rest on."""
    groups: dict[tuple, list] = {}
    for result in results:
        key = tuple(field_value(result, name) for name in group_by)
        groups.setdefault(key, []).append(result)
    return groups


@dataclass(frozen=True)
class Column:
    """One aggregated column: gather ``source`` per result, apply ``stat``.

    ``source`` is a field name (resolved via :func:`field_value`) or a
    callable; ``stat`` is a :data:`STATS` name or a callable over the
    gathered values.  ``None`` values are dropped before aggregation
    unless ``keep_none`` is set (then they reach the stat callable).
    """

    name: str
    source: str | Callable[[Any], Any]
    stat: str | Callable[[Sequence[Any]], Any] = "mean"
    keep_none: bool = False

    def gather(self, results: Sequence[Any]) -> list:
        extract = (
            self.source
            if callable(self.source)
            else lambda r: field_value(r, self.source)
        )
        values = [extract(r) for r in results]
        if not self.keep_none:
            values = [v for v in values if v is not None]
        return values

    def apply(self, results: Sequence[Any]) -> Any:
        fn = self.stat if callable(self.stat) else STATS[self.stat]
        return fn(self.gather(results))


@dataclass(frozen=True)
class AggregateTable:
    """A finished grouped table: headers + rows + a formatter."""

    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    title: str | None = None

    def format(self, title: str | None = None) -> str:
        return format_table(
            list(self.headers),
            [list(row) for row in self.rows],
            title=self.title if title is None else title,
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


def rollup(
    results: Iterable[Any],
    group_by: Sequence[str],
    columns: Sequence[Column],
    title: str | None = None,
) -> AggregateTable:
    """Group, aggregate, tabulate: the one loop every experiment family's
    aggregator is a configuration of."""
    rows = []
    for key, members in group_results(results, group_by).items():
        rows.append(tuple(key) + tuple(c.apply(members) for c in columns))
    headers = tuple(group_by) + tuple(c.name for c in columns)
    return AggregateTable(headers=headers, rows=tuple(rows), title=title)


# ----------------------------------------------------------------------
# The LATENCY-DIST aggregation (the store-native percentile table)
# ----------------------------------------------------------------------
LATENCY_HEADERS = (
    "n",
    "groups",
    "noise",
    "runs",
    "p50_decide",
    "p95_decide",
    "ci95_decide",
    "max_decide",
    "p50_r_ST",
    "mean_values",
    "bound_viol",
)


def decision_latency_summary(results: Sequence[Any]) -> dict[str, Any]:
    """Latency percentiles over one seed ensemble of ok results.

    Replicates the historical ``latency_distribution`` accumulation
    exactly (an undecided run counts as one violation and contributes no
    latency; a decided run violating Lemma 11's bound counts as one
    violation): the returned values are bit-equal to the pre-registry
    tables.
    """
    last_rounds: list[int] = []
    stabilizations: list[int] = []
    value_counts: list[int] = []
    violations = 0
    for result in results:
        if result.last_decision_round is None:
            violations += 1
            continue
        last_rounds.append(result.last_decision_round)
        if result.stabilization is not None:
            stabilizations.append(result.stabilization)
        value_counts.append(result.distinct_decisions)
        if result.within_bound is False:
            violations += 1
    if not last_rounds:
        raise RuntimeError("no run produced decisions")
    arr = np.asarray(last_rounds, dtype=float)
    st_arr = np.asarray(stabilizations or [np.nan], dtype=float)
    return {
        "runs": len(results),
        "p50_last_decide": float(np.percentile(arr, 50)),
        "p95_last_decide": float(np.percentile(arr, 95)),
        "ci95_last_decide": ci95(arr),
        "max_last_decide": int(arr.max()),
        "p50_stabilization": float(np.nanpercentile(st_arr, 50)),
        "mean_values": float(np.mean(value_counts)),
        "bound_violations": violations,
    }


def latency_groups(
    results: Iterable[Any],
    group_by: Sequence[str] = ("n", "num_groups", "noise"),
) -> list[tuple[tuple, dict[str, Any]]]:
    """``(group key, latency summary)`` per ensemble cell, grid order."""
    return [
        (key, decision_latency_summary(members))
        for key, members in group_results(results, group_by).items()
    ]


def latency_table(
    results: Iterable[Any],
    group_by: Sequence[str] = ("n", "num_groups", "noise"),
    title: str | None = None,
) -> AggregateTable:
    """The LATENCY-DIST percentile table straight from stored results —
    what ``campaign report --aggregate`` prints and what the
    :class:`~repro.analysis.distributions.LatencyDistribution` rows are
    built from."""
    rows = []
    for key, summary in latency_groups(results, group_by):
        rows.append(
            tuple(key)
            + (
                summary["runs"],
                summary["p50_last_decide"],
                summary["p95_last_decide"],
                format_ci(summary["ci95_last_decide"]),
                summary["max_last_decide"],
                summary["p50_stabilization"],
                round(summary["mean_values"], 2),
                summary["bound_violations"],
            )
        )
    return AggregateTable(
        headers=tuple(group_by)
        + (
            "runs",
            "p50_decide",
            "p95_decide",
            "ci95_decide",
            "max_decide",
            "p50_r_ST",
            "mean_values",
            "bound_viol",
        ),
        rows=tuple(rows),
        title=title,
    )
