"""Campaign engine: parallel, resumable Monte-Carlo simulation fleets.

The paper's claims are *statistical over adversary ensembles*: Theorem 1/2
bounds, ``Psrcs(k)`` stabilization and the Figure-1 latency behavior all
quantify over runs.  Reproducing them at scale therefore means running
thousands of seeded simulations, not one.  This package turns the
single-run :class:`~repro.rounds.simulator.RoundSimulator` into a
fleet-scale workload generator:

* :mod:`repro.engine.scenarios` — a declarative **scenario grid DSL**.
  A :class:`ScenarioGrid` expands cartesian products over adversary class,
  ``n``, ``k``, group counts, noise, seed ranges and algorithm knobs into
  immutable :class:`ScenarioSpec` values with stable content-hash ids.
* :mod:`repro.engine.executor` — a **parallel executor**
  (:func:`execute_scenarios`) with a ``multiprocessing.Pool`` backend, a
  serial fallback, chunked dispatch and per-chunk timeouts.  Results are
  deterministic regardless of worker count: every scenario is a pure
  function of its spec, and outputs are re-ordered into grid order.
* :mod:`repro.engine.backends` — **execution backends**: the reference
  :class:`~repro.rounds.simulator.RoundSimulator` vs the vectorized
  batched-matrix fast path (:mod:`repro.rounds.fastpath`), selected via
  ``execute_scenarios(..., backend={"reference","vectorized","auto"})``.
  Metrics are identical across backends; ``auto`` falls back on
  :class:`FastPathUnsupported`.
* :mod:`repro.engine.store` — an append-only **JSONL result store**
  (:class:`ResultStore`) with a versioned codec and resume-by-hash.
* :mod:`repro.engine.campaign` — the **campaign API**
  (:class:`Campaign`), wired into the CLI as
  ``skeleton-agreement campaign run/status/report --jobs N --backend B``.

Quickstart
----------
>>> from repro.engine import Campaign, ScenarioGrid
>>> grid = ScenarioGrid(n=[6, 8], num_groups=[1, 2], seed=range(3), k=2)
>>> campaign = Campaign(grid, store=None)     # in-memory, no persistence
>>> report = campaign.run()
>>> report.executed
12
"""

from repro.engine.backends import (
    BACKENDS,
    execute_scenario_vectorized,
    execute_scenario_with_backend,
    fastpath_supported,
)
from repro.engine.campaign import Campaign, CampaignReport, run_campaign
from repro.engine.executor import (
    ScenarioResult,
    execute_scenario,
    execute_scenarios,
    require_ok,
)
from repro.engine.scenarios import (
    ScenarioGrid,
    ScenarioSpec,
    agreement_grid,
    expand_grids,
    termination_grid,
)
from repro.engine.store import ResultStore, decode_result, encode_result
from repro.rounds.fastpath import FastPathUnsupported

__all__ = [
    "BACKENDS",
    "Campaign",
    "CampaignReport",
    "FastPathUnsupported",
    "ResultStore",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "agreement_grid",
    "decode_result",
    "encode_result",
    "execute_scenario",
    "execute_scenario_vectorized",
    "execute_scenario_with_backend",
    "execute_scenarios",
    "fastpath_supported",
    "require_ok",
    "expand_grids",
    "run_campaign",
    "termination_grid",
]
