"""Campaign engine: parallel, resumable Monte-Carlo simulation fleets.

The paper's claims are *statistical over adversary ensembles*: Theorem 1/2
bounds, ``Psrcs(k)`` stabilization and the Figure-1 latency behavior all
quantify over runs.  Reproducing them at scale therefore means running
thousands of seeded simulations, not one.  This package turns the
single-run :class:`~repro.rounds.simulator.RoundSimulator` into a
fleet-scale workload generator:

* :mod:`repro.engine.scenarios` — a declarative **scenario grid DSL**.
  A :class:`ScenarioGrid` expands cartesian products over adversary class,
  ``n``, ``k``, group counts, noise, seed ranges and algorithm knobs into
  immutable :class:`ScenarioSpec` values with stable content-hash ids.
* :mod:`repro.engine.executor` — a **parallel executor**
  (:func:`execute_scenarios`) with a ``multiprocessing.Pool`` backend, a
  serial fallback, chunked dispatch and per-chunk timeouts.  Results are
  deterministic regardless of worker count: every scenario is a pure
  function of its spec, and outputs are re-ordered into grid order.
* :mod:`repro.engine.backends` — **execution backends**: the reference
  :class:`~repro.rounds.simulator.RoundSimulator` vs the matrix fast
  path (:mod:`repro.rounds.fastpath`), per scenario (``"vectorized"``)
  or mega-batched across same-``n`` scenarios (``"batched"``), selected
  via ``execute_scenarios(..., backend={"reference","vectorized",
  "batched","auto"})``.  Metrics are identical across backends; ``auto``
  falls back on :class:`FastPathUnsupported` and routes every
  batch-compatible scenario through the batch scheduler's planned
  batches.
* :mod:`repro.engine.scheduler` — the **lane-compacting batch
  scheduler**: plans a whole campaign work list into packed tensor
  batches (global ``(n, round-budget bucket)`` grouping, memory-envelope
  widths, kernel-level lane compaction + refill), ships whole planned
  batches to pool workers, and derives ``campaign run`` progress
  reporting (:class:`ProgressReporter`) from the plan.
* :mod:`repro.engine.store` — an append-only **JSONL result store**
  (:class:`ResultStore`) with a versioned codec and resume-by-hash.
* :mod:`repro.engine.telemetry` — **engine telemetry**: a zero-cost-off
  :class:`Recorder` (counters, gauges, histograms, span timers) threaded
  through scheduler, executor, backends, kernels and store, split into a
  *deterministic* plane (invariant across ``--jobs``/shuffle/compaction)
  and a *volatile* plane (durations, batch shapes, worker profiles), and
  written as a schema-versioned ``<store>.metrics.json`` sidecar via
  ``campaign run --metrics``.
* :mod:`repro.engine.contracts` — the **runtime contract layer**: a
  zero-cost-off twin of the telemetry recorder (`NO_CONTRACTS` falsy
  singleton, armed via ``REPRO_CONTRACTS=1`` or ``campaign run
  --contracts``) running sampled re-derive-and-compare invariant
  checkpoints inside the kernels, scheduler, executor and store;
  violations raise :class:`ContractViolation` carrying a minimal JSON
  repro instead of journaling untrustworthy records.
* :mod:`repro.engine.faults` — **deterministic fault injection**: a
  seeded :class:`FaultPlan` (worker kills, straggler stalls, transient
  pool breakage, torn journal tails, dropped telemetry) with
  content-hash victim selection and a once-only ledger, used by the
  resilience tests and ``campaign run --faults SPEC`` drills; faulted
  runs must reconverge to byte-identical journals on resume.
* :mod:`repro.engine.remote` — **distributed batch execution**: a
  coordinator (:func:`execute_remote`) ships whole planned batches to
  remote ``repro worker`` processes over a pluggable JSON-lines/TCP
  transport (dial ``host:port`` or accept ``listen:port`` — an
  ssh-spawned worker is a drop-in), each worker appending to its own
  journal shard; a deterministic :class:`ShardMerger` releases results
  in canonical plan order so the merged journal and summary are
  byte-identical to a serial single-host run whatever the worker count,
  completion order or mid-run worker loss, with crash requeue/backoff,
  straggler cut-off and crash-resume via :func:`absorb_shards`
  (``campaign run --workers host1:port,host2:port``).
* :mod:`repro.engine.campaign` — the **campaign API**
  (:class:`Campaign`), wired into the CLI as
  ``skeleton-agreement campaign run/status/report --jobs N --backend B``.
* :mod:`repro.engine.service` — the **campaign service**: a
  long-running ``campaign serve`` daemon owning one persistent
  :class:`~repro.engine.executor.WorkerPool`, multiplexing concurrent
  campaign submissions (FIFO queue, ``--slots`` runners) over a local
  HTTP/JSON job API, each journaling to its own store with bytes
  identical to a one-shot run; the CLI doubles as a thin client
  (``campaign run --connect URL`` / ``REPRO_DAEMON``).
* :mod:`repro.engine.registry` — the **experiment registry**: every
  experiment family (figure1, theorem2, sweeps, termination, ablation,
  duality, eventual, latency) as one declarative
  :class:`ExperimentSpec` (grid builder + per-scenario runner + row
  schema + aggregator), executable via ``campaign run --family <name>``.
* :mod:`repro.engine.aggregate` — **store-native aggregation**: grouped
  percentile/mean/CI tables computed straight from the JSONL journal
  (:func:`rollup`, :func:`latency_table`), deterministic and
  byte-identical however many workers produced the store.

Quickstart
----------
>>> from repro.engine import Campaign, ScenarioGrid
>>> grid = ScenarioGrid(n=[6, 8], num_groups=[1, 2], seed=range(3), k=2)
>>> campaign = Campaign(grid, store=None)     # in-memory, no persistence
>>> report = campaign.run()
>>> report.executed
12
"""

from repro.engine.aggregate import (
    AggregateTable,
    Column,
    decision_latency_summary,
    group_results,
    latency_table,
    rollup,
    summarize_values,
)
from repro.engine.backends import (
    BACKENDS,
    batch_compatible,
    execute_scenario_batch,
    execute_scenario_vectorized,
    execute_scenario_with_backend,
    fastpath_supported,
)
from repro.engine.campaign import Campaign, CampaignReport, run_campaign
from repro.engine.contracts import (
    NO_CONTRACTS,
    ContractViolation,
    Contracts,
    contract,
    contracts_enabled,
)
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.registry import (
    ExperimentSpec,
    family_campaign,
    family_names,
    get_family,
    register,
    run_family,
)
from repro.engine.executor import (
    ExecutionStopped,
    ScenarioResult,
    WorkerPool,
    execute_scenario,
    execute_scenarios,
    require_ok,
)
from repro.engine.service import (
    CampaignService,
    ServiceClient,
    ServiceError,
    SubmissionError,
    campaign_from_submission,
    daemon_url,
    serve,
)
from repro.engine.scenarios import (
    ScenarioGrid,
    ScenarioSpec,
    agreement_grid,
    expand_grids,
    termination_grid,
)
from repro.engine.scheduler import (
    BatchPlan,
    PlannedBatch,
    ProgressReporter,
    plan_batches,
    round_bucket,
)
from repro.engine.remote import (
    RemoteWorkerError,
    ShardMerger,
    WorkerEndpoint,
    absorb_shards,
    execute_remote,
    parse_workers,
    probe_worker,
    worker_serve,
)
from repro.engine.store import (
    ResultStore,
    decode_result,
    encode_result,
    journal_line,
    journal_record,
)
from repro.engine.telemetry import (
    NULL,
    NullRecorder,
    Recorder,
    SIDECAR_SCHEMA,
    read_sidecar,
    render_sidecar,
    validate_sidecar,
)
from repro.rounds.fastpath import FastPathUnsupported

__all__ = [
    "AggregateTable",
    "BACKENDS",
    "BatchPlan",
    "Campaign",
    "CampaignReport",
    "CampaignService",
    "Column",
    "ExecutionStopped",
    "ContractViolation",
    "Contracts",
    "ExperimentSpec",
    "FaultPlan",
    "InjectedFault",
    "NO_CONTRACTS",
    "NULL",
    "NullRecorder",
    "PlannedBatch",
    "ProgressReporter",
    "FastPathUnsupported",
    "Recorder",
    "RemoteWorkerError",
    "ShardMerger",
    "WorkerEndpoint",
    "ResultStore",
    "SIDECAR_SCHEMA",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "ServiceClient",
    "ServiceError",
    "SubmissionError",
    "WorkerPool",
    "agreement_grid",
    "campaign_from_submission",
    "daemon_url",
    "serve",
    "decision_latency_summary",
    "contract",
    "contracts_enabled",
    "decode_result",
    "encode_result",
    "journal_line",
    "journal_record",
    "absorb_shards",
    "execute_remote",
    "parse_workers",
    "probe_worker",
    "worker_serve",
    "batch_compatible",
    "execute_scenario",
    "execute_scenario_batch",
    "execute_scenario_vectorized",
    "execute_scenario_with_backend",
    "execute_scenarios",
    "family_campaign",
    "family_names",
    "fastpath_supported",
    "get_family",
    "group_results",
    "latency_table",
    "plan_batches",
    "read_sidecar",
    "register",
    "render_sidecar",
    "round_bucket",
    "require_ok",
    "validate_sidecar",
    "expand_grids",
    "rollup",
    "run_campaign",
    "run_family",
    "summarize_values",
    "termination_grid",
]
