"""Incremental skeleton tracking.

:class:`SkeletonTracker` consumes communication graphs round by round and
maintains ``G^∩r`` incrementally — the same O(total edges removed) pattern a
monitoring tool on a real deployment would use.  It also detects the
*stabilization* round: by the finiteness argument of §II (finitely many
possible skeletons + the subgraph chain (1)), some round ``r_ST`` exists
with ``G^∩r = G^∩∞`` for all ``r >= r_ST``; against a declared stable graph
the tracker reports it exactly.
"""

from __future__ import annotations

from repro.graphs.digraph import DiGraph


class SkeletonTracker:
    """Maintains ``G^∩r`` across successive rounds.

    Parameters
    ----------
    n:
        Number of processes; the round-0 skeleton is the complete digraph
        (empty intersection = everything), so ``G^∩1 = G^1``.
    declared_stable:
        Optional declared ``G^∩∞`` for exact stabilization detection.
    """

    def __init__(self, n: int, declared_stable: DiGraph | None = None) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.round_no = 0
        self._skeleton = DiGraph.complete(range(n), self_loops=True)
        self.declared_stable = declared_stable
        self._stabilized_at: int | None = None
        self._history_sizes: list[int] = []

    # ------------------------------------------------------------------
    def observe(self, graph: DiGraph) -> DiGraph:
        """Feed the next round's communication graph; returns the updated
        skeleton ``G^∩r`` (a reference — do not mutate)."""
        if graph.nodes() != frozenset(range(self.n)):
            raise ValueError("graph nodes must be exactly 0..n-1")
        self.round_no += 1
        # In-place removal of edges that turned untimely: cheaper than
        # re-intersecting from scratch because the skeleton only shrinks.
        for u, v in list(self._skeleton.iter_edges()):
            if not graph.has_edge(u, v):
                self._skeleton.remove_edge(u, v)
        self._history_sizes.append(self._skeleton.number_of_edges())
        if (
            self._stabilized_at is None
            and self.declared_stable is not None
            and self._skeleton == self.declared_stable
        ):
            self._stabilized_at = self.round_no
        return self._skeleton

    # ------------------------------------------------------------------
    @property
    def skeleton(self) -> DiGraph:
        """The current ``G^∩r`` (copy — safe to mutate)."""
        return self._skeleton.copy()

    def timely_neighborhood(self, pid: int) -> frozenset[int]:
        """``PT(p, r)`` for the current round."""
        return self._skeleton.predecessors(pid)

    @property
    def stabilized_at(self) -> int | None:
        """First round where the skeleton reached the declared stable graph
        (``None`` if not yet, or no declaration)."""
        return self._stabilized_at

    def edge_counts(self) -> list[int]:
        """``|E^∩r|`` per round — monotonically non-increasing (property 1);
        the tests assert this invariant on random runs."""
        return list(self._history_sizes)

    def __repr__(self) -> str:
        return (
            f"SkeletonTracker(round={self.round_no}, "
            f"|E|={self._skeleton.number_of_edges()}, "
            f"stabilized_at={self._stabilized_at})"
        )
