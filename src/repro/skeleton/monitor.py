"""Online skeleton monitoring.

An operational layer a deployment would actually run next to Algorithm 1:
consume heard-of observations round by round (from the transport, from
logs, or from a :class:`~repro.rounds.run.Run`) and maintain, incrementally,

* the current skeleton ``G^∩r`` and per-process ``PT(p, r)``,
* the current root components and their count (the live upper bound on
  how many decision values the system can still produce — Theorem 1's
  quantity, observable),
* the tightest ``k`` for which ``Psrcs(k)`` *can still hold* (``α`` of the
  conflict graph of the current skeleton — monotonically non-decreasing
  over time as edges fall out),
* change events: which edges turned untimely this round, whether the root
  structure changed.

Monotonicity makes this cheap: the skeleton only loses edges, so per-round
work is O(edges removed) plus the component refresh, and the reported
``k``-capability can only degrade, never improve — the monitor's headline
number is safe to act on at any time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.condensation import root_components
from repro.graphs.digraph import DiGraph
from repro.predicates.psrcs import Psrcs
from repro.skeleton.tracker import SkeletonTracker


@dataclass(frozen=True)
class MonitorReport:
    """Snapshot after one observed round."""

    round_no: int
    skeleton_edges: int
    edges_lost: tuple[tuple[int, int], ...]
    root_components: tuple[frozenset[int], ...]
    roots_changed: bool
    tightest_k: int

    @property
    def max_decision_values(self) -> int:
        """Theorem 1 / Lemma 15: the number of root components bounds the
        decision values the system can still produce."""
        return len(self.root_components)


class SkeletonMonitor:
    """Incremental observer over a stream of communication graphs."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._tracker = SkeletonTracker(n)
        self._roots: tuple[frozenset[int], ...] = ()
        self._tightest_k: int = 1
        self.reports: list[MonitorReport] = []

    # ------------------------------------------------------------------
    def observe_graph(self, graph: DiGraph) -> MonitorReport:
        """Feed one round's communication graph; returns the snapshot."""
        before = set(self._tracker.skeleton.iter_edges())
        skeleton = self._tracker.observe(graph)
        after = set(skeleton.iter_edges())
        lost = tuple(sorted(before - after))
        roots = tuple(
            sorted(root_components(skeleton), key=lambda c: min(c))
        )
        roots_changed = roots != self._roots
        if roots_changed or not self.reports:
            # α only changes when the skeleton does; recompute lazily on
            # structural change (edge loss without root change can still
            # shift α, so also recompute whenever edges were lost).
            self._tightest_k = Psrcs(1).tightest_k(skeleton)
        elif lost:
            self._tightest_k = Psrcs(1).tightest_k(skeleton)
        self._roots = roots
        report = MonitorReport(
            round_no=self._tracker.round_no,
            skeleton_edges=skeleton.number_of_edges(),
            edges_lost=lost,
            root_components=roots,
            roots_changed=roots_changed,
            tightest_k=self._tightest_k,
        )
        self.reports.append(report)
        return report

    def observe_heard_of(self, ho: dict[int, frozenset[int]]) -> MonitorReport:
        """Feed one round as heard-of sets (``HO(p, r)`` per process)."""
        g = DiGraph(nodes=range(self.n))
        for p, heard in ho.items():
            for q in heard:
                g.add_edge(q, p)
        return self.observe_graph(g)

    # ------------------------------------------------------------------
    @property
    def current_report(self) -> MonitorReport:
        if not self.reports:
            raise ValueError("no rounds observed yet")
        return self.reports[-1]

    def timely_neighborhood(self, pid: int) -> frozenset[int]:
        return self._tracker.timely_neighborhood(pid)

    def k_capability_history(self) -> list[int]:
        """Tightest Psrcs level per round — non-decreasing (tested)."""
        return [r.tightest_k for r in self.reports]

    def root_count_history(self) -> list[int]:
        return [len(r.root_components) for r in self.reports]

    def __repr__(self) -> str:
        return (
            f"SkeletonMonitor(n={self.n}, rounds={len(self.reports)}, "
            f"roots={len(self._roots)}, k={self._tightest_k})"
        )
