"""Whole-run skeleton analysis.

Batch counterparts of :class:`~repro.skeleton.tracker.SkeletonTracker` that
operate on a finished :class:`~repro.rounds.run.Run`, plus the root-component
machinery that Theorem 1 and Lemma 15 revolve around.
"""

from __future__ import annotations

from repro.graphs.condensation import root_components
from repro.graphs.digraph import DiGraph
from repro.rounds.run import Run


def skeleton_sequence(run: Run) -> list[DiGraph]:
    """``[G^∩1, G^∩2, ..., G^∩R]`` for the recorded prefix."""
    return [run.skeleton(r) for r in range(1, run.num_rounds + 1)]


def stabilization_round(run: Run) -> int | None:
    """The exact stabilization round ``r_ST`` against the declared stable
    skeleton: the first recorded round with ``G^∩r = G^∩∞``.

    Returns ``None`` when the run has no declaration or has not stabilized
    within the recorded prefix.
    """
    if run.declared_stable_graph is None:
        return None
    target = run.declared_stable_graph
    for r in range(1, run.num_rounds + 1):
        if run.skeleton(r) == target:
            return r
    return None


def timely_neighborhoods_at(run: Run, round_no: int) -> dict[int, frozenset[int]]:
    """``PT(p, r)`` for every process ``p`` at round ``round_no``."""
    skel = run.skeleton(round_no)
    return {p: skel.predecessors(p) for p in range(run.n)}


def perpetual_timely_neighborhoods(run: Run) -> dict[int, frozenset[int]]:
    """``PT(p)`` for every process, from the stable skeleton."""
    stable = run.stable_skeleton()
    return {p: stable.predecessors(p) for p in range(run.n)}


def stable_root_components(run: Run) -> list[frozenset[int]]:
    """Root components of the stable skeleton — the objects Theorem 1
    bounds and Lemma 15 maps one-to-one onto decision values."""
    return root_components(run.stable_skeleton())


def root_component_history(run: Run) -> list[list[frozenset[int]]]:
    """Root components of ``G^∩r`` for each recorded round.

    Useful to watch components merge/split as edges turn untimely; by the
    subgraph chain (1) the *final* entry's components refine into the stable
    ones once the prefix covers stabilization.
    """
    return [root_components(run.skeleton(r)) for r in range(1, run.num_rounds + 1)]


def component_containing(graph: DiGraph, pid: int) -> frozenset[int]:
    """``C^r_p`` — the SCC of ``pid`` in ``graph`` (paper notation)."""
    from repro.graphs.scc import scc_of

    return scc_of(graph, pid)
