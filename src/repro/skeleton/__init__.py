"""Skeleton-graph analysis.

Derived objects of §II: the round-``r`` skeleton ``G^∩r`` (intersection of
the first ``r`` communication graphs), the stable skeleton ``G^∩∞``, timely
neighborhoods ``PT(p, r)`` / ``PT(p)``, stabilization rounds, and root
components.
"""

from repro.skeleton.tracker import SkeletonTracker
from repro.skeleton.monitor import SkeletonMonitor, MonitorReport
from repro.skeleton.analysis import (
    skeleton_sequence,
    stabilization_round,
    timely_neighborhoods_at,
    stable_root_components,
    root_component_history,
)

__all__ = [
    "SkeletonTracker",
    "SkeletonMonitor",
    "MonitorReport",
    "skeleton_sequence",
    "stabilization_round",
    "timely_neighborhoods_at",
    "stable_root_components",
    "root_component_history",
]
