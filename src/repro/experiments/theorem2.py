"""The Theorem 2 experiment: the impossibility construction, executed.

Theorem 2's proof constructs a run ``α`` (our
:class:`~repro.adversaries.partition.PartitionAdversary`) in which *any*
algorithm satisfying validity + termination must produce ``k`` distinct
decisions — hence ``(k-1)``-set agreement is unsolvable under ``Psrcs(k)``.

This experiment executes Algorithm 1 on ``α`` with pairwise distinct inputs
and checks the whole chain of the proof:

1. ``Psrcs(k)`` holds on the run (the exact predicate checker);
2. ``Psrcs(k-1)`` is violated (the construction is on the boundary);
3. Algorithm 1 terminates and produces **exactly** ``k`` distinct values —
   meeting its own k-agreement bound while witnessing that ``k-1`` is
   impossible;
4. each loner and the source decide their own input (the
   indistinguishability core of the proof).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversaries.partition import PartitionAdversary
from repro.analysis.properties import AgreementReport, check_agreement_properties
from repro.core.algorithm import make_processes
from repro.engine.registry import ExperimentSpec, register
from repro.predicates.psrcs import Psrcs
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


@dataclass(frozen=True)
class Theorem2Report:
    """Everything the THM2 experiment asserts."""

    n: int
    k: int
    run: Run
    agreement: AgreementReport
    psrcs_k_holds: bool
    psrcs_k_minus_1_holds: bool
    distinct_decisions: int
    isolated_decided_own: bool

    @property
    def confirms_theorem(self) -> bool:
        """The full Theorem 2 shape: predicate boundary + exactly k values
        + forced self-decisions + Algorithm 1 within its own bound."""
        return (
            self.psrcs_k_holds
            and (self.k == 1 or not self.psrcs_k_minus_1_holds)
            and self.distinct_decisions == self.k
            and self.isolated_decided_own
            and self.agreement.all_hold
        )


def theorem2_experiment(
    n: int, k: int, max_rounds: int | None = None
) -> Theorem2Report:
    """Run Algorithm 1 on the Theorem 2 adversary with distinct inputs."""
    adversary = PartitionAdversary(n, k)
    processes = make_processes(n)  # distinct values 0..n-1
    config = SimulationConfig(max_rounds=max_rounds or (4 * n + 4))
    run = RoundSimulator(processes, adversary, config).run()

    stable = run.stable_skeleton()
    psrcs_k = Psrcs(k).check_skeleton(stable).holds
    psrcs_km1 = (
        Psrcs(k - 1).check_skeleton(stable).holds if k >= 2 else True
    )
    isolated_ok = all(
        run.decisions[p].value == run.initial_values[p]
        for p in adversary.isolated_deciders()
        if p in run.decisions
    ) and all(p in run.decisions for p in adversary.isolated_deciders())

    return Theorem2Report(
        n=n,
        k=k,
        run=run,
        agreement=check_agreement_properties(run, k),
        psrcs_k_holds=psrcs_k,
        psrcs_k_minus_1_holds=psrcs_km1,
        distinct_decisions=len(run.decision_values()),
        isolated_decided_own=isolated_ok,
    )


# ----------------------------------------------------------------------
# Experiment-registry spec: THM2 as a campaign family (one scenario per
# (n, k) boundary instance).
# ----------------------------------------------------------------------
def run_theorem2_scenario(spec) -> "ScenarioResult":
    """Per-scenario runner: execute the impossibility construction and
    record the whole proof chain in the result (boundary predicates and
    forced self-decisions ride in the extras)."""
    from repro.analysis.stats import decision_stats
    from repro.engine.executor import ScenarioResult
    from repro.graphs.condensation import root_components

    report = theorem2_experiment(spec.n, spec.k, max_rounds=spec.max_rounds)
    run = report.run
    stats = decision_stats(run)
    return ScenarioResult(
        spec=spec,
        num_rounds=run.num_rounds,
        root_components=len(root_components(run.stable_skeleton())),
        psrcs_holds=report.psrcs_k_holds,
        distinct_decisions=report.distinct_decisions,
        all_decided=report.agreement.termination.holds,
        k_agreement_holds=report.agreement.k_agreement.holds,
        validity_holds=report.agreement.validity.holds,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(run.decision_values(), key=repr)),
        extras=(
            ("confirms_theorem", report.confirms_theorem),
            ("isolated_decided_own", report.isolated_decided_own),
            ("psrcs_k_minus_1_holds", report.psrcs_k_minus_1_holds),
        ),
    )


def _theorem2_grid(params) -> list:
    from repro.engine.scenarios import ScenarioSpec

    ns = params["n"] if isinstance(params["n"], (list, tuple)) else [params["n"]]
    ks = params["k"] if isinstance(params["k"], (list, tuple)) else [params["k"]]
    return [
        ScenarioSpec(
            n=n,
            k=k,
            adversary="partition",
            max_rounds=4 * n + 4,
            options=(("family", "theorem2"),),
        )
        for n in ns
        for k in ks
        if k <= n
    ]


def _theorem2_rows(result) -> list[list]:
    return [
        ["Psrcs(k) holds", result.psrcs_holds],
        ["Psrcs(k-1) holds", result.extra("psrcs_k_minus_1_holds")],
        ["distinct decisions", result.distinct_decisions],
        ["forced value count (=k)", result.spec.k],
        ["isolated decided own value", result.extra("isolated_decided_own")],
        ["confirms Theorem 2", result.extra("confirms_theorem")],
    ]


def _theorem2_render(results) -> tuple[str, int]:
    from repro.analysis.reporting import format_table

    parts = [
        format_table(
            ["check", "result"],
            _theorem2_rows(result),
            title=f"Theorem 2, n={result.spec.n}, k={result.spec.k}",
        )
        for result in results
    ]
    ok = all(result.extra("confirms_theorem") for result in results)
    return "\n\n".join(parts), 0 if ok else 1


register(
    ExperimentSpec(
        name="theorem2",
        title="THM2: the impossibility construction, executed per (n, k)",
        build_grid=_theorem2_grid,
        render=_theorem2_render,
        headers=(
            "n",
            "k",
            "status",
            "Psrcs(k)",
            "Psrcs(k-1)",
            "values",
            "isolated_own",
            "confirms",
        ),
        row=lambda r: [
            r.spec.n,
            r.spec.k,
            r.status,
            r.psrcs_holds,
            r.extra("psrcs_k_minus_1_holds"),
            r.distinct_decisions,
            r.extra("isolated_decided_own"),
            r.extra("confirms_theorem"),
        ],
        runner=run_theorem2_scenario,
        defaults=(("k", (3,)), ("n", (8,))),
    )
)
