"""The Theorem 2 experiment: the impossibility construction, executed.

Theorem 2's proof constructs a run ``α`` (our
:class:`~repro.adversaries.partition.PartitionAdversary`) in which *any*
algorithm satisfying validity + termination must produce ``k`` distinct
decisions — hence ``(k-1)``-set agreement is unsolvable under ``Psrcs(k)``.

This experiment executes Algorithm 1 on ``α`` with pairwise distinct inputs
and checks the whole chain of the proof:

1. ``Psrcs(k)`` holds on the run (the exact predicate checker);
2. ``Psrcs(k-1)`` is violated (the construction is on the boundary);
3. Algorithm 1 terminates and produces **exactly** ``k`` distinct values —
   meeting its own k-agreement bound while witnessing that ``k-1`` is
   impossible;
4. each loner and the source decide their own input (the
   indistinguishability core of the proof).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversaries.partition import PartitionAdversary
from repro.analysis.properties import AgreementReport, check_agreement_properties
from repro.core.algorithm import make_processes
from repro.predicates.psrcs import Psrcs
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


@dataclass(frozen=True)
class Theorem2Report:
    """Everything the THM2 experiment asserts."""

    n: int
    k: int
    run: Run
    agreement: AgreementReport
    psrcs_k_holds: bool
    psrcs_k_minus_1_holds: bool
    distinct_decisions: int
    isolated_decided_own: bool

    @property
    def confirms_theorem(self) -> bool:
        """The full Theorem 2 shape: predicate boundary + exactly k values
        + forced self-decisions + Algorithm 1 within its own bound."""
        return (
            self.psrcs_k_holds
            and (self.k == 1 or not self.psrcs_k_minus_1_holds)
            and self.distinct_decisions == self.k
            and self.isolated_decided_own
            and self.agreement.all_hold
        )


def theorem2_experiment(
    n: int, k: int, max_rounds: int | None = None
) -> Theorem2Report:
    """Run Algorithm 1 on the Theorem 2 adversary with distinct inputs."""
    adversary = PartitionAdversary(n, k)
    processes = make_processes(n)  # distinct values 0..n-1
    config = SimulationConfig(max_rounds=max_rounds or (4 * n + 4))
    run = RoundSimulator(processes, adversary, config).run()

    stable = run.stable_skeleton()
    psrcs_k = Psrcs(k).check_skeleton(stable).holds
    psrcs_km1 = (
        Psrcs(k - 1).check_skeleton(stable).holds if k >= 2 else True
    )
    isolated_ok = all(
        run.decisions[p].value == run.initial_values[p]
        for p in adversary.isolated_deciders()
        if p in run.decisions
    ) and all(p in run.decisions for p in adversary.isolated_deciders())

    return Theorem2Report(
        n=n,
        k=k,
        run=run,
        agreement=check_agreement_properties(run, k),
        psrcs_k_holds=psrcs_k,
        psrcs_k_minus_1_holds=psrcs_km1,
        distinct_decisions=len(run.decision_values()),
        isolated_decided_own=isolated_ok,
    )
