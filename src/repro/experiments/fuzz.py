"""FUZZ: registered differential fuzzing of the execution backends.

Each fuzz *case* is a randomly (but deterministically) drawn scenario —
size, adversary, topology, noise, seed, purge window — executed on every
execution engine the repo ships:

* the reference :class:`~repro.rounds.simulator.RoundSimulator`,
* the per-scenario vectorized fast path, and
* the mega-batched kernel, both alone and stacked with same-``n``
  sibling scenarios, across sampled ``(width, compact)`` configurations.

The oracle is the store's canonical record: :func:`canonical_line`
excludes the producing backend by design, so every engine must render the
*byte-identical* summary for the same spec.  Any divergence is a real
equivalence bug (kernel, compaction, lane packing, or adversary schedule
purity) — the case is then greedily *shrunk* (drop siblings, zero the
noise, strip the purge window, simplify the topology, walk ``n`` down)
and the minimal failing spec is printed as a one-line JSON repro.

The family is registered like any other (``campaign run --family fuzz``),
so fuzzing inherits journaling/resume, ``--jobs`` parallelism, crash
isolation, telemetry, and — when ``--contracts`` is on — every runtime
contract checkpoint fires *inside* the fuzzed kernels.

Grid determinism: case ``i`` of salt ``s`` is a pure function of
``(s, i)`` (a :func:`numpy.random.default_rng` seeded with the pair), so
two machines fuzzing the same budget draw the same cases and the journal
resume keys line up.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.engine.backends import (
    FastPathUnsupported,
    execute_scenario_batch,
    execute_scenario_vectorized,
)
from repro.engine.executor import ScenarioResult, execute_scenario
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import ScenarioSpec
from repro.engine.store import canonical_line

#: RNG stream tag for the fuzz grid (keeps fuzz draws disjoint from every
#: other seeded stream in the repo).
_STREAM = 0xF022

#: Options the fuzz layer adds on top of the scenario under test; the
#: differential runner strips them to recover the plain spec.
_FUZZ_OPTIONS = ("family", "case", "siblings", "width", "compact")

#: Hard ceiling on shrink-step evaluations (each evaluation re-runs the
#: case on two engines; shrinking must never dwarf the campaign itself).
_SHRINK_BUDGET = 24


# ----------------------------------------------------------------------
# Grid
# ----------------------------------------------------------------------
def _draw_case(salt: int, case: int) -> ScenarioSpec:
    """Case ``case`` of salt ``salt`` — a pure function of the pair."""
    rng = np.random.default_rng([_STREAM, salt, case])
    n = int(rng.choice((4, 5, 6, 8, 10)))
    adversary = str(rng.choice(("grouped", "partition", "crash", "static")))
    k = int(rng.integers(1, min(3, n) + 1))
    seed = int(rng.integers(0, 2**16))
    options: dict[str, Any] = {
        "family": "fuzz",
        "case": case,
        "siblings": int(rng.integers(0, 3)),
        "width": (None, None, 2, 3)[int(rng.integers(0, 4))],
        "compact": bool(rng.integers(0, 2)),
    }
    if options["width"] is None:
        del options["width"]
    num_groups = 1
    noise = 0.0
    topology = "cycle"
    if adversary == "grouped":
        num_groups = int(rng.integers(1, min(n, 4) + 1))
        noise = float(rng.choice((0.0, 0.05, 0.2)))
        topology = str(rng.choice(("cycle", "clique", "star")))
    elif adversary == "static":
        noise = float(rng.choice((0.1, 0.3)))
    elif adversary == "crash":
        options["f"] = int(rng.integers(1, min(3, n - 1) + 1))
    if rng.random() < 0.25:
        options["purge_window"] = int(rng.integers(2, 6))
    return ScenarioSpec(
        n=n,
        k=k,
        num_groups=num_groups,
        seed=seed,
        noise=noise,
        topology=topology,
        adversary=adversary,
        options=tuple(sorted(options.items())),
    )


def _fuzz_grid(params: Mapping[str, Any]) -> list[ScenarioSpec]:
    budget = int(params.get("seeds", 20))
    salt = int(params.get("salt", 0))
    return [_draw_case(salt, case) for case in range(budget)]


# ----------------------------------------------------------------------
# Differential runner
# ----------------------------------------------------------------------
def _base_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The plain scenario under test: the fuzz bookkeeping options
    stripped, so the backends treat it like any stock spec."""
    kept = {k: v for k, v in spec.options if k not in _FUZZ_OPTIONS}
    return replace(spec, options=tuple(sorted(kept.items())))


def _siblings(base: ScenarioSpec, count: int) -> list[ScenarioSpec]:
    """Derived-seed same-``n`` companions that share the mega-batch with
    the case (exercises lane packing/compaction around the victim)."""
    return [replace(base, seed=base.seed + 101 * (j + 1)) for j in range(count)]


def _normalize(result: ScenarioResult, base: ScenarioSpec) -> str:
    """The backend-free canonical record of ``result`` re-keyed on the
    plain spec (the batch layer hands back the spec it was given, which
    is already ``base``; this guards against accidental drift)."""
    return canonical_line(replace(result, spec=base, backend="reference"))


def _run_engines(
    base: ScenarioSpec,
    siblings: Sequence[ScenarioSpec],
    width: int | None,
    compact: bool,
) -> tuple[str, dict[str, str]]:
    """Reference line + per-engine canonical lines for ``base``."""
    want = _normalize(execute_scenario(base), base)
    got: dict[str, str] = {}
    try:
        got["vectorized"] = _normalize(execute_scenario_vectorized(base), base)
    except FastPathUnsupported:
        pass
    group = [base, *siblings]
    label = f"batched[w={width},compact={compact},lanes={len(group)}]"
    batched = execute_scenario_batch(group, width=width, compact=compact)
    got[label] = _normalize(batched[0], base)
    return want, got


def _case_dict(
    base: ScenarioSpec, siblings: int, width: int | None, compact: bool
) -> dict[str, Any]:
    case = base.to_dict()
    case["siblings"] = siblings
    case["width"] = width
    case["compact"] = compact
    return case


def _case_fails(case: Mapping[str, Any]) -> bool:
    """Whether the (possibly shrunk) case still diverges on some engine."""
    data = dict(case)
    siblings = int(data.pop("siblings", 0))
    width = data.pop("width", None)
    compact = bool(data.pop("compact", True))
    try:
        base = ScenarioSpec.from_dict(data)
        want, got = _run_engines(
            base, _siblings(base, siblings), width, compact
        )
    except Exception:  # noqa: BLE001 — a crashing shrink step is a fail
        return True
    return any(line != want for line in got.values())


def _shrink(case: dict[str, Any]) -> dict[str, Any]:
    """Greedy minimization: try each simplification in order, keep it if
    the case still fails, within a hard evaluation budget."""
    evals = 0

    def still_fails(candidate: dict[str, Any]) -> bool:
        nonlocal evals
        if evals >= _SHRINK_BUDGET:
            return False
        evals += 1
        return _case_fails(candidate)

    def attempt(**changes: Any) -> None:
        nonlocal case
        candidate = dict(case)
        options = dict(candidate.get("options", {}))
        for key, value in changes.items():
            if key.startswith("opt_"):
                options.pop(key[4:], None)
            else:
                candidate[key] = value
        candidate["options"] = options
        if candidate != case and still_fails(candidate):
            case = candidate

    attempt(siblings=0)
    attempt(width=None)
    attempt(compact=True)
    attempt(noise=0.0)
    attempt(opt_purge_window=None)
    attempt(topology="cycle")
    attempt(num_groups=1)
    attempt(adversary="static", noise=0.3, num_groups=1, opt_f=None)
    for smaller in range(case["n"] - 1, 2, -1):
        shrunk = {
            "n": smaller,
            "k": min(case["k"], smaller),
            "num_groups": min(case["num_groups"], smaller),
        }
        options = dict(case.get("options", {}))
        if "f" in options:
            options = dict(options)
            options["f"] = min(options["f"], smaller - 1)
            candidate = dict(case, **shrunk)
            candidate["options"] = options
        else:
            candidate = dict(case, **shrunk)
        if still_fails(candidate):
            case = candidate
        else:
            break
    return case


def run_fuzz_case(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one differential case; any engine divergence is shrunk and
    reported as an ``"error"`` result carrying the minimal JSON repro."""
    base = _base_spec(spec)
    siblings = int(spec.opt("siblings", 0))
    width = spec.opt("width")
    compact = bool(spec.opt("compact", True))
    want, got = _run_engines(base, _siblings(base, siblings), width, compact)
    mismatched = sorted(
        engine for engine, line in got.items() if line != want
    )
    if mismatched:
        minimal = _shrink(_case_dict(base, siblings, width, compact))
        repro = json.dumps(minimal, sort_keys=True, separators=(",", ":"))
        return ScenarioResult.failure(
            spec,
            f"differential mismatch on {', '.join(mismatched)}; "
            f"minimal repro: {repro}",
        )
    reference = json.loads(want)
    return ScenarioResult(
        spec=spec,
        status=reference["status"],
        error=reference.get("error"),
        decision_values=tuple(reference.get("decision_values", ())),
        extras=(("engines", len(got) + 1),),
        **{
            name: reference.get("metrics", {}).get(name)
            for name in (
                "num_rounds",
                "root_components",
                "psrcs_holds",
                "distinct_decisions",
                "all_decided",
                "k_agreement_holds",
                "validity_holds",
                "first_decision_round",
                "last_decision_round",
                "stabilization",
                "lemma11_bound",
                "within_bound",
            )
        },
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fuzz_render(results: Sequence[ScenarioResult]) -> tuple[str, int]:
    mismatches = [
        r
        for r in results
        if r.error and r.error.startswith("differential mismatch")
    ]
    broken = [r for r in results if not r.ok and r not in mismatches]
    lines = [
        f"FUZZ: {len(results)} differential cases — "
        f"{len(results) - len(mismatches) - len(broken)} agree, "
        f"{len(mismatches)} diverge, {len(broken)} errored"
    ]
    for r in mismatches:
        lines.append(f"  case {r.spec.opt('case')} [{r.scenario_id}]: {r.error}")
    for r in broken:
        lines.append(
            f"  case {r.spec.opt('case')} [{r.scenario_id}] "
            f"({r.status}): {r.error}"
        )
    if not mismatches and not broken:
        lines.append("  all engines byte-identical on every case")
    return "\n".join(lines), 1 if (mismatches or broken) else 0


register(
    ExperimentSpec(
        name="fuzz",
        title="FUZZ: differential backend fuzzing with shrinking repros",
        build_grid=_fuzz_grid,
        render=_fuzz_render,
        headers=(
            "case", "n", "k", "adversary", "seed", "status", "engines"
        ),
        row=lambda r: [
            r.spec.opt("case"),
            r.spec.n,
            r.spec.k,
            r.spec.adversary,
            r.spec.seed,
            r.status,
            r.extra("engines"),
        ],
        runner=run_fuzz_case,
        defaults=(("salt", 0), ("seeds", 20)),
        # The runner *is* the differential harness; forcing a fast
        # backend would bypass it.
        vectorizable=False,
    )
)
