"""Ablations of Algorithm 1's design choices (DESIGN.md §4).

Three knobs, each provably load-bearing in the paper's proofs:

* **Purge window** (line 24, ``re <= r - n``).  Smaller windows discard
  certificates that Lemma 4 still needs (information can legitimately be
  ``n - 1`` rounds old after traversing the longest path), breaking the
  completeness half (Lemma 5) of the approximation.  Larger windows retain
  stale edges beyond what Lemma 7's soundness argument tolerates.
* **Unreachable-node pruning** (line 25).  Without it, the approximation
  accumulates nodes that cannot reach ``p``; the strong-connectivity test
  then keeps failing for processes that should decide (delaying or
  preventing line-29 decisions).
* **Estimate source restriction** (line 27, min over ``PT_p`` only).
  :class:`MinOverAllProcess` takes the min over *all* received estimates —
  including transient, non-timely senders — which voids Lemma 14's common-
  estimate guarantee inside strongly connected components.

:func:`run_ablation` executes a variant across seeds with all lemma
checkers attached and tabulates: invariant violations, agreement outcomes,
termination, and decision latency.  The ABLATION benchmark asserts the
paper's configuration is the only one that is uniformly clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.core.algorithm import SkeletonAgreementProcess
from repro.core.invariants import InvariantViolation, make_invariant_hook
from repro.rounds.messages import Message
from repro.rounds.simulator import RoundSimulator, SimulationConfig


class MinOverAllProcess(SkeletonAgreementProcess):
    """Line-27 ablation: min over *all* received estimates, not just PT_p.

    The transition replicates Algorithm 1 exactly except that line 27 reads
    every received message (including transient, non-timely senders), so the
    estimate entering the line-28/29 decision is the unrestricted minimum.
    This voids Lemma 14: a transient edge landing on one member of a root
    component in its decision round makes that member decide a foreign
    value its component peers never saw — see
    :func:`line27_counterexample`.
    """

    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        # Line 9.
        self.pt = self.pt & frozenset(received)
        # Lines 10-13.
        if not self.decided:
            deciders = sorted(q for q in self.pt if received[q].kind == "decide")
            if deciders:
                q = deciders[0]
                self.estimate = received[q].payload["x"]
                self._decide(round_no, self.estimate)
        # Lines 14-25.
        graphs = {q: received[q].payload["graph"] for q in self.pt}
        self.approx.round_update(round_no, self.pt, graphs)
        # Lines 26-30 with the ablated line 27.
        if not self.decided:
            candidates = [msg.payload["x"] for msg in received.values()]
            if candidates:
                self.estimate = min(candidates)
            if round_no > self.n and self.approx.is_strongly_connected():
                self._decide(round_no, self.estimate)
        if self.track_history:
            self.history[round_no] = (
                self.pt,
                self.approx.snapshot(),
                self.estimate,
            )


def line27_counterexample():
    """A crafted Psrcs(2) run on which :class:`MinOverAllProcess` decides
    3 > k = 2 values while the paper's algorithm decides 2.

    System of n = 4: group A = ``{0, 1}`` (clique, values 10, 11), group
    B = ``{2, 3}`` (star with source 2, values 6, 0).  Process 3's estimate
    ``min(0, 6) = 0`` is *not* any component's decision value (B decides
    source 2's flooded minimum... its root component is the singleton
    ``{2}``, which decides 6; 3 adopts 6).  A single transient edge
    ``3 -> 0`` in round 5 — exactly the round where A's members pass the
    ``r > n`` decision guard — leaks estimate 0 into process 0:

    * paper's line 27 ignores it (``3 ∉ PT(0, 5)``) → A decides 10;
    * the ablated line 27 adopts it → process 0 decides 0 while process 1
      decides 10 — the same root component splits, and the run has the
      three values {0, 10, 6}.

    Returns ``(adversary, values, k, n)``.
    """
    from repro.adversaries.static import ScheduleAdversary
    from repro.graphs.digraph import DiGraph

    n = 4
    stable = DiGraph(nodes=range(n))
    stable.add_edges([(0, 1), (1, 0)])  # group A clique
    stable.add_edges([(2, 3)])          # group B star (source 2)
    stable = stable.with_self_loops()
    leak_round = stable.copy()
    leak_round.add_edge(3, 0)           # the transient leak
    # rounds 1-4 stable, round 5 the leak, tail stable
    schedule = [stable, stable, stable, stable, leak_round]
    adversary = ScheduleAdversary(n, schedule, tail=stable)
    values = [10, 11, 6, 0]
    return adversary, values, 2, n


@dataclass(frozen=True)
class AblationOutcome:
    """Aggregate result of one variant across seeds."""

    variant: str
    runs: int
    invariant_violations: int
    agreement_violations: int
    termination_failures: int
    max_decision_round: int | None

    def as_row(self) -> list:
        return [
            self.variant,
            self.runs,
            self.invariant_violations,
            self.agreement_violations,
            self.termination_failures,
            self.max_decision_round,
        ]

    HEADERS = [
        "variant",
        "runs",
        "lemma_violations",
        "agreement_violations",
        "non_terminating",
        "max_decide_rnd",
    ]


def run_ablation(
    variant: str,
    n: int = 9,
    k: int = 3,
    seeds: range = range(8),
    noise: float = 0.35,
    purge_window: int | None = None,
    prune_unreachable: bool = True,
    min_over_all: bool = False,
) -> AblationOutcome:
    """Run one variant across seeds with full instrumentation."""
    invariant_violations = 0
    agreement_violations = 0
    termination_failures = 0
    max_decide: int | None = None
    for seed in seeds:
        adv = GroupedSourceAdversary(
            n, num_groups=k, seed=seed, noise=noise, topology="cycle"
        )
        cls = MinOverAllProcess if min_over_all else SkeletonAgreementProcess
        procs = [
            cls(
                pid,
                n,
                pid,
                purge_window=purge_window,
                prune_unreachable=prune_unreachable,
            )
            for pid in range(n)
        ]
        sim = RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=8 * n),
            invariant_hooks=[make_invariant_hook()],
        )
        try:
            run = sim.run()
        except InvariantViolation:
            invariant_violations += 1
            continue
        report = check_agreement_properties(run, k)
        if not report.k_agreement.holds or not report.validity.holds:
            agreement_violations += 1
        if not report.termination.holds:
            termination_failures += 1
        rounds = [d.round_no for d in run.decisions.values()]
        if rounds:
            max_decide = max(max_decide or 0, max(rounds))
    return AblationOutcome(
        variant=variant,
        runs=len(seeds),
        invariant_violations=invariant_violations,
        agreement_violations=agreement_violations,
        termination_failures=termination_failures,
        max_decision_round=max_decide,
    )


def standard_ablation_suite(n: int = 9, k: int = 3, seeds: range = range(8)):
    """The DESIGN.md §4 variant matrix."""
    return [
        run_ablation("paper (window=n, prune, PT-min)", n, k, seeds),
        run_ablation("window=n/2", n, k, seeds, purge_window=max(1, n // 2)),
        run_ablation("window=n-1", n, k, seeds, purge_window=n - 1),
        run_ablation("window=2n", n, k, seeds, purge_window=2 * n),
        run_ablation("no pruning", n, k, seeds, prune_unreachable=False),
        run_ablation("min over all received", n, k, seeds, min_over_all=True),
    ]
