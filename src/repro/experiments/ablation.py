"""Ablations of Algorithm 1's design choices (DESIGN.md §4).

Three knobs, each provably load-bearing in the paper's proofs:

* **Purge window** (line 24, ``re <= r - n``).  Smaller windows discard
  certificates that Lemma 4 still needs (information can legitimately be
  ``n - 1`` rounds old after traversing the longest path), breaking the
  completeness half (Lemma 5) of the approximation.  Larger windows retain
  stale edges beyond what Lemma 7's soundness argument tolerates.
* **Unreachable-node pruning** (line 25).  Without it, the approximation
  accumulates nodes that cannot reach ``p``; the strong-connectivity test
  then keeps failing for processes that should decide (delaying or
  preventing line-29 decisions).
* **Estimate source restriction** (line 27, min over ``PT_p`` only).
  :class:`MinOverAllProcess` takes the min over *all* received estimates —
  including transient, non-timely senders — which voids Lemma 14's common-
  estimate guarantee inside strongly connected components.

:func:`run_ablation` executes a variant across seeds and tabulates:
invariant violations, agreement outcomes, termination, and decision
latency.  The ABLATION benchmark asserts the paper's configuration is the
only one that is uniformly clean.

Instrumentation is **per variant**: most arms' findings are
outcome-level (agreement violations, termination failures, latency
shifts) and run *non-hooked*, which makes them expressible as pure
Algorithm-1 dynamics — they carry a :func:`fastpath_ablation_result`
fast-path twin and route through the batched tensor kernel under
``--backend auto``.  The **invariant-hook arm** (``window=2n``, whose
only observable finding is the Lemma-7 soundness violation the runtime
checkers catch) and the bespoke line-27 variant
(:class:`MinOverAllProcess`, whose transition the kernel does not
implement) stay on the reference simulator by construction; under
``auto`` they transparently fall back per spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.properties import check_agreement_properties
from repro.analysis.reporting import format_table
from repro.analysis.stats import decision_stats
from repro.core.algorithm import SkeletonAgreementProcess
from repro.core.invariants import InvariantViolation, make_invariant_hook
from repro.engine.aggregate import AggregateTable, group_results
from repro.engine.executor import (
    ScenarioResult,
    execute_scenarios,
    require_ok,
)
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import ScenarioSpec
from repro.rounds.messages import Message
from repro.rounds.simulator import RoundSimulator, SimulationConfig


class MinOverAllProcess(SkeletonAgreementProcess):
    """Line-27 ablation: min over *all* received estimates, not just PT_p.

    The transition replicates Algorithm 1 exactly except that line 27 reads
    every received message (including transient, non-timely senders), so the
    estimate entering the line-28/29 decision is the unrestricted minimum.
    This voids Lemma 14: a transient edge landing on one member of a root
    component in its decision round makes that member decide a foreign
    value its component peers never saw — see
    :func:`line27_counterexample`.
    """

    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        # Line 9.
        self.pt = self.pt & frozenset(received)
        # Lines 10-13.
        if not self.decided:
            deciders = sorted(q for q in self.pt if received[q].kind == "decide")
            if deciders:
                q = deciders[0]
                self.estimate = received[q].payload["x"]
                self._decide(round_no, self.estimate)
        # Lines 14-25.
        graphs = {q: received[q].payload["graph"] for q in self.pt}
        self.approx.round_update(round_no, self.pt, graphs)
        # Lines 26-30 with the ablated line 27.
        if not self.decided:
            candidates = [msg.payload["x"] for msg in received.values()]
            if candidates:
                self.estimate = min(candidates)
            if round_no > self.n and self.approx.is_strongly_connected():
                self._decide(round_no, self.estimate)
        if self.track_history:
            self.history[round_no] = (
                self.pt,
                self.approx.snapshot(),
                self.estimate,
            )


def line27_counterexample():
    """A crafted Psrcs(2) run on which :class:`MinOverAllProcess` decides
    3 > k = 2 values while the paper's algorithm decides 2.

    System of n = 4: group A = ``{0, 1}`` (clique, values 10, 11), group
    B = ``{2, 3}`` (star with source 2, values 6, 0).  Process 3's estimate
    ``min(0, 6) = 0`` is *not* any component's decision value (B decides
    source 2's flooded minimum... its root component is the singleton
    ``{2}``, which decides 6; 3 adopts 6).  A single transient edge
    ``3 -> 0`` in round 5 — exactly the round where A's members pass the
    ``r > n`` decision guard — leaks estimate 0 into process 0:

    * paper's line 27 ignores it (``3 ∉ PT(0, 5)``) → A decides 10;
    * the ablated line 27 adopts it → process 0 decides 0 while process 1
      decides 10 — the same root component splits, and the run has the
      three values {0, 10, 6}.

    Returns ``(adversary, values, k, n)``.
    """
    from repro.adversaries.static import ScheduleAdversary
    from repro.graphs.digraph import DiGraph

    n = 4
    stable = DiGraph(nodes=range(n))
    stable.add_edges([(0, 1), (1, 0)])  # group A clique
    stable.add_edges([(2, 3)])          # group B star (source 2)
    stable = stable.with_self_loops()
    leak_round = stable.copy()
    leak_round.add_edge(3, 0)           # the transient leak
    # rounds 1-4 stable, round 5 the leak, tail stable
    schedule = [stable, stable, stable, stable, leak_round]
    adversary = ScheduleAdversary(n, schedule, tail=stable)
    values = [10, 11, 6, 0]
    return adversary, values, 2, n


@dataclass(frozen=True)
class AblationOutcome:
    """Aggregate result of one variant across seeds.

    ``invariant_violations`` is ``None`` for variants that ran without
    the lemma checkers attached ("not instrumented" — their findings are
    the outcome columns), distinguishable from a checked-and-clean ``0``.
    """

    variant: str
    runs: int
    invariant_violations: int | None
    agreement_violations: int
    termination_failures: int
    max_decision_round: int | None

    def as_row(self) -> list:
        return [
            self.variant,
            self.runs,
            self.invariant_violations,
            self.agreement_violations,
            self.termination_failures,
            self.max_decision_round,
        ]

    HEADERS = [
        "variant",
        "runs",
        "lemma_violations",
        "agreement_violations",
        "non_terminating",
        "max_decide_rnd",
    ]


def ablation_spec(
    variant: str,
    n: int,
    k: int,
    seed: int,
    noise: float = 0.35,
    purge_window: int | None = None,
    prune_unreachable: bool = True,
    min_over_all: bool = False,
    hooks: bool = True,
) -> ScenarioSpec:
    """One (variant, seed) cell of the ablation matrix as a content-
    addressed scenario.  The knobs ride in the spec options; the variant
    label is the aggregation key.  ``hooks`` controls whether the lemma
    checkers are attached (the option is recorded only when off, so
    hook-instrumented specs keep their historical content hashes)."""
    options: dict = {"family": "ablation", "variant": variant}
    if purge_window is not None:
        options["purge_window"] = purge_window
    if not prune_unreachable:
        options["prune_unreachable"] = False
    if min_over_all:
        options["min_over_all"] = True
    if not hooks:
        options["hooks"] = False
    return ScenarioSpec(
        n=n,
        k=k,
        num_groups=k,
        seed=seed,
        noise=noise,
        topology="cycle",
        max_rounds=8 * n,
        options=tuple(sorted(options.items())),
    )


def run_ablation_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Per-scenario runner: one run, instrumented when the spec says so.

    Hook-instrumented specs (``hooks`` option absent or true) attach
    every lemma checker; an invariant violation is a *finding*, not a
    failure — it comes back as an ok result flagged in the extras.
    Non-hooked specs record ``invariant_violation = None`` ("not
    instrumented"), distinguishable from a checked-and-clean ``False``.
    """
    adv = spec.build_adversary()
    hooked = spec.opt("hooks", True)
    cls = (
        MinOverAllProcess
        if spec.opt("min_over_all")
        else SkeletonAgreementProcess
    )
    procs = [
        cls(
            pid,
            spec.n,
            pid,
            purge_window=spec.opt("purge_window"),
            prune_unreachable=spec.opt("prune_unreachable", True),
        )
        for pid in range(spec.n)
    ]
    sim = RoundSimulator(
        procs,
        adv,
        SimulationConfig(max_rounds=spec.resolved_max_rounds()),
        invariant_hooks=[make_invariant_hook()] if hooked else [],
    )
    try:
        run = sim.run()
    except InvariantViolation as exc:
        return ScenarioResult(
            spec=spec,
            extras=(
                ("invariant_violation", True),
                ("violation", f"{exc}"[:200]),
            ),
        )
    report = check_agreement_properties(run, spec.k)
    stats = decision_stats(run)
    return ScenarioResult(
        spec=spec,
        num_rounds=run.num_rounds,
        distinct_decisions=report.num_decision_values,
        all_decided=report.termination.holds,
        k_agreement_holds=report.k_agreement.holds,
        validity_holds=report.validity.holds,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(run.decision_values(), key=repr)),
        extras=(("invariant_violation", False if hooked else None),),
    )


def fastpath_ablation_result(spec, fast, adversary) -> ScenarioResult:
    """The fast-path twin of :func:`run_ablation_scenario` for the
    non-hooked variants.

    Builds the exact same result record — metrics *and* extras — from a
    finished :class:`~repro.rounds.fastpath.FastPathRun` (the kernel
    natively speaks the ``purge_window`` / ``prune_unreachable`` knobs),
    so the vectorizable arms of the ablation matrix ride the batched
    backends with byte-identical journals.  Hook-instrumented specs and
    the bespoke line-27 variant are out of scope
    (:func:`_ablation_fast_supported` excludes them before any lane is
    admitted), so ``--backend auto`` falls back to the reference runner
    exactly there.
    """
    from repro.engine.backends import fastpath_decision_stats

    stats, _ = fastpath_decision_stats(fast, adversary)
    values = fast.decision_values()
    proposals = set(fast.initial_values)
    return ScenarioResult(
        spec=spec,
        num_rounds=fast.num_rounds,
        distinct_decisions=len(values),
        all_decided=fast.all_decided(),
        k_agreement_holds=len(values) <= spec.k,
        validity_holds=values <= proposals,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(values, key=repr)),
        extras=(("invariant_violation", None),),
    )


def _ablation_fast_supported(spec: ScenarioSpec) -> bool:
    """Which ablation arms the fast twin covers: non-hooked variants of
    Algorithm 1 proper (the invariant-hook arm and the
    :class:`MinOverAllProcess` line-27 variant stay on the reference
    simulator by construction)."""
    return not spec.opt("hooks", True) and not spec.opt("min_over_all")


def standard_variants(n: int) -> list[tuple[str, dict]]:
    """The DESIGN.md §4 variant matrix as (label, knobs) pairs.

    ``hooks`` marks the instrumentation arms.  ``window=2n`` is *the*
    invariant-hook arm: an oversized window's unsoundness (stale Lemma-7
    certificates) is invisible in the outcome columns and only the
    runtime checkers catch it.  The completeness ablations (shrunk
    windows, no pruning) and the paper configuration manifest in the
    outcome columns themselves (termination failures, latency shifts,
    agreement violations) and run non-hooked — which lets them ride the
    batched fast path.  ``min over all received`` keeps its historical
    instrumentation; it is reference-bound either way (bespoke line-27
    transition)."""
    return [
        ("paper (window=n, prune, PT-min)", {"hooks": False}),
        ("window=n/2", {"purge_window": max(1, n // 2), "hooks": False}),
        ("window=n-1", {"purge_window": n - 1, "hooks": False}),
        ("window=2n", {"purge_window": 2 * n}),
        ("no pruning", {"prune_unreachable": False, "hooks": False}),
        ("min over all received", {"min_over_all": True}),
    ]


def ablation_outcomes(results: Sequence[ScenarioResult]) -> list[AblationOutcome]:
    """Aggregate per-scenario results into one outcome row per variant
    (store-native: works straight off journaled records, grid order in,
    variant order out)."""
    outcomes = []
    for (variant,), members in group_results(results, ("variant",)).items():
        clean = [r for r in members if not r.extra("invariant_violation")]
        decide_rounds = [
            r.last_decision_round
            for r in clean
            if r.last_decision_round is not None
        ]
        # None = "no run of this variant was instrumented" (extras carry
        # invariant_violation=None), not "checked and found clean".
        instrumented = any(
            r.extra("invariant_violation") is not None for r in members
        )
        outcomes.append(
            AblationOutcome(
                variant=variant,
                runs=len(members),
                invariant_violations=sum(
                    1 for r in members if r.extra("invariant_violation")
                )
                if instrumented
                else None,
                agreement_violations=sum(
                    1
                    for r in clean
                    if not r.k_agreement_holds or not r.validity_holds
                ),
                termination_failures=sum(
                    1 for r in clean if not r.all_decided
                ),
                max_decision_round=max(decide_rounds) if decide_rounds else None,
            )
        )
    return outcomes


def run_ablation(
    variant: str,
    n: int = 9,
    k: int = 3,
    seeds: range = range(8),
    noise: float = 0.35,
    purge_window: int | None = None,
    prune_unreachable: bool = True,
    min_over_all: bool = False,
    hooks: bool = True,
    jobs: int = 1,
) -> AblationOutcome:
    """Run one variant across seeds (a thin front over the registry
    runner + aggregator); ``hooks`` attaches the lemma checkers."""
    specs = [
        ablation_spec(
            variant,
            n,
            k,
            seed,
            noise=noise,
            purge_window=purge_window,
            prune_unreachable=prune_unreachable,
            min_over_all=min_over_all,
            hooks=hooks,
        )
        for seed in seeds
    ]
    results = require_ok(execute_scenarios(specs, jobs=jobs))
    return ablation_outcomes(results)[0]


def ablation_grid(
    n: int = 9, k: int = 3, seeds: range = range(8), noise: float = 0.35
) -> list[ScenarioSpec]:
    """The full DESIGN.md §4 matrix: every variant × every seed."""
    return [
        ablation_spec(variant, n, k, seed, noise=noise, **knobs)
        for variant, knobs in standard_variants(n)
        for seed in seeds
    ]


def standard_ablation_suite(
    n: int = 9, k: int = 3, seeds: range = range(8), jobs: int = 1
) -> list[AblationOutcome]:
    """The DESIGN.md §4 variant matrix — one campaign over the whole
    matrix (parallelism spans variants *and* seeds)."""
    results = require_ok(execute_scenarios(ablation_grid(n, k, seeds), jobs=jobs))
    return ablation_outcomes(results)


# ----------------------------------------------------------------------
# Experiment-registry spec
# ----------------------------------------------------------------------
def _ablation_grid(params) -> list[ScenarioSpec]:
    return ablation_grid(
        n=_scalar(params["n"]),
        k=_scalar(params["k"]),
        seeds=range(params["seeds"]),
        noise=_scalar(params.get("noise", 0.35)),
    )


def _scalar(value):
    return value[0] if isinstance(value, (list, tuple)) else value


def _ablation_aggregate(results) -> AggregateTable:
    outcomes = ablation_outcomes(results)
    return AggregateTable(
        headers=tuple(AblationOutcome.HEADERS),
        rows=tuple(tuple(o.as_row()) for o in outcomes),
    )


def _ablation_render(results) -> tuple[str, int]:
    outcomes = ablation_outcomes(results)
    spec = results[0].spec
    text = format_table(
        AblationOutcome.HEADERS,
        [o.as_row() for o in outcomes],
        title=f"Ablation matrix (n={spec.n}, k={spec.k}, "
        f"{outcomes[0].runs} seeds)",
    )
    paper = outcomes[0]
    clean = (
        paper.invariant_violations in (0, None)
        and paper.agreement_violations == 0
        and paper.termination_failures == 0
    )
    return text, 0 if clean else 1


register(
    ExperimentSpec(
        name="ablation",
        title="ABLATION: Algorithm 1 design knobs across seeded runs",
        build_grid=_ablation_grid,
        render=_ablation_render,
        headers=(
            "variant",
            "seed",
            "status",
            "lemma_violation",
            "values",
            "decided",
            "last_rnd",
        ),
        row=lambda r: [
            r.spec.opt("variant"),
            r.spec.seed,
            r.status,
            r.extra("invariant_violation"),
            r.distinct_decisions,
            r.all_decided,
            r.last_decision_round,
        ],
        runner=run_ablation_scenario,
        fast_result=fastpath_ablation_result,
        fast_supported=_ablation_fast_supported,
        aggregate=_ablation_aggregate,
        defaults=(("k", 3), ("n", 9), ("noise", 0.35), ("seeds", 6)),
        vectorizable=True,
    )
)
