"""Paper experiments: Figure 1, the theorem constructions, and the
parameter-sweep harness used by the benchmarks."""

from repro.experiments.figure1 import (
    FIGURE1_N,
    figure1_adversary,
    figure1_run,
    figure1_panels,
    render_figure1,
)
from repro.experiments.theorem2 import theorem2_experiment, Theorem2Report
from repro.experiments.eventual import eventual_lower_bound, EventualReport
from repro.experiments.sweeps import (
    run_algorithm1,
    SweepResult,
    agreement_sweep,
    termination_sweep,
)
from repro.experiments.ablation import (
    AblationOutcome,
    MinOverAllProcess,
    line27_counterexample,
    run_ablation,
    standard_ablation_suite,
)
from repro.experiments.duality import (
    DualityProfile,
    achievable_k,
    duality_profile,
    duality_sweep,
)

__all__ = [
    "FIGURE1_N",
    "figure1_adversary",
    "figure1_run",
    "figure1_panels",
    "render_figure1",
    "theorem2_experiment",
    "Theorem2Report",
    "eventual_lower_bound",
    "EventualReport",
    "run_algorithm1",
    "SweepResult",
    "agreement_sweep",
    "termination_sweep",
    "AblationOutcome",
    "MinOverAllProcess",
    "line27_counterexample",
    "run_ablation",
    "standard_ablation_suite",
    "DualityProfile",
    "achievable_k",
    "duality_profile",
    "duality_sweep",
]
