"""Paper experiments: Figure 1, the theorem constructions, and the
parameter-sweep harness used by the benchmarks.

Every family in this package is also a registered
:class:`~repro.engine.registry.ExperimentSpec`: importing a family module
registers its grid builder, per-scenario runner, row schema and
aggregator, making it executable as a parallel resumable campaign via
``skeleton-agreement campaign run --family <name>`` (the historical
per-family entry points below are thin fronts over the same specs)."""

from repro.experiments.figure1 import (
    FIGURE1_N,
    figure1_adversary,
    figure1_run,
    figure1_panels,
    panels_from_run,
    render_figure1,
    render_panels,
    run_figure1_scenario,
)
from repro.experiments.theorem2 import (
    theorem2_experiment,
    run_theorem2_scenario,
    Theorem2Report,
)
from repro.experiments.eventual import (
    eventual_grid,
    eventual_lower_bound,
    run_eventual_scenario,
    EventualReport,
)
from repro.experiments.sweeps import (
    run_algorithm1,
    SweepResult,
    agreement_sweep,
    sweep_result_from_scenario,
    termination_sweep,
)
from repro.experiments.ablation import (
    AblationOutcome,
    MinOverAllProcess,
    ablation_grid,
    ablation_outcomes,
    line27_counterexample,
    run_ablation,
    run_ablation_scenario,
    standard_ablation_suite,
    standard_variants,
)
from repro.experiments.duality import (
    DualityProfile,
    achievable_k,
    duality_grid,
    duality_profile,
    duality_rows,
    duality_sweep,
    run_duality_scenario,
)

__all__ = [
    "FIGURE1_N",
    "figure1_adversary",
    "figure1_run",
    "figure1_panels",
    "panels_from_run",
    "render_figure1",
    "render_panels",
    "run_figure1_scenario",
    "theorem2_experiment",
    "run_theorem2_scenario",
    "Theorem2Report",
    "eventual_grid",
    "eventual_lower_bound",
    "run_eventual_scenario",
    "EventualReport",
    "run_algorithm1",
    "SweepResult",
    "agreement_sweep",
    "sweep_result_from_scenario",
    "termination_sweep",
    "AblationOutcome",
    "MinOverAllProcess",
    "ablation_grid",
    "ablation_outcomes",
    "line27_counterexample",
    "run_ablation",
    "run_ablation_scenario",
    "standard_ablation_suite",
    "standard_variants",
    "DualityProfile",
    "achievable_k",
    "duality_grid",
    "duality_profile",
    "duality_rows",
    "duality_sweep",
    "run_duality_scenario",
]
