"""Exploring the §V duality: communication predicates vs graph properties.

The paper closes with a program: "finding a graph-theoretic
characterization of the weakest synchrony requirements for different
agreement problems and further exploring the duality between communication
predicates and graph-theoretic properties."

This module makes the duality concrete for the objects the paper already
relates.  For a stable skeleton ``G``:

* ``rc(G)``   — the number of root components.  Algorithm 1's achievable
  agreement: it decides at most ``rc(G)`` values on any run with stable
  skeleton ``G`` (Lemma 15's correspondence), and the Theorem 2 argument
  generalizes to show *no* algorithm can do better when root components
  cannot learn each other's values: each root component must decide on its
  own closure of input values.
* ``α(G)``    — the independence number of the conflict graph, i.e. the
  tightest ``k`` with ``Psrcs(k)``.

Theorem 1 is the inequality ``rc(G) <= α(G)``; the *duality gap*
``α(G) - rc(G)`` measures how much the predicate over-estimates the
structural difficulty (the gap is 0 on the paper's tight constructions and
strictly positive e.g. on directed chains).  :func:`duality_profile`
computes these per skeleton; :func:`duality_sweep` tabulates gap statistics
over random skeleton ensembles — the DUALITY experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.condensation import count_root_components
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.predicates.psrcs import Psrcs


@dataclass(frozen=True)
class DualityProfile:
    """Structural profile of one stable skeleton."""

    n: int
    root_components: int
    alpha: int  # tightest k with Psrcs(k)

    @property
    def gap(self) -> int:
        """``α - rc >= 0`` (Theorem 1)."""
        return self.alpha - self.root_components

    @property
    def theorem1_holds(self) -> bool:
        return self.root_components <= self.alpha


def duality_profile(skeleton: DiGraph) -> DualityProfile:
    """Compute ``rc`` and ``α`` for a stable skeleton."""
    return DualityProfile(
        n=skeleton.number_of_nodes(),
        root_components=count_root_components(skeleton),
        alpha=Psrcs(1).tightest_k(skeleton),
    )


def achievable_k(skeleton: DiGraph) -> int:
    """The structural agreement number: the number of root components.

    Algorithm 1 decides at most this many values on runs with this stable
    skeleton; the Theorem-2-style indistinguishability argument shows no
    algorithm achieves fewer when the root components are mutually
    unreachable.  This is the graph-theoretic characterization §V asks
    about, restricted to the objects the paper proves things for.
    """
    return count_root_components(skeleton)


def chain_skeleton(n: int) -> DiGraph:
    """The canonical positive-gap witness: a directed chain.

    One root component (``{0}``), but ``PT`` sets along the chain are
    pairwise disjoint beyond distance 2, so ``α`` grows linearly:
    ``α(chain_n) = ceil(n / 2)``.  The duality gap is unbounded.
    """
    g = DiGraph(nodes=range(n))
    for q in range(n):
        g.add_edge(q, q)
    for q in range(n - 1):
        g.add_edge(q, q + 1)
    return g


def duality_sweep(
    ns: tuple[int, ...] = (6, 8, 10),
    densities: tuple[float, ...] = (0.05, 0.15, 0.3),
    seeds: range = range(5),
) -> list[list]:
    """Tabulate (n, p, mean rc, mean α, mean gap, Theorem 1 violations)
    over random skeleton ensembles."""
    rows: list[list] = []
    for n in ns:
        for p in densities:
            rcs, alphas, gaps, violations = [], [], [], 0
            for seed in seeds:
                g = gnp_random(
                    n, p, np.random.default_rng([n, int(p * 1000), seed]),
                    self_loops=True,
                )
                profile = duality_profile(g)
                rcs.append(profile.root_components)
                alphas.append(profile.alpha)
                gaps.append(profile.gap)
                if not profile.theorem1_holds:
                    violations += 1
            rows.append(
                [
                    n,
                    p,
                    float(np.mean(rcs)),
                    float(np.mean(alphas)),
                    float(np.mean(gaps)),
                    violations,
                ]
            )
    return rows
