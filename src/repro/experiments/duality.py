"""Exploring the §V duality: communication predicates vs graph properties.

The paper closes with a program: "finding a graph-theoretic
characterization of the weakest synchrony requirements for different
agreement problems and further exploring the duality between communication
predicates and graph-theoretic properties."

This module makes the duality concrete for the objects the paper already
relates.  For a stable skeleton ``G``:

* ``rc(G)``   — the number of root components.  Algorithm 1's achievable
  agreement: it decides at most ``rc(G)`` values on any run with stable
  skeleton ``G`` (Lemma 15's correspondence), and the Theorem 2 argument
  generalizes to show *no* algorithm can do better when root components
  cannot learn each other's values: each root component must decide on its
  own closure of input values.
* ``α(G)``    — the independence number of the conflict graph, i.e. the
  tightest ``k`` with ``Psrcs(k)``.

Theorem 1 is the inequality ``rc(G) <= α(G)``; the *duality gap*
``α(G) - rc(G)`` measures how much the predicate over-estimates the
structural difficulty (the gap is 0 on the paper's tight constructions and
strictly positive e.g. on directed chains).  :func:`duality_profile`
computes these per skeleton; :func:`duality_sweep` tabulates gap statistics
over random skeleton ensembles — the DUALITY experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adversaries.static import StaticAdversary
from repro.engine.aggregate import AggregateTable, Column, rollup
from repro.engine.executor import execute_scenarios, require_ok
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import ScenarioSpec, register_adversary
from repro.graphs.condensation import count_root_components
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.predicates.psrcs import Psrcs


@dataclass(frozen=True)
class DualityProfile:
    """Structural profile of one stable skeleton."""

    n: int
    root_components: int
    alpha: int  # tightest k with Psrcs(k)

    @property
    def gap(self) -> int:
        """``α - rc >= 0`` (Theorem 1)."""
        return self.alpha - self.root_components

    @property
    def theorem1_holds(self) -> bool:
        return self.root_components <= self.alpha


def duality_profile(skeleton: DiGraph) -> DualityProfile:
    """Compute ``rc`` and ``α`` for a stable skeleton."""
    return DualityProfile(
        n=skeleton.number_of_nodes(),
        root_components=count_root_components(skeleton),
        alpha=Psrcs(1).tightest_k(skeleton),
    )


def achievable_k(skeleton: DiGraph) -> int:
    """The structural agreement number: the number of root components.

    Algorithm 1 decides at most this many values on runs with this stable
    skeleton; the Theorem-2-style indistinguishability argument shows no
    algorithm achieves fewer when the root components are mutually
    unreachable.  This is the graph-theoretic characterization §V asks
    about, restricted to the objects the paper proves things for.
    """
    return count_root_components(skeleton)


def chain_skeleton(n: int) -> DiGraph:
    """The canonical positive-gap witness: a directed chain.

    One root component (``{0}``), but ``PT`` sets along the chain are
    pairwise disjoint beyond distance 2, so ``α`` grows linearly:
    ``α(chain_n) = ceil(n / 2)``.  The duality gap is unbounded.
    """
    g = DiGraph(nodes=range(n))
    for q in range(n):
        g.add_edge(q, q)
    for q in range(n - 1):
        g.add_edge(q, q + 1)
    return g


def _build_gnp_adversary(spec: ScenarioSpec):
    """The ``gnp`` adversary: a static random skeleton (the DUALITY
    ensembles are structural — the runner only reads the declared stable
    graph, it never simulates)."""
    density = spec.opt("density", 0.15)
    rng = np.random.default_rng([spec.n, int(density * 1000), spec.seed])
    return StaticAdversary(
        spec.n, gnp_random(spec.n, density, rng, self_loops=True)
    )


register_adversary("gnp", _build_gnp_adversary)


def run_duality_scenario(spec: ScenarioSpec) -> "ScenarioResult":
    """Per-scenario runner: profile one random skeleton (no simulation).
    ``rc`` lands in the core ``root_components`` column; ``α``, the gap
    and the Theorem 1 verdict ride in the extras."""
    from repro.engine.executor import ScenarioResult

    profile = duality_profile(spec.build_adversary().declared_stable_graph())
    return ScenarioResult(
        spec=spec,
        num_rounds=0,
        root_components=profile.root_components,
        extras=(
            ("alpha", profile.alpha),
            ("gap", profile.gap),
            ("theorem1_holds", profile.theorem1_holds),
        ),
    )


def duality_grid(
    ns: Sequence[int] = (6, 8, 10),
    densities: Sequence[float] = (0.05, 0.15, 0.3),
    seeds: Sequence[int] = range(5),
) -> list[ScenarioSpec]:
    """The DUALITY ensemble: every (n, density, seed) skeleton."""
    return [
        ScenarioSpec(
            n=n,
            k=1,
            seed=seed,
            adversary="gnp",
            options=tuple(
                sorted({"family": "duality", "density": p}.items())
            ),
        )
        for n in ns
        for p in densities
        for seed in seeds
    ]


def duality_rows(results: Sequence) -> list[list]:
    """(n, p, mean rc, mean α, mean gap, Theorem 1 violations) per
    ensemble cell — store-native aggregation in grid order."""
    table = rollup(
        results,
        group_by=("n", "density"),
        columns=(
            Column("mean rc", "root_components", "mean"),
            Column("mean α", "alpha", "mean"),
            Column("mean gap", "gap", "mean"),
            Column("violations", "theorem1_holds", "count_false"),
        ),
    )
    return [list(row) for row in table.rows]


def duality_sweep(
    ns: tuple[int, ...] = (6, 8, 10),
    densities: tuple[float, ...] = (0.05, 0.15, 0.3),
    seeds: range = range(5),
    jobs: int = 1,
) -> list[list]:
    """Tabulate (n, p, mean rc, mean α, mean gap, Theorem 1 violations)
    over random skeleton ensembles (a thin front over the registry
    runner + the store-native aggregator)."""
    results = require_ok(
        execute_scenarios(duality_grid(ns, densities, seeds), jobs=jobs)
    )
    return duality_rows(results)


# ----------------------------------------------------------------------
# Experiment-registry spec
# ----------------------------------------------------------------------
DUALITY_HEADERS = ["n", "density", "mean rc", "mean α", "mean gap",
                   "Thm1 violations"]


def _duality_grid(params) -> list[ScenarioSpec]:
    return duality_grid(
        ns=tuple(params["n"]),
        densities=tuple(params["density"]),
        seeds=range(params["seeds"]),
    )


def _duality_aggregate(results) -> AggregateTable:
    return AggregateTable(
        headers=tuple(DUALITY_HEADERS),
        rows=tuple(tuple(row) for row in duality_rows(results)),
    )


def _duality_render(results) -> tuple[str, int]:
    from repro.analysis.reporting import format_table

    rows = duality_rows(results)
    text = format_table(
        DUALITY_HEADERS,
        rows,
        title="Duality: root components vs tightest Psrcs level (§V)",
    )
    return text, 0 if all(row[5] == 0 for row in rows) else 1


register(
    ExperimentSpec(
        name="duality",
        title="DUALITY: rc(G) vs α(G) over random skeleton ensembles (§V)",
        build_grid=_duality_grid,
        render=_duality_render,
        headers=("n", "density", "seed", "status", "rc", "alpha", "gap",
                 "thm1"),
        row=lambda r: [
            r.spec.n,
            r.spec.opt("density"),
            r.spec.seed,
            r.status,
            r.root_components,
            r.extra("alpha"),
            r.extra("gap"),
            r.extra("theorem1_holds"),
        ],
        runner=run_duality_scenario,
        aggregate=_duality_aggregate,
        defaults=(
            ("density", (0.05, 0.15, 0.3)),
            ("n", (6, 8, 10)),
            ("seeds", 5),
        ),
    )
)
