"""Parameter-sweep harness.

One entry point per experiment family; each returns structured
:class:`SweepResult` rows that the benchmarks print as tables (and the
tests assert on).  Everything is seed-deterministic.

The sweeps are thin fronts over the campaign engine
(:mod:`repro.engine`): each builds a scenario grid, executes it through
:func:`repro.engine.executor.execute_scenarios` (``jobs > 1`` fans out
over a process pool) and converts the engine's summary records into the
historical :class:`SweepResult` rows.  Row order and values are identical
to the old in-process loops — the grid's canonical expansion order *is*
the old loop nesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.adversaries.base import Adversary
from repro.analysis.reporting import format_table
from repro.core.algorithm import make_processes
from repro.engine.executor import (
    ScenarioResult,
    execute_scenarios,
    require_ok,
)
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import agreement_grid, termination_grid
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def run_algorithm1(
    adversary: Adversary,
    values: list[Any] | None = None,
    max_rounds: int | None = None,
    track_history: bool = False,
    record_messages: bool = False,
    invariant_hooks: Sequence = (),
    purge_window: int | None = None,
    prune_unreachable: bool = True,
) -> Run:
    """Simulate Algorithm 1 against ``adversary`` with distinct inputs.

    ``max_rounds`` defaults to a generous multiple of Lemma 11's bound for
    construct-by-design adversaries (stabilization happens within the noise
    quiet period, so ``6n + 20`` is ample)."""
    n = adversary.n
    processes = make_processes(
        n,
        values,
        track_history=track_history,
        purge_window=purge_window,
        prune_unreachable=prune_unreachable,
    )
    config = SimulationConfig(
        max_rounds=max_rounds or (6 * n + 20),
        record_messages=record_messages,
        record_states=False,
    )
    return RoundSimulator(
        processes, adversary, config, invariant_hooks=invariant_hooks
    ).run()


@dataclass(frozen=True)
class SweepResult:
    """One row of a sweep table."""

    n: int
    k: int
    num_groups: int
    seed: int
    noise: float
    root_components: int
    psrcs_holds: bool
    distinct_decisions: int
    all_decided: bool
    last_decision_round: int | None
    lemma11_bound: int | None

    def as_row(self) -> list:
        return [
            self.n,
            self.k,
            self.num_groups,
            self.seed,
            self.noise,
            self.root_components,
            self.psrcs_holds,
            self.distinct_decisions,
            self.all_decided,
            self.last_decision_round,
            self.lemma11_bound,
        ]

    HEADERS = [
        "n",
        "k",
        "groups",
        "seed",
        "noise",
        "roots",
        "Psrcs(k)",
        "values",
        "decided",
        "last_rnd",
        "bound",
    ]


def sweep_result_from_scenario(result: ScenarioResult) -> SweepResult:
    """Convert one engine summary record into a sweep-table row."""
    spec = result.spec
    return SweepResult(
        n=spec.n,
        k=spec.k,
        num_groups=spec.num_groups,
        seed=spec.seed,
        noise=spec.noise,
        root_components=result.root_components,
        psrcs_holds=result.psrcs_holds,
        distinct_decisions=result.distinct_decisions,
        all_decided=result.all_decided,
        last_decision_round=result.last_decision_round,
        lemma11_bound=result.lemma11_bound,
    )


def agreement_sweep(
    ns: Sequence[int],
    ks: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    topology: str = "cycle",
    jobs: int = 1,
    backend: str = "auto",
) -> list[SweepResult]:
    """ALG-AGREE / THM1: for every (n, k, seed) with every feasible group
    count ``m <= k``, run Algorithm 1 and record root components, predicate
    status and decision-value counts.

    ``backend`` defaults to ``"auto"`` (vectorized fast path with
    transparent fallback) — metrics are identical either way."""
    grid = agreement_grid(
        ns, ks, seeds, noises=(noise,), topology=topology
    )
    results = require_ok(
        execute_scenarios(grid.expand(), jobs=jobs, backend=backend)
    )
    return [sweep_result_from_scenario(r) for r in results]


def termination_sweep(
    ns: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    num_groups: int = 2,
    jobs: int = 1,
    backend: str = "auto",
) -> list[SweepResult]:
    """ALG-TERM: decision latency vs Lemma 11's ``r_ST + 2n - 1`` bound
    across system sizes (``k = m = min(num_groups, n)``)."""
    specs = termination_grid(ns, seeds, noise=noise, num_groups=num_groups)
    results = require_ok(execute_scenarios(specs, jobs=jobs, backend=backend))
    return [sweep_result_from_scenario(r) for r in results]


# ----------------------------------------------------------------------
# Experiment-registry specs (the sweeps keep untagged stock-runner specs,
# so existing journals and canonical summaries keep their hashes/bytes).
# ----------------------------------------------------------------------
def _noise_tuple(value) -> tuple[float, ...]:
    return tuple(value) if isinstance(value, (list, tuple)) else (value,)


def _sweeps_grid(params) -> list:
    return agreement_grid(
        ns=params["n"],
        ks=params["k"],
        seeds=range(params["seeds"]),
        noises=_noise_tuple(params["noise"]),
        topology=params["topology"],
    ).expand()


def _sweeps_render(results) -> tuple[str, int]:
    rows = [sweep_result_from_scenario(r) for r in results]
    text = format_table(
        SweepResult.HEADERS,
        [r.as_row() for r in rows],
        title="Agreement sweep (Theorem 16 / Theorem 1)",
    )
    bad = [r for r in rows if r.distinct_decisions > r.k or not r.all_decided]
    if bad:
        return text + f"\n\n{len(bad)} runs violated their bound!", 1
    return (
        text + f"\n\nall {len(rows)} runs within their k bound and terminated",
        0,
    )


register(
    ExperimentSpec(
        name="sweeps",
        title="ALG-AGREE / THM1 agreement sweep over (n, k, groups, seed)",
        build_grid=_sweeps_grid,
        render=_sweeps_render,
        headers=tuple(SweepResult.HEADERS),
        row=lambda r: sweep_result_from_scenario(r).as_row(),
        defaults=(
            ("k", (2, 3)),
            ("n", (6, 9)),
            ("noise", (0.2,)),
            ("seeds", 2),
            ("topology", "cycle"),
        ),
        vectorizable=True,
    )
)


def _termination_grid(params) -> list:
    return termination_grid(
        ns=params["n"],
        seeds=range(params["seeds"]),
        noise=_noise_tuple(params["noise"])[0],
        num_groups=params["groups"],
    )


def _termination_render(results) -> tuple[str, int]:
    rows = [sweep_result_from_scenario(r) for r in results]
    text = format_table(
        SweepResult.HEADERS,
        [r.as_row() for r in rows],
        title="Termination sweep (Lemma 11: decide by r_ST + 2n - 1)",
    )
    late = [r for r in results if r.within_bound is False or not r.all_decided]
    if late:
        return text + f"\n\n{len(late)} runs missed Lemma 11's bound!", 1
    return text + f"\n\nall {len(rows)} runs decided within Lemma 11's bound", 0


register(
    ExperimentSpec(
        name="termination",
        title="ALG-TERM decision latency vs Lemma 11's bound across n",
        build_grid=_termination_grid,
        render=_termination_render,
        headers=tuple(SweepResult.HEADERS),
        row=lambda r: sweep_result_from_scenario(r).as_row(),
        defaults=(
            ("groups", 2),
            ("n", (6, 9, 12)),
            ("noise", (0.15,)),
            ("seeds", 3),
        ),
        vectorizable=True,
    )
)
