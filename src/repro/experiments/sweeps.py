"""Parameter-sweep harness.

One entry point per experiment family; each returns structured
:class:`SweepResult` rows that the benchmarks print as tables (and the
tests assert on).  Everything is seed-deterministic.

The sweeps are thin fronts over the campaign engine
(:mod:`repro.engine`): each builds a scenario grid, executes it through
:func:`repro.engine.executor.execute_scenarios` (``jobs > 1`` fans out
over a process pool) and converts the engine's summary records into the
historical :class:`SweepResult` rows.  Row order and values are identical
to the old in-process loops — the grid's canonical expansion order *is*
the old loop nesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.adversaries.base import Adversary
from repro.core.algorithm import make_processes
from repro.engine.executor import (
    ScenarioResult,
    execute_scenarios,
    require_ok,
)
from repro.engine.scenarios import agreement_grid, termination_grid
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def run_algorithm1(
    adversary: Adversary,
    values: list[Any] | None = None,
    max_rounds: int | None = None,
    track_history: bool = False,
    record_messages: bool = False,
    invariant_hooks: Sequence = (),
    purge_window: int | None = None,
    prune_unreachable: bool = True,
) -> Run:
    """Simulate Algorithm 1 against ``adversary`` with distinct inputs.

    ``max_rounds`` defaults to a generous multiple of Lemma 11's bound for
    construct-by-design adversaries (stabilization happens within the noise
    quiet period, so ``6n + 20`` is ample)."""
    n = adversary.n
    processes = make_processes(
        n,
        values,
        track_history=track_history,
        purge_window=purge_window,
        prune_unreachable=prune_unreachable,
    )
    config = SimulationConfig(
        max_rounds=max_rounds or (6 * n + 20),
        record_messages=record_messages,
        record_states=False,
    )
    return RoundSimulator(
        processes, adversary, config, invariant_hooks=invariant_hooks
    ).run()


@dataclass(frozen=True)
class SweepResult:
    """One row of a sweep table."""

    n: int
    k: int
    num_groups: int
    seed: int
    noise: float
    root_components: int
    psrcs_holds: bool
    distinct_decisions: int
    all_decided: bool
    last_decision_round: int | None
    lemma11_bound: int | None

    def as_row(self) -> list:
        return [
            self.n,
            self.k,
            self.num_groups,
            self.seed,
            self.noise,
            self.root_components,
            self.psrcs_holds,
            self.distinct_decisions,
            self.all_decided,
            self.last_decision_round,
            self.lemma11_bound,
        ]

    HEADERS = [
        "n",
        "k",
        "groups",
        "seed",
        "noise",
        "roots",
        "Psrcs(k)",
        "values",
        "decided",
        "last_rnd",
        "bound",
    ]


def sweep_result_from_scenario(result: ScenarioResult) -> SweepResult:
    """Convert one engine summary record into a sweep-table row."""
    spec = result.spec
    return SweepResult(
        n=spec.n,
        k=spec.k,
        num_groups=spec.num_groups,
        seed=spec.seed,
        noise=spec.noise,
        root_components=result.root_components,
        psrcs_holds=result.psrcs_holds,
        distinct_decisions=result.distinct_decisions,
        all_decided=result.all_decided,
        last_decision_round=result.last_decision_round,
        lemma11_bound=result.lemma11_bound,
    )


def agreement_sweep(
    ns: Sequence[int],
    ks: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    topology: str = "cycle",
    jobs: int = 1,
) -> list[SweepResult]:
    """ALG-AGREE / THM1: for every (n, k, seed) with every feasible group
    count ``m <= k``, run Algorithm 1 and record root components, predicate
    status and decision-value counts."""
    grid = agreement_grid(
        ns, ks, seeds, noises=(noise,), topology=topology
    )
    results = require_ok(execute_scenarios(grid.expand(), jobs=jobs))
    return [sweep_result_from_scenario(r) for r in results]


def termination_sweep(
    ns: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    num_groups: int = 2,
    jobs: int = 1,
) -> list[SweepResult]:
    """ALG-TERM: decision latency vs Lemma 11's ``r_ST + 2n - 1`` bound
    across system sizes (``k = m = min(num_groups, n)``)."""
    specs = termination_grid(ns, seeds, noise=noise, num_groups=num_groups)
    results = require_ok(execute_scenarios(specs, jobs=jobs))
    return [sweep_result_from_scenario(r) for r in results]
