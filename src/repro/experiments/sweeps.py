"""Parameter-sweep harness.

One entry point per experiment family; each returns structured
:class:`SweepResult` rows that the benchmarks print as tables (and the
tests assert on).  Everything is seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.adversaries.base import Adversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.analysis.stats import decision_stats
from repro.core.algorithm import make_processes
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def run_algorithm1(
    adversary: Adversary,
    values: list[Any] | None = None,
    max_rounds: int | None = None,
    track_history: bool = False,
    record_messages: bool = False,
    invariant_hooks: Sequence = (),
    purge_window: int | None = None,
    prune_unreachable: bool = True,
) -> Run:
    """Simulate Algorithm 1 against ``adversary`` with distinct inputs.

    ``max_rounds`` defaults to a generous multiple of Lemma 11's bound for
    construct-by-design adversaries (stabilization happens within the noise
    quiet period, so ``6n + 20`` is ample)."""
    n = adversary.n
    processes = make_processes(
        n,
        values,
        track_history=track_history,
        purge_window=purge_window,
        prune_unreachable=prune_unreachable,
    )
    config = SimulationConfig(
        max_rounds=max_rounds or (6 * n + 20),
        record_messages=record_messages,
        record_states=False,
    )
    return RoundSimulator(
        processes, adversary, config, invariant_hooks=invariant_hooks
    ).run()


@dataclass(frozen=True)
class SweepResult:
    """One row of a sweep table."""

    n: int
    k: int
    num_groups: int
    seed: int
    noise: float
    root_components: int
    psrcs_holds: bool
    distinct_decisions: int
    all_decided: bool
    last_decision_round: int | None
    lemma11_bound: int | None

    def as_row(self) -> list:
        return [
            self.n,
            self.k,
            self.num_groups,
            self.seed,
            self.noise,
            self.root_components,
            self.psrcs_holds,
            self.distinct_decisions,
            self.all_decided,
            self.last_decision_round,
            self.lemma11_bound,
        ]

    HEADERS = [
        "n",
        "k",
        "groups",
        "seed",
        "noise",
        "roots",
        "Psrcs(k)",
        "values",
        "decided",
        "last_rnd",
        "bound",
    ]


def _one_grouped_run(
    n: int, k: int, num_groups: int, seed: int, noise: float, topology: str
) -> SweepResult:
    adversary = GroupedSourceAdversary(
        n, num_groups=num_groups, seed=seed, noise=noise, topology=topology
    )
    run = run_algorithm1(adversary)
    stable = run.stable_skeleton()
    stats = decision_stats(run)
    report = check_agreement_properties(run, k)
    return SweepResult(
        n=n,
        k=k,
        num_groups=num_groups,
        seed=seed,
        noise=noise,
        root_components=len(root_components(stable)),
        psrcs_holds=Psrcs(k).check_skeleton(stable).holds,
        distinct_decisions=report.num_decision_values,
        all_decided=report.termination.holds,
        last_decision_round=stats.last_decision_round,
        lemma11_bound=stats.lemma11_bound,
    )


def agreement_sweep(
    ns: Sequence[int],
    ks: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    topology: str = "cycle",
) -> list[SweepResult]:
    """ALG-AGREE / THM1: for every (n, k, seed) with every feasible group
    count ``m <= k``, run Algorithm 1 and record root components, predicate
    status and decision-value counts."""
    rows: list[SweepResult] = []
    for n in ns:
        for k in ks:
            if k >= n:
                continue
            for m in range(1, k + 1):
                if m > n:
                    continue
                for seed in seeds:
                    rows.append(
                        _one_grouped_run(n, k, m, seed, noise, topology)
                    )
    return rows


def termination_sweep(
    ns: Sequence[int],
    seeds: Sequence[int],
    noise: float = 0.15,
    num_groups: int = 2,
) -> list[SweepResult]:
    """ALG-TERM: decision latency vs Lemma 11's ``r_ST + 2n - 1`` bound
    across system sizes."""
    rows: list[SweepResult] = []
    for n in ns:
        m = min(num_groups, n)
        for seed in seeds:
            rows.append(_one_grouped_run(n, m, m, seed, noise, "cycle"))
    return rows
