"""The Figure 1 instance: 6 processes, ``Psrcs(3)`` holds.

The paper's figure shows (a) the round-2 skeleton ``G^∩2``, (b) the stable
skeleton ``G^∩∞`` with root components ``{p1, p2}`` and ``{p3, p4, p5}``,
and (c)–(h) process ``p6``'s approximation ``G^r_{p6}`` for rounds 1–6.

The arXiv *text* source does not carry the drawings' exact edges, so this
module instantiates a concrete run matching every property the paper's text
states (see DESIGN.md, experiment FIG1):

* ``Psrcs(3)`` holds (Figure 1 caption) — verified by the exact checker;
* the stable skeleton has exactly the two root components named in §II;
* ``G^∩2 ⊋ G^∩∞``: extra edges are timely in rounds 1–2 and die at round 3;
* self-loops everywhere (caption: ``∀pi: pi ∈ PT(pi)``), omitted in
  rendering, as in the figure.

Process ids map the paper's ``p1..p6`` to ``0..5``.  The stable skeleton
(self-loops omitted)::

    p1 <-> p2            (root component {p1, p2})
    p3 -> p4 -> p5 -> p3 (root component {p3, p4, p5})
    p2 -> p6,  p5 -> p6  (p6 downstream of both components)

Transient extra edges, timely only in rounds 1–2 (making Figure 1a a
strict supergraph of 1b): ``p6 -> p1``, ``p3 -> p2``, ``p4 -> p6``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversaries.static import ScheduleAdversary
from repro.core.algorithm import SkeletonAgreementProcess, make_processes
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import register_adversary
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import RoundLabeledDigraph
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig
from repro.viz.ascii import render_edge_list, render_labeled

#: Number of processes in the Figure 1 system.
FIGURE1_N = 6

# Paper names to 0-based ids: p1=0, p2=1, p3=2, p4=3, p5=4, p6=5.
P1, P2, P3, P4, P5, P6 = range(6)

#: Stable skeleton edges (self-loops added by the adversary).
STABLE_EDGES = [
    (P1, P2), (P2, P1),          # root component {p1, p2}
    (P3, P4), (P4, P5), (P5, P3),  # root component {p3, p4, p5}
    (P2, P6), (P5, P6),          # p6 hears both components
]

#: Extra edges timely only in rounds 1-2 (Figure 1a minus 1b).
TRANSIENT_EDGES = [(P6, P1), (P3, P2), (P4, P6)]

#: The two root components the paper names for Figure 1b.
ROOT_COMPONENTS = (frozenset({P1, P2}), frozenset({P3, P4, P5}))


def _stable_graph() -> DiGraph:
    g = DiGraph(nodes=range(FIGURE1_N), edges=STABLE_EDGES)
    return g.with_self_loops()


def _early_graph() -> DiGraph:
    g = _stable_graph()
    g.add_edges(TRANSIENT_EDGES)
    return g


def figure1_adversary() -> ScheduleAdversary:
    """Rounds 1–2 play the early graph; every later round the stable one."""
    early = _early_graph()
    return ScheduleAdversary(
        FIGURE1_N,
        schedule=[early, early],
        tail=_stable_graph(),
    )


def figure1_run(
    max_rounds: int = 20, values: list | None = None
) -> tuple[Run, list[SkeletonAgreementProcess]]:
    """Simulate Algorithm 1 on the Figure 1 system.

    Proposal values default to the paper-style ``p_i`` proposes ``i``
    (1-based), so the expected decisions are ``1`` (component ``{p1, p2}``
    and downstream ``p6``) and ``3`` (component ``{p3, p4, p5}``).
    """
    if values is None:
        values = [i + 1 for i in range(FIGURE1_N)]
    processes = make_processes(FIGURE1_N, values, track_history=True)
    sim = RoundSimulator(
        processes,
        figure1_adversary(),
        SimulationConfig(max_rounds=max_rounds, record_messages=True),
    )
    return sim.run(), processes


@dataclass(frozen=True)
class Figure1Panels:
    """The eight panels of Figure 1."""

    skeleton_round2: DiGraph                    # (a) G^∩2
    stable_skeleton: DiGraph                    # (b) G^∩∞
    approximations: dict[int, RoundLabeledDigraph]  # (c)-(h): r -> G^r_{p6}


def panels_from_run(
    run: Run, processes: list[SkeletonAgreementProcess]
) -> Figure1Panels:
    """Extract the eight panels from an already-simulated Figure 1 run."""
    p6 = processes[P6]
    approximations = {r: p6.approximation_at(r) for r in range(1, 7)}
    return Figure1Panels(
        skeleton_round2=run.skeleton(2),
        stable_skeleton=run.stable_skeleton(),
        approximations=approximations,
    )


def figure1_panels(max_rounds: int = 20) -> Figure1Panels:
    """Regenerate all Figure 1 panels from a fresh simulation."""
    run, processes = figure1_run(max_rounds=max_rounds)
    return panels_from_run(run, processes)


def render_panels(panels: Figure1Panels) -> str:
    """Render prepared panels as text (self-loops omitted)."""
    parts = [
        render_edge_list(panels.skeleton_round2, title="(a) G^∩2"),
        "",
        render_edge_list(panels.stable_skeleton, title="(b) G^∩∞"),
    ]
    for idx, r in enumerate(sorted(panels.approximations)):
        letter = chr(ord("c") + idx)
        parts.append("")
        parts.append(
            render_labeled(
                panels.approximations[r], title=f"({letter}) G^{r}_p6"
            )
        )
    return "\n".join(parts)


def render_figure1(max_rounds: int = 20) -> str:
    """The full text rendering of Figure 1 (a)–(h), self-loops omitted."""
    return render_panels(figure1_panels(max_rounds=max_rounds))


# ----------------------------------------------------------------------
# Experiment-registry spec: FIG1 as a (one-scenario) campaign family.
# ----------------------------------------------------------------------
register_adversary("figure1", lambda spec: figure1_adversary())

#: The agreement contract Figure 1's caption states (``Psrcs(3)`` holds).
FIGURE1_K = 3


def run_figure1_scenario(spec) -> "ScenarioResult":
    """Per-scenario runner: simulate the Figure 1 system once, check every
    property the paper's text states, and stash the full panel rendering
    in the result extras (the CLI's ``figure1`` output is rebuilt from the
    journal record, byte-identical to the historical in-process path)."""
    from repro.analysis.properties import check_agreement_properties
    from repro.analysis.stats import decision_stats
    from repro.engine.executor import ScenarioResult
    from repro.graphs.condensation import root_components
    from repro.predicates.psrcs import Psrcs

    run, processes = figure1_run(max_rounds=spec.resolved_max_rounds())
    panels = panels_from_run(run, processes)
    stable = run.stable_skeleton()
    stats = decision_stats(run)
    report = check_agreement_properties(run, spec.k)
    roots = root_components(stable)
    roots_match = set(roots) == set(ROOT_COMPONENTS)
    round2_edges = set(panels.skeleton_round2.edges())
    stable_edges = set(panels.stable_skeleton.edges())
    strict_supergraph = round2_edges > stable_edges
    psrcs = Psrcs(spec.k).check_skeleton(stable).holds
    confirms = (
        roots_match
        and strict_supergraph
        and psrcs
        and report.all_hold
        and run.decision_values() == {1, 3}
    )
    return ScenarioResult(
        spec=spec,
        num_rounds=run.num_rounds,
        root_components=len(roots),
        psrcs_holds=psrcs,
        distinct_decisions=report.num_decision_values,
        all_decided=report.termination.holds,
        k_agreement_holds=report.k_agreement.holds,
        validity_holds=report.validity.holds,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(run.decision_values(), key=repr)),
        extras=(
            ("confirms_figure1", confirms),
            ("rendering", render_panels(panels)),
            ("roots_match_paper", roots_match),
            ("round2_strict_supergraph", strict_supergraph),
        ),
    )


def _figure1_grid(params) -> list:
    from repro.engine.scenarios import ScenarioSpec

    return [
        ScenarioSpec(
            n=FIGURE1_N,
            k=FIGURE1_K,
            num_groups=len(ROOT_COMPONENTS),
            adversary="figure1",
            max_rounds=params["max_rounds"],
            options=(("family", "figure1"),),
        )
    ]


def _figure1_row(result) -> list:
    return [
        result.scenario_id,
        result.status,
        result.root_components,
        result.psrcs_holds,
        result.distinct_decisions,
        result.extra("round2_strict_supergraph"),
        result.extra("confirms_figure1"),
    ]


def _figure1_render(results) -> tuple[str, int]:
    result = results[0]
    text = (
        "Figure 1 — 6 processes, Psrcs(3) holds (self-loops omitted)\n\n"
        + (result.extra("rendering") or "<no rendering stored>")
    )
    return text, 0 if result.extra("confirms_figure1") else 1


register(
    ExperimentSpec(
        name="figure1",
        title="FIG1: the paper's running example, panels (a)-(h)",
        build_grid=_figure1_grid,
        render=_figure1_render,
        headers=(
            "id",
            "status",
            "roots",
            "Psrcs(3)",
            "values",
            "G^∩2 ⊋ G^∩∞",
            "confirms",
        ),
        row=_figure1_row,
        runner=run_figure1_scenario,
        defaults=(("max_rounds", 20),),
    )
)
