"""The Figure 1 instance: 6 processes, ``Psrcs(3)`` holds.

The paper's figure shows (a) the round-2 skeleton ``G^∩2``, (b) the stable
skeleton ``G^∩∞`` with root components ``{p1, p2}`` and ``{p3, p4, p5}``,
and (c)–(h) process ``p6``'s approximation ``G^r_{p6}`` for rounds 1–6.

The arXiv *text* source does not carry the drawings' exact edges, so this
module instantiates a concrete run matching every property the paper's text
states (see DESIGN.md, experiment FIG1):

* ``Psrcs(3)`` holds (Figure 1 caption) — verified by the exact checker;
* the stable skeleton has exactly the two root components named in §II;
* ``G^∩2 ⊋ G^∩∞``: extra edges are timely in rounds 1–2 and die at round 3;
* self-loops everywhere (caption: ``∀pi: pi ∈ PT(pi)``), omitted in
  rendering, as in the figure.

Process ids map the paper's ``p1..p6`` to ``0..5``.  The stable skeleton
(self-loops omitted)::

    p1 <-> p2            (root component {p1, p2})
    p3 -> p4 -> p5 -> p3 (root component {p3, p4, p5})
    p2 -> p6,  p5 -> p6  (p6 downstream of both components)

Transient extra edges, timely only in rounds 1–2 (making Figure 1a a
strict supergraph of 1b): ``p6 -> p1``, ``p3 -> p2``, ``p4 -> p6``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversaries.static import ScheduleAdversary
from repro.core.algorithm import SkeletonAgreementProcess, make_processes
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import RoundLabeledDigraph
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig
from repro.viz.ascii import render_edge_list, render_labeled

#: Number of processes in the Figure 1 system.
FIGURE1_N = 6

# Paper names to 0-based ids: p1=0, p2=1, p3=2, p4=3, p5=4, p6=5.
P1, P2, P3, P4, P5, P6 = range(6)

#: Stable skeleton edges (self-loops added by the adversary).
STABLE_EDGES = [
    (P1, P2), (P2, P1),          # root component {p1, p2}
    (P3, P4), (P4, P5), (P5, P3),  # root component {p3, p4, p5}
    (P2, P6), (P5, P6),          # p6 hears both components
]

#: Extra edges timely only in rounds 1-2 (Figure 1a minus 1b).
TRANSIENT_EDGES = [(P6, P1), (P3, P2), (P4, P6)]

#: The two root components the paper names for Figure 1b.
ROOT_COMPONENTS = (frozenset({P1, P2}), frozenset({P3, P4, P5}))


def _stable_graph() -> DiGraph:
    g = DiGraph(nodes=range(FIGURE1_N), edges=STABLE_EDGES)
    return g.with_self_loops()


def _early_graph() -> DiGraph:
    g = _stable_graph()
    g.add_edges(TRANSIENT_EDGES)
    return g


def figure1_adversary() -> ScheduleAdversary:
    """Rounds 1–2 play the early graph; every later round the stable one."""
    early = _early_graph()
    return ScheduleAdversary(
        FIGURE1_N,
        schedule=[early, early],
        tail=_stable_graph(),
    )


def figure1_run(
    max_rounds: int = 20, values: list | None = None
) -> tuple[Run, list[SkeletonAgreementProcess]]:
    """Simulate Algorithm 1 on the Figure 1 system.

    Proposal values default to the paper-style ``p_i`` proposes ``i``
    (1-based), so the expected decisions are ``1`` (component ``{p1, p2}``
    and downstream ``p6``) and ``3`` (component ``{p3, p4, p5}``).
    """
    if values is None:
        values = [i + 1 for i in range(FIGURE1_N)]
    processes = make_processes(FIGURE1_N, values, track_history=True)
    sim = RoundSimulator(
        processes,
        figure1_adversary(),
        SimulationConfig(max_rounds=max_rounds, record_messages=True),
    )
    return sim.run(), processes


@dataclass(frozen=True)
class Figure1Panels:
    """The eight panels of Figure 1."""

    skeleton_round2: DiGraph                    # (a) G^∩2
    stable_skeleton: DiGraph                    # (b) G^∩∞
    approximations: dict[int, RoundLabeledDigraph]  # (c)-(h): r -> G^r_{p6}


def figure1_panels(max_rounds: int = 20) -> Figure1Panels:
    """Regenerate all Figure 1 panels from a fresh simulation."""
    run, processes = figure1_run(max_rounds=max_rounds)
    p6 = processes[P6]
    approximations = {r: p6.approximation_at(r) for r in range(1, 7)}
    return Figure1Panels(
        skeleton_round2=run.skeleton(2),
        stable_skeleton=run.stable_skeleton(),
        approximations=approximations,
    )


def render_figure1(max_rounds: int = 20) -> str:
    """The full text rendering of Figure 1 (a)–(h), self-loops omitted."""
    panels = figure1_panels(max_rounds=max_rounds)
    parts = [
        render_edge_list(panels.skeleton_round2, title="(a) G^∩2"),
        "",
        render_edge_list(panels.stable_skeleton, title="(b) G^∩∞"),
    ]
    for idx, r in enumerate(sorted(panels.approximations)):
        letter = chr(ord("c") + idx)
        parts.append("")
        parts.append(
            render_labeled(
                panels.approximations[r], title=f"({letter}) G^{r}_p6"
            )
        )
    return "\n".join(parts)
