"""The ``♦Psrcs(k)`` lower-bound experiment (§III discussion).

The paper argues perpetual synchrony is necessary: under the *eventual*
predicate, a long enough all-isolated prefix is indistinguishable from the
forever-isolated run, so every process must decide its own value — ``n``
distinct decisions even though ``♦Psrcs(k)`` holds.

:func:`eventual_lower_bound` makes the argument quantitative for
Algorithm 1 — and the result is *sharper* than the generic
indistinguishability bound: because ``PT(p)`` is a prefix intersection
(equation (7)), it never recovers from a bad round.  With the all-isolated
bad graph,

* ``B = 0``: the single-group tail forces consensus (1 value);
* ``B >= 1``: already one isolated round pins ``PT(p) = {p}`` forever, so
  every approximation is the strongly connected singleton ``{p}`` at round
  ``n + 1`` and **all n processes decide their own value** — the paper's
  worst case, reached immediately.

The EVENTUAL-LB benchmark tabulates this step function; it is the
quantitative face of the paper's claim that *perpetual* synchrony is
necessary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversaries.eventual import EventuallyGoodAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.core.algorithm import make_processes
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


@dataclass(frozen=True)
class EventualReport:
    n: int
    bad_rounds: int
    run: Run
    distinct_decisions: int
    all_decided_own: bool


def eventual_lower_bound(
    n: int, bad_rounds: int, seed: int = 0, max_rounds: int | None = None
) -> EventualReport:
    """Algorithm 1 under ``♦Psrcs``: isolated prefix, then one group.

    The good phase is a single-group clique adversary — the most benign
    possible tail, to isolate the effect of the prefix.
    """
    good = GroupedSourceAdversary(
        n, num_groups=1, seed=seed, topology="clique"
    )
    adversary = EventuallyGoodAdversary(good, bad_rounds=bad_rounds)
    processes = make_processes(n)
    config = SimulationConfig(max_rounds=max_rounds or (bad_rounds + 4 * n + 4))
    run = RoundSimulator(processes, adversary, config).run()
    decided_own = run.all_decided() and all(
        run.decisions[p].value == run.initial_values[p] for p in range(n)
    )
    return EventualReport(
        n=n,
        bad_rounds=bad_rounds,
        run=run,
        distinct_decisions=len(run.decision_values()),
        all_decided_own=decided_own,
    )
