"""The ``♦Psrcs(k)`` lower-bound experiment (§III discussion).

The paper argues perpetual synchrony is necessary: under the *eventual*
predicate, a long enough all-isolated prefix is indistinguishable from the
forever-isolated run, so every process must decide its own value — ``n``
distinct decisions even though ``♦Psrcs(k)`` holds.

:func:`eventual_lower_bound` makes the argument quantitative for
Algorithm 1 — and the result is *sharper* than the generic
indistinguishability bound: because ``PT(p)`` is a prefix intersection
(equation (7)), it never recovers from a bad round.  With the all-isolated
bad graph,

* ``B = 0``: the single-group tail forces consensus (1 value);
* ``B >= 1``: already one isolated round pins ``PT(p) = {p}`` forever, so
  every approximation is the strongly connected singleton ``{p}`` at round
  ``n + 1`` and **all n processes decide their own value** — the paper's
  worst case, reached immediately.

The EVENTUAL-LB benchmark tabulates this step function; it is the
quantitative face of the paper's claim that *perpetual* synchrony is
necessary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adversaries.eventual import EventuallyGoodAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.core.algorithm import make_processes
from repro.engine.registry import ExperimentSpec, register
from repro.engine.scenarios import ScenarioSpec, register_adversary
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


@dataclass(frozen=True)
class EventualReport:
    n: int
    bad_rounds: int
    run: Run
    distinct_decisions: int
    all_decided_own: bool


def eventual_lower_bound(
    n: int, bad_rounds: int, seed: int = 0, max_rounds: int | None = None
) -> EventualReport:
    """Algorithm 1 under ``♦Psrcs``: isolated prefix, then one group.

    The good phase is a single-group clique adversary — the most benign
    possible tail, to isolate the effect of the prefix.
    """
    good = GroupedSourceAdversary(
        n, num_groups=1, seed=seed, topology="clique"
    )
    adversary = EventuallyGoodAdversary(good, bad_rounds=bad_rounds)
    processes = make_processes(n)
    config = SimulationConfig(max_rounds=max_rounds or (bad_rounds + 4 * n + 4))
    run = RoundSimulator(processes, adversary, config).run()
    decided_own = run.all_decided() and all(
        run.decisions[p].value == run.initial_values[p] for p in range(n)
    )
    return EventualReport(
        n=n,
        bad_rounds=bad_rounds,
        run=run,
        distinct_decisions=len(run.decision_values()),
        all_decided_own=decided_own,
    )


# ----------------------------------------------------------------------
# Experiment-registry spec: EVENTUAL-LB as a campaign family (one
# scenario per (n, bad_rounds, seed) point of the step function).
# ----------------------------------------------------------------------
def _build_eventual_adversary(spec: ScenarioSpec) -> EventuallyGoodAdversary:
    good = GroupedSourceAdversary(
        spec.n,
        num_groups=1,
        seed=spec.seed,
        noise=spec.noise,
        topology="clique",
    )
    return EventuallyGoodAdversary(good, bad_rounds=spec.opt("bad_rounds", 0))


register_adversary("eventual", _build_eventual_adversary)


def run_eventual_scenario(spec: ScenarioSpec) -> "ScenarioResult":
    """Per-scenario runner: one ♦Psrcs run; the step-function verdict
    (own-value decisions, lower-bound confirmation) rides in the extras."""
    from repro.analysis.stats import decision_stats
    from repro.engine.executor import ScenarioResult

    bad_rounds = spec.opt("bad_rounds", 0)
    report = eventual_lower_bound(
        spec.n, bad_rounds, seed=spec.seed, max_rounds=spec.max_rounds
    )
    run = report.run
    stats = decision_stats(run)
    # The sharp form of §III's argument: no isolated prefix keeps the
    # single-group tail's consensus; any isolated prefix pins PT(p)={p}
    # and forces all n own-value decisions.
    confirms = (
        report.distinct_decisions == 1
        if bad_rounds == 0
        else (report.distinct_decisions == spec.n and report.all_decided_own)
    )
    return ScenarioResult(
        spec=spec,
        num_rounds=run.num_rounds,
        distinct_decisions=report.distinct_decisions,
        all_decided=run.all_decided(),
        validity_holds=None,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(run.decision_values(), key=repr)),
        extras=(
            ("all_decided_own", report.all_decided_own),
            ("bad_rounds", bad_rounds),
            ("confirms_lower_bound", confirms),
        ),
    )


def fastpath_eventual_result(spec, fast, adversary) -> "ScenarioResult":
    """The fast-path twin of :func:`run_eventual_scenario`.

    Builds the exact same result record — metrics *and* extras — from a
    finished :class:`~repro.rounds.fastpath.FastPathRun`, so the eventual
    family executes on the vectorized/batched backends with byte-identical
    canonical summaries (the differential suite pins this)."""
    from repro.engine.backends import fastpath_decision_stats
    from repro.engine.executor import ScenarioResult

    bad_rounds = spec.opt("bad_rounds", 0)
    stats, _ = fastpath_decision_stats(fast, adversary)
    values = fast.decision_values()
    all_decided = fast.all_decided()
    # Own-value decisions: proposals are the process ids (range(n)), so
    # "everyone decided its own value" is one vector comparison.
    decided_own = all_decided and bool(
        (fast.decision_value == np.arange(fast.n)).all()
    )
    confirms = (
        len(values) == 1
        if bad_rounds == 0
        else (len(values) == spec.n and decided_own)
    )
    return ScenarioResult(
        spec=spec,
        num_rounds=fast.num_rounds,
        distinct_decisions=len(values),
        all_decided=all_decided,
        validity_holds=None,
        first_decision_round=stats.first_decision_round,
        last_decision_round=stats.last_decision_round,
        stabilization=stats.stabilization,
        lemma11_bound=stats.lemma11_bound,
        within_bound=stats.within_bound,
        decision_values=tuple(sorted(values, key=repr)),
        extras=(
            ("all_decided_own", decided_own),
            ("bad_rounds", bad_rounds),
            ("confirms_lower_bound", confirms),
        ),
    )


DEFAULT_BAD_ROUNDS = (0, 1, 2, 4, 8, 12, 20)


def eventual_grid(
    ns=(8,), bad_rounds=DEFAULT_BAD_ROUNDS, seeds=range(1)
) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            n=n,
            k=1,
            num_groups=1,
            seed=seed,
            adversary="eventual",
            max_rounds=bad + 4 * n + 4,
            options=tuple(
                sorted({"family": "eventual", "bad_rounds": bad}.items())
            ),
        )
        for n in ns
        for bad in bad_rounds
        for seed in seeds
    ]


def _eventual_grid(params) -> list[ScenarioSpec]:
    ns = params["n"] if isinstance(params["n"], (list, tuple)) else [params["n"]]
    return eventual_grid(
        ns=ns,
        bad_rounds=tuple(params["bad_rounds"]),
        seeds=range(params["seeds"]),
    )


def _eventual_row(result) -> list:
    return [
        result.spec.n,
        result.extra("bad_rounds"),
        result.distinct_decisions,
        result.extra("all_decided_own"),
    ]


def _eventual_render(results) -> tuple[str, int]:
    from repro.analysis.reporting import format_table

    text = format_table(
        ["n", "bad_prefix_rounds", "distinct_decisions", "all_decided_own"],
        [_eventual_row(r) for r in results],
        title="♦Psrcs lower bound (§III): any isolated prefix collapses "
        "to n own-value decisions",
    )
    ok = all(r.extra("confirms_lower_bound") for r in results)
    return text, 0 if ok else 1


register(
    ExperimentSpec(
        name="eventual",
        title="EVENTUAL-LB: the ♦Psrcs bad-prefix step function (§III)",
        build_grid=_eventual_grid,
        render=_eventual_render,
        headers=("n", "bad_prefix_rounds", "distinct_decisions",
                 "all_decided_own"),
        row=_eventual_row,
        runner=run_eventual_scenario,
        fast_result=fastpath_eventual_result,
        aggregate=None,
        defaults=(
            ("bad_rounds", DEFAULT_BAD_ROUNDS),
            ("n", (8,)),
            ("seeds", 1),
        ),
        vectorizable=True,
    )
)
