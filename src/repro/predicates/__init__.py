"""Communication predicates.

A *system* in the paper is named by a predicate over the collection of
communication graphs of a run (§II).  This package provides:

* a small combinator algebra over predicates
  (:mod:`repro.predicates.base`),
* the paper's ``Psrc`` / ``Psrcs(k)`` with an exact checker based on the
  conflict-graph independence-number reformulation and witness extraction
  (:mod:`repro.predicates.psrcs`),
* classic reference predicates (:mod:`repro.predicates.classic`).

Predicates are evaluated against a *stable skeleton* (exact, when the
adversary declares one) or against the final skeleton of a finite prefix
(an over-approximation: if the predicate fails on the prefix skeleton it
fails on the run; if it holds, it holds provided the prefix has stabilized).
"""

from repro.predicates.base import (
    Predicate,
    PredicateResult,
    And,
    Or,
    Not,
)
from repro.predicates.psrcs import Psrc, Psrcs, conflict_graph, two_sources_of
from repro.predicates.classic import (
    PTrue,
    SingleRootComponent,
    NoSplit,
    KernelNonEmpty,
    BoundedRootComponents,
)

__all__ = [
    "Predicate",
    "PredicateResult",
    "And",
    "Or",
    "Not",
    "Psrc",
    "Psrcs",
    "conflict_graph",
    "two_sources_of",
    "PTrue",
    "SingleRootComponent",
    "NoSplit",
    "KernelNonEmpty",
    "BoundedRootComponents",
]
