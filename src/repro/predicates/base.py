"""Predicate interface and boolean combinators.

A communication predicate constrains the collection of communication graphs
of a run.  All predicates in this reproduction are *stable-skeleton
predicates*: they are functions of ``G^∩∞`` alone (this covers everything
the paper uses — ``Psrcs(k)`` is defined through the perpetual ``PT(p)``
sets, i.e. through the stable skeleton).

Evaluation returns a :class:`PredicateResult` carrying a boolean plus an
explanatory *witness*: for a violated ``Psrcs(k)``, the concrete ``k+1``-set
with no common 2-source; for a satisfied one, a 2-source certificate per
queried set.  Witnesses make test failures and experiment reports readable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.graphs.digraph import DiGraph
from repro.rounds.run import Run


@dataclass(frozen=True)
class PredicateResult:
    """Outcome of a predicate evaluation."""

    holds: bool
    predicate: str
    witness: Any = field(default=None)

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        status = "HOLDS" if self.holds else "VIOLATED"
        detail = f" — witness: {self.witness!r}" if self.witness is not None else ""
        return f"{self.predicate}: {status}{detail}"


class Predicate(abc.ABC):
    """A stable-skeleton communication predicate."""

    @abc.abstractmethod
    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        """Evaluate against a stable skeleton ``G^∩∞``."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Display name, e.g. ``"Psrcs(3)"``."""

    # ------------------------------------------------------------------
    def check_run(self, run: Run) -> PredicateResult:
        """Evaluate against a run's stable skeleton (declared if available,
        else the final-prefix over-approximation)."""
        return self.check_skeleton(run.stable_skeleton())

    def check_adversary(self, adversary: Any) -> PredicateResult:
        """Evaluate against an adversary's declared stable graph."""
        stable = adversary.declared_stable_graph()
        if stable is None:
            raise ValueError(
                f"adversary {adversary!r} declares no stable graph; "
                "simulate a run and use check_run instead"
            )
        return self.check_skeleton(stable)

    def check_heard_of(self, ho: Any) -> PredicateResult:
        """Evaluate against a Heard-Of collection via equation (7):
        the finite-prefix skeleton is the graph whose in-neighborhoods are
        ``PT(p, R) = ∩_{r <= R} HO(p, r)``.

        Like :meth:`check_run` on undeclared runs this is a finite-prefix
        over-approximation: a violated result is definitive; a holding
        result assumes the collection covers stabilization.
        """
        from repro.graphs.digraph import DiGraph

        skeleton = DiGraph(nodes=range(ho.n))
        last = ho.num_rounds
        for p in range(ho.n):
            for q in ho.timely_neighborhood(p, last):
                skeleton.add_edge(q, p)
        return self.check_skeleton(skeleton)

    # ------------------------------------------------------------------
    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class And(Predicate):
    """Conjunction; witness is the first failing conjunct's witness."""

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise ValueError("And needs at least one predicate")
        self.parts = parts

    @property
    def name(self) -> str:
        return "(" + " ∧ ".join(p.name for p in self.parts) + ")"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        for part in self.parts:
            result = part.check_skeleton(stable_skeleton)
            if not result.holds:
                return PredicateResult(False, self.name, witness=result)
        return PredicateResult(True, self.name)


class Or(Predicate):
    """Disjunction; witness collects all failing disjuncts on violation."""

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise ValueError("Or needs at least one predicate")
        self.parts = parts

    @property
    def name(self) -> str:
        return "(" + " ∨ ".join(p.name for p in self.parts) + ")"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        failures = []
        for part in self.parts:
            result = part.check_skeleton(stable_skeleton)
            if result.holds:
                return PredicateResult(True, self.name, witness=result.witness)
            failures.append(result)
        return PredicateResult(False, self.name, witness=failures)


class Not(Predicate):
    """Negation; inherits the inner witness."""

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    @property
    def name(self) -> str:
        return f"¬{self.inner.name}"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        result = self.inner.check_skeleton(stable_skeleton)
        return PredicateResult(not result.holds, self.name, witness=result.witness)
