"""Reference predicates beyond ``Psrcs``.

These situate ``Psrcs(k)`` in the predicate landscape of the related work
(§I–II): the trivial ``Ptrue`` (all runs admissible — k-set agreement
impossible for ``k < n``), single-root-component / no-split conditions from
the consensus literature, and the Theorem-1-shaped structural predicate
``BoundedRootComponents(k)`` that ``Psrcs(k)`` implies but is not implied by.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.condensation import root_components
from repro.graphs.digraph import DiGraph
from repro.predicates.base import Predicate, PredicateResult


class PTrue(Predicate):
    """``Ptrue :: TRUE`` — every run admissible (§II.A).

    Under this system even ``(n-1)``-set agreement is impossible (all
    processes may be isolated forever); included as the degenerate baseline.
    """

    @property
    def name(self) -> str:
        return "Ptrue"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        return PredicateResult(True, self.name)


class BoundedRootComponents(Predicate):
    """At most ``k`` root components in the stable skeleton.

    Theorem 1 states ``Psrcs(k) ⇒ BoundedRootComponents(k)``.  The converse
    fails (a long directed chain has one root component but its conflict
    graph can have large independent sets) — the tests exhibit such
    separations explicitly.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    @property
    def name(self) -> str:
        return f"RootComponents<={self.k}"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        roots = root_components(stable_skeleton)
        if len(roots) <= self.k:
            return PredicateResult(True, self.name, witness=roots)
        return PredicateResult(False, self.name, witness=roots)


class SingleRootComponent(BoundedRootComponents):
    """Exactly the ``k = 1`` case — the structural condition under which
    Algorithm 1 reaches *consensus* (§V's closing remark)."""

    def __init__(self) -> None:
        super().__init__(1)

    @property
    def name(self) -> str:
        return "SingleRootComponent"


class KernelNonEmpty(Predicate):
    """A nonempty *kernel*: some process is a perpetual source for everyone
    (``∃p ∀q: p ∈ PT(q)``).

    This is the skeleton-graph rendering of the classic "some process is
    heard by all" condition; it implies ``Psrcs(k)`` for every ``k >= 1``
    (that ``p`` is a 2-source for every pair), hence also consensus-enabling
    in combination with strong connectivity.
    """

    @property
    def name(self) -> str:
        return "KernelNonEmpty"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        nodes = stable_skeleton.nodes()
        for p in sorted(nodes):
            if all(
                p in stable_skeleton.predecessors(q) for q in nodes
            ):
                return PredicateResult(True, self.name, witness=p)
        return PredicateResult(False, self.name)


class NoSplit(Predicate):
    """No-split (Charron-Bost & Schiper): every pair of processes has a
    common timely source — i.e. ``Psrcs(1)`` stated pairwise.

    Included to witness the identity ``NoSplit ⇔ Psrcs(1)`` in tests.
    """

    @property
    def name(self) -> str:
        return "NoSplit"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        pt = {q: stable_skeleton.predecessors(q) for q in stable_skeleton.nodes()}
        for q, q2 in combinations(sorted(pt), 2):
            if not (pt[q] & pt[q2]):
                return PredicateResult(
                    False, self.name, witness=frozenset({q, q2})
                )
        return PredicateResult(True, self.name)
