"""The paper's predicate: ``Psrc`` and ``Psrcs(k)`` (definition (8)).

Definitions
-----------
For a run with perpetual timely neighborhoods ``PT(·)``::

    Psrc(p, S)  ::  ∃ q, q' ∈ S, q ≠ q' :  p ∈ PT(q) ∩ PT(q')
    Psrcs(k)    ::  ∀ S, |S| = k+1  ∃ p ∈ Π :  Psrc(p, S)

``p`` is a *2-source* with *timely receivers* ``q, q'`` (possibly ``p = q``).

Checking
--------
Naive checking enumerates ``C(n, k+1)`` subsets.  The exact reformulation
used here (proved in ``tests/test_predicates_psrcs.py`` by cross-validation
against the naive checker):

    Build the *conflict graph* ``H`` on ``Π`` with an undirected edge
    ``{q, q'}`` iff ``PT(q) ∩ PT(q') ≠ ∅``.  A set ``S`` admits **no**
    2-source iff ``S`` is an independent set of ``H``.  Hence

        ``Psrcs(k)  ⇔  α(H) ≤ k``  (independence number).

The checker therefore asks the exact branch-and-bound solver in
:mod:`repro.graphs.independent_set` whether ``H`` has an independent set of
size ``k + 1``; if yes, that set is the returned violation witness.

Monotonicity (used by the adversaries and tests): ``Psrcs(k) ⇒ Psrcs(k')``
for all ``k' ≥ k`` — any ``(k'+1)``-set contains a ``(k+1)``-subset whose
2-source pair also lies in the bigger set.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.graphs.independent_set import (
    find_independent_set_of_size,
    independence_number,
)
from repro.predicates.base import Predicate, PredicateResult


def timely_neighborhoods(stable_skeleton: DiGraph) -> dict[int, frozenset[int]]:
    """``PT(q)`` per process: in-neighbors in the stable skeleton."""
    return {q: stable_skeleton.predecessors(q) for q in stable_skeleton.nodes()}


def conflict_graph(stable_skeleton: DiGraph) -> dict[int, set[int]]:
    """The undirected conflict graph ``H`` (adjacency mapping).

    ``{q, q'} ∈ H  ⇔  q ≠ q'  and  PT(q) ∩ PT(q') ≠ ∅``.
    """
    pt = timely_neighborhoods(stable_skeleton)
    nodes = sorted(pt)
    adj: dict[int, set[int]] = {q: set() for q in nodes}
    # Index: source p -> set of its timely receivers {q : p ∈ PT(q)}.
    receivers: dict[int, set[int]] = {}
    for q, sources in pt.items():
        for p in sources:
            receivers.setdefault(p, set()).add(q)
    for q_set in receivers.values():
        for q, q2 in combinations(sorted(q_set), 2):
            adj[q].add(q2)
            adj[q2].add(q)
    return adj


def two_sources_of(
    stable_skeleton: DiGraph, subset: frozenset[int] | set[int]
) -> list[tuple[int, int, int]]:
    """All 2-source certificates ``(p, q, q')`` for ``subset``:
    every ``p`` with two distinct timely receivers ``q, q' ∈ subset``."""
    pt = timely_neighborhoods(stable_skeleton)
    out: list[tuple[int, int, int]] = []
    members = sorted(subset)
    for q, q2 in combinations(members, 2):
        for p in sorted(pt[q] & pt[q2]):
            out.append((p, q, q2))
    return out


class Psrc(Predicate):
    """``Psrc(p, S)`` for a fixed source ``p`` and set ``S``."""

    def __init__(self, source: int, subset: frozenset[int] | set[int]) -> None:
        self.source = source
        self.subset = frozenset(subset)
        if len(self.subset) < 2:
            raise ValueError("Psrc needs |S| >= 2")

    @property
    def name(self) -> str:
        return f"Psrc({self.source}, {sorted(self.subset)})"

    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        pt = timely_neighborhoods(stable_skeleton)
        receivers = sorted(
            q for q in self.subset if self.source in pt.get(q, frozenset())
        )
        if len(receivers) >= 2:
            return PredicateResult(
                True, self.name, witness=(self.source, receivers[0], receivers[1])
            )
        return PredicateResult(False, self.name, witness=receivers)


class Psrcs(Predicate):
    """``Psrcs(k)`` — definition (8) — with an exact conflict-graph checker.

    Parameters
    ----------
    k:
        The agreement parameter (``k >= 1``).
    method:
        ``"conflict"`` (default; α(H) ≤ k via branch and bound) or
        ``"naive"`` (enumerate all ``(k+1)``-subsets; exponential, used as
        the cross-validation oracle in tests).
    """

    def __init__(self, k: int, method: str = "conflict") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if method not in ("conflict", "naive"):
            raise ValueError(f"unknown method {method!r}")
        self.k = k
        self.method = method

    @property
    def name(self) -> str:
        return f"Psrcs({self.k})"

    # ------------------------------------------------------------------
    def check_skeleton(self, stable_skeleton: DiGraph) -> PredicateResult:
        n = stable_skeleton.number_of_nodes()
        if n <= self.k:
            # No subset of size k+1 exists; the predicate holds vacuously.
            return PredicateResult(True, self.name, witness="vacuous")
        if self.method == "naive":
            return self._check_naive(stable_skeleton)
        return self._check_conflict(stable_skeleton)

    def _check_conflict(self, stable_skeleton: DiGraph) -> PredicateResult:
        adj = conflict_graph(stable_skeleton)
        violating = find_independent_set_of_size(adj, self.k + 1)
        if violating is None:
            return PredicateResult(True, self.name)
        return PredicateResult(
            False, self.name, witness=frozenset(violating)
        )

    def check_skeleton_matrix(self, stable_matrix: np.ndarray) -> PredicateResult:
        """Matrix twin of :meth:`check_skeleton` for skeletons on nodes
        ``0..n-1`` given as a boolean adjacency matrix.

        The conflict graph comes from one boolean matrix product
        (:func:`repro.graphs.matrices.conflict_matrix`, cross-validated
        against :func:`conflict_graph`); the independence test is the same
        exact branch-and-bound solver, so the verdict is identical to the
        set-based checker on the same skeleton.  Used by the vectorized
        execution backend, which never materializes a :class:`DiGraph`.
        """
        from repro.graphs.matrices import conflict_matrix

        arr = np.asarray(stable_matrix, dtype=bool)
        n = arr.shape[0]
        if n <= self.k:
            return PredicateResult(True, self.name, witness="vacuous")
        mat = conflict_matrix(arr)
        adj = {
            q: set(np.nonzero(mat[q])[0].tolist()) for q in range(n)
        }
        violating = find_independent_set_of_size(adj, self.k + 1)
        if violating is None:
            return PredicateResult(True, self.name)
        return PredicateResult(
            False, self.name, witness=frozenset(violating)
        )

    def _check_naive(self, stable_skeleton: DiGraph) -> PredicateResult:
        pt = timely_neighborhoods(stable_skeleton)
        nodes = sorted(stable_skeleton.nodes())
        for subset in combinations(nodes, self.k + 1):
            if not _has_two_source(pt, subset):
                return PredicateResult(
                    False, self.name, witness=frozenset(subset)
                )
        return PredicateResult(True, self.name)

    # ------------------------------------------------------------------
    def independence_number(self, stable_skeleton: DiGraph) -> int:
        """``α(H)`` — the *largest* ``m`` such that ``Psrcs(m-1)`` fails,
        i.e. the predicate holds exactly for ``k >= α(H)``."""
        return independence_number(conflict_graph(stable_skeleton))

    def tightest_k(self, stable_skeleton: DiGraph) -> int:
        """The smallest ``k`` for which ``Psrcs(k)`` holds on this skeleton
        (equals ``α(H)``, clipped to at least 1)."""
        return max(1, self.independence_number(stable_skeleton))


def _has_two_source(
    pt: dict[int, frozenset[int]], subset: tuple[int, ...]
) -> bool:
    for q, q2 in combinations(subset, 2):
        if pt[q] & pt[q2]:
            return True
    return False
