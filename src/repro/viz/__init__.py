"""Rendering: ASCII (Figure-1 style edge lists, adjacency matrices) and
Graphviz DOT export."""

from repro.viz.ascii import render_edge_list, render_adjacency, render_labeled
from repro.viz.dot import to_dot, labeled_to_dot

__all__ = [
    "render_edge_list",
    "render_adjacency",
    "render_labeled",
    "to_dot",
    "labeled_to_dot",
]
