"""Graphviz DOT export (for readers who want to regenerate the actual
Figure 1 drawings with ``dot -Tpdf``)."""

from __future__ import annotations

from collections.abc import Callable

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import RoundLabeledDigraph
from repro.viz.ascii import default_name

NameFn = Callable[[object], str]


def to_dot(
    graph: DiGraph,
    name: NameFn = default_name,
    graph_name: str = "G",
    omit_self_loops: bool = True,
) -> str:
    """DOT source for an unweighted digraph."""
    lines = [f"digraph {graph_name} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes(), key=repr):
        lines.append(f'  "{name(node)}";')
    for u, v in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        if omit_self_loops and u == v:
            continue
        lines.append(f'  "{name(u)}" -> "{name(v)}";')
    lines.append("}")
    return "\n".join(lines)


def labeled_to_dot(
    graph: RoundLabeledDigraph,
    name: NameFn = default_name,
    graph_name: str = "G",
    omit_self_loops: bool = True,
) -> str:
    """DOT source with round labels on the edges (Figure 1c–1h style)."""
    lines = [f"digraph {graph_name} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes(), key=repr):
        lines.append(f'  "{name(node)}";')
    for u, v, lbl in sorted(
        graph.iter_labeled_edges(), key=lambda e: (repr(e[0]), repr(e[1]))
    ):
        if omit_self_loops and u == v:
            continue
        lines.append(f'  "{name(u)}" -> "{name(v)}" [label="{lbl}"];')
    lines.append("}")
    return "\n".join(lines)
