"""ASCII graph rendering in the style of the paper's Figure 1.

Figure 1 draws graphs as nodes with directed edges, round labels on the
approximation edges, and self-loops omitted "for simplicity".  The closest
faithful text rendering is a sorted edge list with optional labels plus an
adjacency matrix; both are deterministic so experiment outputs diff cleanly.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import RoundLabeledDigraph

NameFn = Callable[[object], str]


def default_name(node: object) -> str:
    """Paper-style names: integer ``i`` becomes ``p{i+1}`` (ids are
    0-based, the paper's processes are ``p1..pn``)."""
    if isinstance(node, int):
        return f"p{node + 1}"
    return str(node)


def render_edge_list(
    graph: DiGraph,
    title: str = "",
    name: NameFn = default_name,
    omit_self_loops: bool = True,
) -> str:
    """Sorted ``u -> v`` edge list (Figure 1 omits self-loops)."""
    lines = [title] if title else []
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    shown = 0
    for u, v in edges:
        if omit_self_loops and u == v:
            continue
        lines.append(f"  {name(u)} -> {name(v)}")
        shown += 1
    if shown == 0:
        lines.append("  (no edges)")
    isolated = sorted(
        (node for node in graph.nodes() if graph.in_degree(node) == 0
         and graph.out_degree(node) == 0),
        key=repr,
    )
    if isolated:
        lines.append(
            "  isolated: " + ", ".join(name(v) for v in isolated)
        )
    return "\n".join(lines)


def render_labeled(
    graph: RoundLabeledDigraph,
    title: str = "",
    name: NameFn = default_name,
    omit_self_loops: bool = True,
) -> str:
    """Sorted ``u --r--> v`` labeled edge list (Figure 1c–1h style)."""
    lines = [title] if title else []
    edges = sorted(
        graph.iter_labeled_edges(), key=lambda e: (repr(e[0]), repr(e[1]))
    )
    shown = 0
    for u, v, lbl in edges:
        if omit_self_loops and u == v:
            continue
        lines.append(f"  {name(u)} --{lbl}--> {name(v)}")
        shown += 1
    if shown == 0:
        lines.append("  (no edges)")
    return "\n".join(lines)


def render_adjacency(
    graph: DiGraph, name: NameFn = default_name, title: str = ""
) -> str:
    """A compact adjacency matrix (rows = senders, columns = receivers)."""
    nodes = sorted(graph.nodes(), key=repr)
    labels = [name(v) for v in nodes]
    width = max((len(s) for s in labels), default=1)
    lines = [title] if title else []
    header = " " * (width + 1) + " ".join(s.rjust(width) for s in labels)
    lines.append(header)
    for u, lu in zip(nodes, labels):
        row = [
            ("1" if graph.has_edge(u, v) else ".").rjust(width) for v in nodes
        ]
        lines.append(lu.rjust(width) + " " + " ".join(row))
    return "\n".join(lines)
