"""The consensus specialization (§V closing remark).

"Note that the algorithm actually solves consensus in sufficiently
well-behaved runs."  Concretely: whenever the stable skeleton has a *single*
root component (the :class:`~repro.predicates.classic.SingleRootComponent`
predicate), Lemma 15's one-to-one correspondence between root components and
decision values forces exactly one decision value — consensus.

This module packages that usage: the processes are plain
:class:`~repro.core.algorithm.SkeletonAgreementProcess` instances; the only
difference is intent, captured by the helper and verified by the consensus
integration tests (crash adversaries and single-group grouped adversaries
both produce single-root skeletons).
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import SkeletonAgreementProcess, make_processes
from repro.graphs.condensation import root_components
from repro.rounds.run import Run


def make_consensus_processes(
    n: int, values: list[Any] | None = None, track_history: bool = False
) -> list[SkeletonAgreementProcess]:
    """Processes for a consensus (k = 1) deployment of Algorithm 1."""
    return make_processes(n, values, track_history=track_history)


def run_reached_consensus(run: Run) -> bool:
    """Whether the run decided on exactly one value (all processes)."""
    return run.all_decided() and len(run.decision_values()) == 1


def consensus_was_guaranteed(run: Run) -> bool:
    """Whether the run's stable skeleton structurally guaranteed consensus:
    a single root component.  ``consensus_was_guaranteed(run)`` implies
    ``run_reached_consensus(run)`` for complete runs of Algorithm 1 — the
    implication the integration tests verify."""
    return len(root_components(run.stable_skeleton())) == 1
