"""Algorithm 1: approximating the stable skeleton and solving k-set
agreement with ``Psrcs(k)``.

The implementation is a line-by-line transcription of the paper's
pseudocode; the table below maps pseudocode lines to methods.

=====  =============================================================
Line   Where
=====  =============================================================
1–4    :meth:`SkeletonAgreementProcess.__init__` (``PTp = Π``,
       ``xp = vp``, ``Gp = <{p}, ∅>``, ``decided = 0``)
5–8    :meth:`SkeletonAgreementProcess.send` (``decide`` vs ``prop``)
9      :meth:`SkeletonAgreementProcess.transition` — ``PTp`` update
10–13  decide-message adoption
14–25  :meth:`repro.core.approximation.ApproximationGraph.round_update`
26–27  min-estimate update over ``PTp``
28–30  the decision rule (``r > n`` and ``Gp`` strongly connected)
=====  =============================================================

Determinism notes (where the pseudocode leaves freedom):

* Line 10 says "received (decide, xq, _) from q ∈ PTp" without fixing *which*
  decide message to adopt when several arrive in the same round.  We adopt
  from the smallest sender id; any choice preserves Lemma 13 (the adopted
  value can be traced back to a line-29 decision).
* Estimates must be totally ordered for the ``min`` of line 27; proposal
  values are therefore required to be mutually comparable (ints in all the
  experiments, matching the paper's ``xp ∈ N``).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.approximation import ApproximationGraph
from repro.graphs.labeled import RoundLabeledDigraph
from repro.rounds.messages import Message
from repro.rounds.process import Process

PROP = "prop"
DECIDE = "decide"


class SkeletonAgreementProcess(Process):
    """One process running Algorithm 1.

    Parameters
    ----------
    pid, n, initial_value:
        See :class:`~repro.rounds.process.Process`.
    track_history:
        Keep per-round snapshots of ``Gp`` and ``PTp`` (needed by the lemma
        checkers, which reason about ``G^r_p`` for past rounds ``r``).
    purge_window, prune_unreachable:
        Ablation knobs forwarded to :class:`ApproximationGraph`; leave at
        defaults for the paper's algorithm.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        initial_value: Any,
        track_history: bool = False,
        purge_window: int | None = None,
        prune_unreachable: bool = True,
    ) -> None:
        super().__init__(pid, n, initial_value)
        # Line 1: PTp := Π.
        self.pt: frozenset[int] = frozenset(range(n))
        # Line 2: xp := vp.
        self.estimate: Any = initial_value
        # Line 3: Gp := <{p}, ∅> (weighted digraph).
        self.approx = ApproximationGraph(
            pid, n, purge_window=purge_window, prune_unreachable=prune_unreachable
        )
        # Line 4 is the base class's decided flag.
        self.track_history = track_history
        #: per-round history: round -> (PTp, snapshot of Gp, estimate)
        self.history: dict[int, tuple[frozenset[int], RoundLabeledDigraph, Any]] = {}

    # ------------------------------------------------------------------
    # Sending function S_p^r (lines 5–8)
    # ------------------------------------------------------------------
    def send(self, round_no: int) -> Message:
        kind = DECIDE if self.decided else PROP
        return Message(
            sender=self.pid,
            round_no=round_no,
            kind=kind,
            payload={"x": self.estimate, "graph": self.approx.snapshot()},
        )

    # ------------------------------------------------------------------
    # Transition function T_p^r (lines 9–30)
    # ------------------------------------------------------------------
    def transition(self, round_no: int, received: Mapping[int, Message]) -> None:
        # Line 9: update PTp — equation (7): intersect with this round's
        # heard-of set.
        self.pt = self.pt & frozenset(received)

        # Lines 10–13: adopt a decision from a timely neighbor.
        if not self.decided:
            deciders = sorted(
                q for q in self.pt if received[q].kind == DECIDE
            )
            if deciders:
                q = deciders[0]
                self.estimate = received[q].payload["x"]
                self._decide(round_no, self.estimate)

        # Lines 14–25: approximate the stable skeleton.
        graphs = {q: received[q].payload["graph"] for q in self.pt}
        self.approx.round_update(round_no, self.pt, graphs)

        # Lines 26–30.
        if not self.decided:
            # Line 27: xp <- min over estimates of timely neighbors.  PTp
            # always contains p under self-delivery; the guard covers the
            # degenerate no-self-delivery configuration, where the estimate
            # is simply retained.
            candidates = [received[q].payload["x"] for q in self.pt]
            if candidates:
                self.estimate = min(candidates)
            # Line 28: the decision test.
            if round_no > self.n and self.approx.is_strongly_connected():
                # Lines 29–30.
                self._decide(round_no, self.estimate)

        if self.track_history:
            self.history[round_no] = (
                self.pt,
                self.approx.snapshot(),
                self.estimate,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def approximation_at(self, round_no: int) -> RoundLabeledDigraph:
        """``G^r_p`` — requires ``track_history=True``."""
        if not self.track_history:
            raise RuntimeError("history tracking is disabled")
        return self.history[round_no][1]

    def pt_at(self, round_no: int) -> frozenset[int]:
        """``PT_p`` at the end of round ``round_no`` — requires history."""
        if not self.track_history:
            raise RuntimeError("history tracking is disabled")
        return self.history[round_no][0]

    def estimate_at(self, round_no: int) -> Any:
        """``x^r_p`` — requires history."""
        if not self.track_history:
            raise RuntimeError("history tracking is disabled")
        return self.history[round_no][2]

    def state_snapshot(self) -> dict[str, Any]:
        snap = super().state_snapshot()
        snap.update(
            {
                "pt": sorted(self.pt),
                "estimate": self.estimate,
                "approx_nodes": sorted(self.approx.nodes(), key=repr),
                "approx_edges": sorted(
                    self.approx.labeled_edges(), key=repr
                ),
            }
        )
        return snap


def make_processes(
    n: int,
    values: list[Any] | None = None,
    track_history: bool = False,
    purge_window: int | None = None,
    prune_unreachable: bool = True,
) -> list[SkeletonAgreementProcess]:
    """Build the full process vector for a run of Algorithm 1.

    ``values`` defaults to pairwise distinct proposals ``0..n-1`` — the
    worst case for agreement (used by Theorem 2 and most experiments).
    """
    if values is None:
        values = list(range(n))
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    return [
        SkeletonAgreementProcess(
            pid,
            n,
            values[pid],
            track_history=track_history,
            purge_window=purge_window,
            prune_unreachable=prune_unreachable,
        )
        for pid in range(n)
    ]
