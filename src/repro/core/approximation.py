"""The stable-skeleton approximation graph (Algorithm 1, lines 14–25).

Every process ``p`` locally maintains a round-labeled digraph ``Gp``
approximating the stable skeleton of the run.  Per round ``r`` the update is
(line numbers from the paper's Algorithm 1):

=====  ==============================================================
Line   Operation
=====  ==============================================================
15     ``Gp <- <{p}, ∅>`` — reset
16–17  for each timely neighbor ``q ∈ PTp``: add edge ``(q --r--> p)``
18     ``Vp <- Vp ∪ Vq`` — union in the node sets of received graphs
19–23  for every node pair: keep the **maximum** round label over all
       graphs received from timely neighbors
24     discard edges with label ``re <= r - n`` (purge window)
25     discard nodes ``pi ≠ p`` from which ``p`` is unreachable
=====  ==============================================================

The label max-merge is why the structure is correct: by Lemma 6 an edge
``(q' --s--> q)`` certifies ``q' ∈ PT(q, s)``, and keeping the *latest*
certificate while purging certificates older than ``n`` rounds guarantees
both soundness (Lemma 7: a strongly connected approximation is contained in
a recent skeleton SCC) and completeness (Lemma 5: the approximation covers
``C^r_p`` from round ``n`` on).

The purge window ``n`` and the pruning step are exposed as parameters so the
ablation benchmarks can demonstrate *why* the paper's choices are the right
ones (see ``benchmarks/test_bench_ablation.py``).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import RoundLabeledDigraph
from repro.graphs.paths import reaches
from repro.graphs.scc import is_strongly_connected


class ApproximationGraph:
    """Process-local approximation ``Gp`` of the stable skeleton.

    Parameters
    ----------
    owner:
        The maintaining process ``p``.
    n:
        System size; the purge window of line 24 (edges older than ``n``
        rounds are discarded).
    purge_window:
        Override of the purge window for ablation studies; defaults to
        ``n`` (the paper's choice — provably the smallest safe value).
    prune_unreachable:
        Whether to perform line 25; default True (the paper's algorithm).
        Disabling it is *only* for the ablation benchmark.
    """

    def __init__(
        self,
        owner: int,
        n: int,
        purge_window: int | None = None,
        prune_unreachable: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.owner = owner
        self.n = n
        self.purge_window = n if purge_window is None else purge_window
        if self.purge_window < 1:
            raise ValueError("purge window must be >= 1")
        self.prune_unreachable = prune_unreachable
        # Line 3: Gp := <{p}, ∅>.
        self._g = RoundLabeledDigraph(nodes=[owner])

    # ------------------------------------------------------------------
    # The round update (lines 14–25)
    # ------------------------------------------------------------------
    def round_update(
        self,
        round_no: int,
        timely: Iterable[int],
        received_graphs: Mapping[int, RoundLabeledDigraph],
    ) -> None:
        """Apply one round of Algorithm 1's approximation update.

        Parameters
        ----------
        round_no:
            Current round ``r``.
        timely:
            The updated ``PTp`` (line 9 has already been applied).
        received_graphs:
            ``q -> Gq`` for each ``q ∈ PTp``: the approximation graph ``q``
            broadcast this round (i.e. ``q``'s graph at the *beginning* of
            round ``r``).
        """
        pt = set(timely)
        missing = pt - set(received_graphs)
        if missing:
            raise ValueError(
                f"round {round_no}: no received graph for timely neighbors "
                f"{sorted(missing)}"
            )
        # Line 15: reset.
        g = RoundLabeledDigraph(nodes=[self.owner])
        # Lines 16–18: fresh in-edges from timely neighbors + node union.
        for q in sorted(pt):
            g.add_edge(q, self.owner, round_no)
            g.add_nodes(received_graphs[q].nodes())
        # Lines 19–23: per-pair maximum label over all received graphs.
        # Merging each received graph with max semantics is equivalent to
        # the paper's pairwise loop: every pair (pi, pj) with R_{i,j} ≠ ∅
        # ends up with label max(R_{i,j}); the fresh label-r edges from
        # line 17 dominate any older label for the same pair.
        for q in sorted(pt):
            g.merge_max(received_graphs[q])
        # Line 24: purge edges with label re <= r - n.
        g.purge_older_than(round_no - self.purge_window)
        # Line 25: discard pi != p when p is unreachable from pi.
        if self.prune_unreachable:
            keep = reaches(g.unweighted(), self.owner)
            for node in sorted(g.nodes() - keep, key=repr):
                g.remove_node(node)
        self._g = g

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def snapshot(self) -> RoundLabeledDigraph:
        """An independent copy of ``Gp`` — what the process broadcasts.

        The copy matters: the simulator evaluates all sending functions
        before any transition, and receivers must observe the sender's
        beginning-of-round graph even after the sender mutates its own.
        """
        return self._g.copy()

    @property
    def graph(self) -> RoundLabeledDigraph:
        """The live graph (mutated by :meth:`round_update`); treat as
        read-only."""
        return self._g

    def unweighted(self) -> DiGraph:
        """The unweighted view used in subgraph relations and the strong
        connectivity test."""
        return self._g.unweighted()

    def is_strongly_connected(self) -> bool:
        """The decision test of line 28."""
        return is_strongly_connected(self._g.unweighted())

    def nodes(self) -> frozenset[int]:
        return self._g.nodes()

    def labeled_edges(self) -> frozenset[tuple[int, int, int]]:
        return self._g.labeled_edges()

    def __repr__(self) -> str:
        return (
            f"ApproximationGraph(owner={self.owner}, |V|={len(self._g)}, "
            f"|E|={self._g.number_of_edges()})"
        )
