"""The paper's primary contribution: Algorithm 1.

* :class:`~repro.core.approximation.ApproximationGraph` — the generic stable
  skeleton approximation (Alg. 1 lines 14–25),
* :class:`~repro.core.algorithm.SkeletonAgreementProcess` — the full k-set
  agreement algorithm,
* :mod:`repro.core.invariants` — runtime checkers for Observation 1,
  Lemmas 3–7 and Theorem 8 that can be attached to any simulation,
* :func:`~repro.core.consensus.make_consensus_processes` — the k = 1
  specialization (§V: the algorithm solves consensus in sufficiently
  well-behaved runs).
"""

from repro.core.approximation import ApproximationGraph
from repro.core.algorithm import SkeletonAgreementProcess, make_processes
from repro.core.consensus import make_consensus_processes

__all__ = [
    "ApproximationGraph",
    "SkeletonAgreementProcess",
    "make_processes",
    "make_consensus_processes",
]
