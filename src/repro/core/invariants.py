"""Runtime checkers for the paper's correctness machinery.

Each checker verifies one of the paper's statements *on the fly* against a
live simulation: attach :func:`make_invariant_hook` to a
:class:`~repro.rounds.simulator.RoundSimulator` and every round of every run
becomes a test of Observation 1/2, Lemmas 3, 5, 6, 7, 12 and Theorem 8.

A crucial point from the paper: the approximation results (Obs. 1, Lemmas
3–7, Thm 8) hold in **all runs, regardless of the communication predicate**
— so the checkers are attached to adversaries that violate ``Psrcs``, too
(the ALG-APPROX experiment).

Checkers raise :class:`InvariantViolation` (an ``AssertionError`` subclass)
with a witness description; property-based tests drive random adversaries
through them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.algorithm import SkeletonAgreementProcess
from repro.graphs.scc import is_strongly_connected, scc_of
from repro.rounds.run import Run


class InvariantViolation(AssertionError):
    """A paper invariant failed during simulation."""


# ----------------------------------------------------------------------
# Per-statement checkers.  Signature: (run, round_no, processes) -> None.
# ----------------------------------------------------------------------
def check_observation_1(
    run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
) -> None:
    """Observation 1: ``p ∈ G^r_p`` and no edge label ``s <= r - n``."""
    for proc in processes:
        g = proc.approx.graph
        if proc.pid not in g.nodes():
            raise InvariantViolation(
                f"Obs.1: process {proc.pid} missing from its own "
                f"approximation at round {round_no}"
            )
        min_label = g.min_label()
        if min_label is not None and min_label <= round_no - proc.approx.purge_window:
            raise InvariantViolation(
                f"Obs.1: process {proc.pid} retains stale label {min_label} "
                f"at round {round_no} (cutoff {round_no - proc.approx.purge_window})"
            )


def check_lemma_3(
    run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
) -> None:
    """Lemma 3: ``q ∈ PT(p, r)``  ⇔  ``q ∈ PT_p`` and ``G^r_p`` contains the
    edge ``q -> p`` with label exactly ``r`` (and no other label)."""
    for proc in processes:
        expected_pt = run.timely_neighborhood(proc.pid, round_no)
        if proc.pt != expected_pt:
            raise InvariantViolation(
                f"Lemma 3(a): PT_{proc.pid} = {sorted(proc.pt)} but "
                f"PT({proc.pid}, {round_no}) = {sorted(expected_pt)}"
            )
        g = proc.approx.graph
        for q in expected_pt:
            label = g.get_label(q, proc.pid)
            if label != round_no:
                raise InvariantViolation(
                    f"Lemma 3(b,c): edge ({q} -> {proc.pid}) has label "
                    f"{label}, expected {round_no}"
                )


def check_lemma_5(
    run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
) -> None:
    """Lemma 5: for ``r >= n``, ``G^r_p ⊇ C^r_p`` (SCC of p in ``G^∩r``)."""
    if round_no < run.n:
        return
    skeleton = run.skeleton(round_no)
    for proc in processes:
        component = scc_of(skeleton, proc.pid)
        approx = proc.approx.unweighted()
        missing_nodes = component - approx.nodes()
        if missing_nodes:
            raise InvariantViolation(
                f"Lemma 5: C^{round_no}_{proc.pid} nodes {sorted(missing_nodes)} "
                f"missing from approximation"
            )
        for u in component:
            for v in skeleton.successors(u):
                if v in component and not approx.has_edge(u, v):
                    raise InvariantViolation(
                        f"Lemma 5: skeleton-SCC edge ({u} -> {v}) missing "
                        f"from G^{round_no}_{proc.pid}"
                    )


def check_lemma_6(
    run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
) -> None:
    """Lemma 6: every edge ``(q' --s--> q) ∈ G^r_p`` certifies
    ``q' ∈ PT(q, s)``, i.e. the edge is in the round-``s`` skeleton."""
    for proc in processes:
        for q2, q, s in proc.approx.graph.iter_labeled_edges():
            if not 1 <= s <= run.num_rounds:
                raise InvariantViolation(
                    f"Lemma 6: label {s} outside the run at round {round_no}"
                )
            if not run.skeleton(s).has_edge(q2, q):
                raise InvariantViolation(
                    f"Lemma 6: edge ({q2} --{s}--> {q}) in G^{round_no}_"
                    f"{proc.pid} but {q2} ∉ PT({q}, {s})"
                )


def check_lemma_7(
    run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
) -> None:
    """Lemma 7 (shifted to the current round R = r + n - 1): if ``G^R_p`` is
    strongly connected and ``R >= n``, then ``G^R_p ⊆ C^{R-n+1}_p``."""
    if round_no < run.n:
        return
    earlier = run.skeleton(round_no - run.n + 1)
    for proc in processes:
        approx = proc.approx.unweighted()
        if not is_strongly_connected(approx):
            continue
        component = scc_of(earlier, proc.pid)
        extra = approx.nodes() - component
        if extra:
            raise InvariantViolation(
                f"Lemma 7: strongly connected G^{round_no}_{proc.pid} "
                f"contains {sorted(extra)} outside C^{round_no - run.n + 1}_"
                f"{proc.pid}"
            )


def check_theorem_8(
    run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
) -> None:
    """Theorem 8: for ``R > n``, a strongly connected ``G^R_p`` contains the
    *stable* component ``C^∞_q`` (nodes and edges) of every ``q ∈ G^R_p``.

    Requires a declared stable skeleton to know the true ``C^∞``.
    """
    if round_no <= run.n or run.declared_stable_graph is None:
        return
    stable = run.declared_stable_graph
    for proc in processes:
        approx = proc.approx.unweighted()
        if not is_strongly_connected(approx):
            continue
        for q in approx.nodes():
            component = scc_of(stable, q)
            missing = component - approx.nodes()
            if missing:
                raise InvariantViolation(
                    f"Thm 8: C^∞_{q} nodes {sorted(missing)} missing from "
                    f"strongly connected G^{round_no}_{proc.pid}"
                )
            for u in component:
                for v in stable.successors(u):
                    if v in component and not approx.has_edge(u, v):
                        raise InvariantViolation(
                            f"Thm 8: C^∞ edge ({u} -> {v}) missing from "
                            f"G^{round_no}_{proc.pid}"
                        )


class EstimateMonotonicityChecker:
    """Observation 2 + Lemma 12, stateful across rounds.

    * Observation 2: estimates never increase, except through a line-11
      decide adoption (which fixes the final value anyway).
    * Lemma 12: a process that does not decide by adoption keeps a constant
      estimate from round ``n - 1`` on.
    """

    def __init__(self) -> None:
        self._last: dict[int, object] = {}
        self._adopted: set[int] = set()

    def __call__(
        self, run: Run, round_no: int, processes: Sequence[SkeletonAgreementProcess]
    ) -> None:
        for proc in processes:
            prev = self._last.get(proc.pid)
            current = proc.estimate
            if proc.decided and proc.decision.value != current:
                raise InvariantViolation(
                    f"process {proc.pid}: estimate {current!r} deviates from "
                    f"decision {proc.decision.value!r}"
                )
            if prev is not None and proc.pid not in self._adopted:
                if current > prev:
                    # The only sanctioned increase is a decide adoption.
                    if proc.decided and proc.decision.round_no == round_no:
                        self._adopted.add(proc.pid)
                    else:
                        raise InvariantViolation(
                            f"Obs.2: estimate of {proc.pid} increased "
                            f"{prev!r} -> {current!r} at round {round_no}"
                        )
                if round_no > run.n - 1 and round_no - 1 > run.n - 1 and current != prev:
                    if not (proc.decided and proc.decision.round_no == round_no):
                        raise InvariantViolation(
                            f"Lemma 12: estimate of {proc.pid} changed "
                            f"{prev!r} -> {current!r} at round {round_no} > n-1"
                        )
            self._last[proc.pid] = current


ALL_CHECKS = {
    "observation1": check_observation_1,
    "lemma3": check_lemma_3,
    "lemma5": check_lemma_5,
    "lemma6": check_lemma_6,
    "lemma7": check_lemma_7,
    "theorem8": check_theorem_8,
}


def make_invariant_hook(*names: str):
    """Bundle the named checkers (default: all stateless ones plus a fresh
    monotonicity checker) into a single simulator hook."""
    if names:
        checks = [ALL_CHECKS[name] for name in names]
    else:
        checks = list(ALL_CHECKS.values())
    checks.append(EstimateMonotonicityChecker())

    def hook(run: Run, round_no: int, processes) -> None:
        for check in checks:
            check(run, round_no, processes)

    return hook
