"""Heard-Of and Round-by-Round-Fault-Detector adapters.

The paper's correspondence (6)/(7) between skeleton edges and the HO / RbR
models::

    (p -> q) ∈ E^∩r  ⇔  ∀r' <= r : p ∈ HO(q, r')
                      ⇔  ∀r' <= r : p ∉ D(q, r')

    PT(p, r) = ∩_{r' <= r} HO(p, r')  =  Π \\ ∪_{r' <= r} D(p, r')

These adapters convert between the three representations, letting runs be
specified in whichever model is most natural and validating the
correspondence in tests.
"""

from repro.homodel.heard_of import HeardOfCollection
from repro.homodel.rrfd import RoundByRoundFaultDetector

__all__ = ["HeardOfCollection", "RoundByRoundFaultDetector"]
