"""Round-by-Round Fault Detectors (Gafni).

``D(p, r)`` is the set of processes that ``p``'s local fault detector
*suspects* in round ``r`` — ``p`` waits for round-``r`` messages exactly
from ``Π \\ D(p, r)``.  Following the paper's simplification (§II), a
process never receives a message from a suspected process, which makes the
correspondence with heard-of sets a strict complement::

    D(p, r) = Π \\ HO(p, r)        PT(p, r) = Π \\ ∪_{r' <= r} D(p, r')
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.graphs.digraph import DiGraph
from repro.homodel.heard_of import HeardOfCollection


class RoundByRoundFaultDetector:
    """A per-round collection of suspicion sets ``D(p, r)``."""

    def __init__(self, n: int, rounds: Sequence[Mapping[int, frozenset[int]]]) -> None:
        self.n = n
        self._rounds: list[dict[int, frozenset[int]]] = []
        everyone = frozenset(range(n))
        for idx, d in enumerate(rounds):
            complete: dict[int, frozenset[int]] = {}
            for p in range(n):
                suspected = frozenset(d.get(p, frozenset()))
                if not suspected <= everyone:
                    raise ValueError(
                        f"round {idx + 1}: D({p}) contains unknown processes"
                    )
                complete[p] = suspected
            self._rounds.append(complete)

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    def suspected(self, pid: int, round_no: int) -> frozenset[int]:
        """``D(pid, round_no)``."""
        if not 1 <= round_no <= len(self._rounds):
            raise IndexError(f"round {round_no} out of range")
        return self._rounds[round_no - 1][pid]

    def timely_neighborhood(self, pid: int, round_no: int) -> frozenset[int]:
        """``PT(p, r) = Π \\ ∪_{r' <= r} D(p, r')`` — equation (7)."""
        union: frozenset[int] = frozenset()
        for r in range(1, round_no + 1):
            union |= self.suspected(pid, r)
        return frozenset(range(self.n)) - union

    # ------------------------------------------------------------------
    def to_heard_of(self) -> HeardOfCollection:
        """``HO(p, r) = Π \\ D(p, r)`` (the paper's simplification that a
        suspected process is never heard)."""
        everyone = frozenset(range(self.n))
        rounds = [
            {p: everyone - d[p] for p in range(self.n)} for d in self._rounds
        ]
        return HeardOfCollection(self.n, rounds)

    @classmethod
    def from_heard_of(cls, ho: HeardOfCollection) -> "RoundByRoundFaultDetector":
        everyone = frozenset(range(ho.n))
        rounds = [
            {p: everyone - ho.ho(p, r) for p in range(ho.n)}
            for r in range(1, ho.num_rounds + 1)
        ]
        return cls(ho.n, rounds)

    @classmethod
    def from_graphs(cls, graphs: Sequence[DiGraph]) -> "RoundByRoundFaultDetector":
        return cls.from_heard_of(HeardOfCollection.from_graphs(graphs))

    def graph(self, round_no: int) -> DiGraph:
        """The communication graph implied by round ``round_no``."""
        return self.to_heard_of().graph(round_no)

    def __repr__(self) -> str:
        return f"RoundByRoundFaultDetector(n={self.n}, rounds={self.num_rounds})"
