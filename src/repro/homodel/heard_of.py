"""The Heard-Of model (Charron-Bost & Schiper).

``HO(p, r)`` is the set of processes that ``p`` hears of (receives a
round-``r`` message from) in round ``r``.  In graph terms,
``HO(p, r) = {q | (q -> p) ∈ G^r}`` — the in-neighborhood of ``p`` in the
round's communication graph; the correspondence (6)/(7) then gives timely
neighborhoods as prefix intersections of heard-of sets.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.graphs.digraph import DiGraph
from repro.rounds.run import Run


class HeardOfCollection:
    """A per-round collection of heard-of sets.

    Stored as a list (round-indexed, 1-based externally) of mappings
    ``pid -> frozenset of heard processes``.
    """

    def __init__(self, n: int, rounds: Sequence[Mapping[int, frozenset[int]]]) -> None:
        self.n = n
        self._rounds: list[dict[int, frozenset[int]]] = []
        for idx, ho in enumerate(rounds):
            complete: dict[int, frozenset[int]] = {}
            for p in range(n):
                heard = frozenset(ho.get(p, frozenset()))
                if not heard <= frozenset(range(n)):
                    raise ValueError(
                        f"round {idx + 1}: HO({p}) contains unknown processes"
                    )
                complete[p] = heard
            self._rounds.append(complete)

    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    def ho(self, pid: int, round_no: int) -> frozenset[int]:
        """``HO(pid, round_no)``."""
        if not 1 <= round_no <= len(self._rounds):
            raise IndexError(f"round {round_no} out of range")
        return self._rounds[round_no - 1][pid]

    def timely_neighborhood(self, pid: int, round_no: int) -> frozenset[int]:
        """``PT(p, r) = ∩_{r' <= r} HO(p, r')`` — equation (7)."""
        result = frozenset(range(self.n))
        for r in range(1, round_no + 1):
            result &= self.ho(pid, r)
        return result

    # ------------------------------------------------------------------
    # Conversions (correspondence (6))
    # ------------------------------------------------------------------
    def graph(self, round_no: int) -> DiGraph:
        """The communication graph ``G^r``: edge ``q -> p`` iff
        ``q ∈ HO(p, r)``."""
        g = DiGraph(nodes=range(self.n))
        for p in range(self.n):
            for q in self.ho(p, round_no):
                g.add_edge(q, p)
        return g

    def graphs(self) -> list[DiGraph]:
        return [self.graph(r) for r in range(1, self.num_rounds + 1)]

    @classmethod
    def from_graphs(cls, graphs: Sequence[DiGraph]) -> "HeardOfCollection":
        """Inverse conversion: per-round in-neighborhoods."""
        if not graphs:
            raise ValueError("need at least one graph")
        nodes = graphs[0].nodes()
        n = len(nodes)
        if nodes != frozenset(range(n)):
            raise ValueError("graphs must be on nodes 0..n-1")
        rounds = []
        for g in graphs:
            rounds.append({p: g.predecessors(p) for p in range(n)})
        return cls(n, rounds)

    @classmethod
    def from_run(cls, run: Run) -> "HeardOfCollection":
        return cls.from_graphs(run.graphs())

    def __repr__(self) -> str:
        return f"HeardOfCollection(n={self.n}, rounds={self.num_rounds})"
