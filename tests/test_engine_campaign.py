"""Campaign API: resume-by-hash, worker-count-independent summaries,
status/report surfaces.  Includes the acceptance scenario: a 200+ scenario
campaign whose canonical summary is byte-identical under --jobs 1 and
--jobs 4, and which, after losing half its journal, re-executes exactly
the missing half."""

from __future__ import annotations

import random

import pytest

from repro.engine.campaign import Campaign, run_campaign
from repro.engine.scenarios import ScenarioGrid, ScenarioSpec
from repro.engine.store import ResultStore


def small_grid() -> ScenarioGrid:
    return ScenarioGrid(n=[5, 6], k=2, num_groups=[1, 2], seed=range(3),
                        noise=0.1)


class TestCampaignBasics:
    def test_run_then_rerun_is_idempotent(self, tmp_path):
        campaign = Campaign(small_grid(), store=tmp_path / "j.jsonl")
        first = campaign.run()
        assert (first.total, first.executed, first.skipped) == (12, 12, 0)
        assert first.ok == 12
        second = campaign.run()
        assert (second.executed, second.skipped) == (0, 12)

    def test_in_memory_store(self):
        campaign = Campaign(small_grid(), store=None)
        assert campaign.run().ok == 12
        assert len(campaign.completed_results()) == 12

    def test_status_counts_missing(self, tmp_path):
        campaign = Campaign(small_grid(), store=tmp_path / "j.jsonl")
        status = campaign.status()
        assert status.total == 12 and status.missing == 12
        assert not status.complete
        campaign.run()
        status = campaign.status()
        assert status.ok == 12 and status.missing == 0
        assert status.complete

    def test_results_in_grid_order(self):
        campaign = Campaign(small_grid(), store=None)
        campaign.run()
        results = campaign.results()
        assert [r.spec for r in results] == campaign.specs

    def test_report_table_mentions_every_column(self):
        campaign = Campaign(small_grid(), store=None)
        campaign.run()
        table = campaign.report_table(limit=2)
        assert "Psrcs(k)" in table and "first 2 shown" in table

    def test_duplicate_specs_rejected(self):
        spec = ScenarioSpec(n=5)
        with pytest.raises(ValueError, match="duplicate"):
            Campaign([spec, spec], store=None)

    def test_run_campaign_convenience(self, tmp_path):
        results = run_campaign(small_grid(), store=tmp_path / "j.jsonl")
        assert len(results) == 12 and all(r.ok for r in results)


class TestAcceptance:
    """The PR's acceptance scenario, sized to stay fast: >= 200 scenarios,
    byte-identical summaries across worker counts, and exact-missing-half
    resume."""

    @pytest.fixture(scope="class")
    def grid(self) -> ScenarioGrid:
        grid = ScenarioGrid(
            n=[4, 5], k=2, num_groups=[1, 2], seed=range(26),
            noise=[0.0, 0.1],
        )
        assert len(grid) == 208
        return grid

    def test_summary_bytes_independent_of_jobs(self, tmp_path, grid):
        c1 = Campaign(grid, store=tmp_path / "j1.jsonl")
        c1.run(jobs=1)
        c1.write_summary(tmp_path / "s1.jsonl")

        c4 = Campaign(grid, store=tmp_path / "j4.jsonl")
        report = c4.run(jobs=4)
        assert report.ok == 208
        c4.write_summary(tmp_path / "s4.jsonl")

        s1 = (tmp_path / "s1.jsonl").read_bytes()
        s4 = (tmp_path / "s4.jsonl").read_bytes()
        assert s1 == s4
        assert len(s1.splitlines()) == 208

        # Journals are completion-ordered (may differ); summaries are the
        # deterministic artifact.  Losing half the journal re-executes
        # exactly the missing half and converges to the same bytes.
        lines = (tmp_path / "j1.jsonl").read_text().strip().split("\n")
        random.Random(0).shuffle(lines)
        kept = lines[: len(lines) // 2]
        (tmp_path / "j1.jsonl").write_text("\n".join(kept) + "\n")

        resumed = Campaign(grid, store=tmp_path / "j1.jsonl")
        assert len(resumed.store.completed_ids()) == len(kept)
        report = resumed.run(jobs=2)
        assert report.executed == 208 - len(kept)
        assert report.skipped == len(kept)
        resumed.write_summary(tmp_path / "s1b.jsonl")
        assert (tmp_path / "s1b.jsonl").read_bytes() == s4
