"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.transport.events import EventQueue


class TestScheduling:
    def test_initial_time(self):
        q = EventQueue()
        assert q.now == 0.0
        assert not q

    def test_schedule_and_pop_in_order(self):
        q = EventQueue()
        q.schedule(3.0, "c")
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]
        assert q.now == 3.0

    def test_simultaneous_events_fifo(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-0.1, "x")

    def test_schedule_at(self):
        q = EventQueue()
        q.schedule_at(5.0, "x")
        event = q.pop()
        assert event.time == 5.0
        assert q.now == 5.0

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.schedule_at(0.5, "y")

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_time_monotone(self):
        q = EventQueue()
        q.schedule(2.0, "later")
        q.pop()
        q.schedule(0.5, "relative-to-now")
        assert q.pop().time == 2.5


class TestCancel:
    def test_cancelled_not_delivered(self):
        q = EventQueue()
        e = q.schedule(1.0, "dead")
        q.schedule(2.0, "alive")
        q.cancel(e)
        assert q.pop().kind == "alive"

    def test_len_accounts_for_cancelled(self):
        q = EventQueue()
        e = q.schedule(1.0, "dead")
        q.schedule(2.0, "alive")
        q.cancel(e)
        assert len(q) == 1


class TestDrainRunClear:
    def test_drain_until(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, f"e{t}")
        kinds = [e.kind for e in q.drain(until=2.0)]
        assert kinds == ["e1.0", "e2.0"]
        assert q.now == 2.0
        assert len(q) == 1  # e3.0 still pending

    def test_drain_until_inclusive(self):
        q = EventQueue()
        q.schedule(2.0, "edge")
        assert [e.kind for e in q.drain(until=2.0)] == ["edge"]

    def test_drain_all(self):
        q = EventQueue()
        for t in (1.0, 2.0):
            q.schedule(t, "e")
        assert len(list(q.drain())) == 2

    def test_run_with_handler(self):
        q = EventQueue()
        seen = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, "e", payload=t)
        count = q.run(lambda e: seen.append(e.payload), until=2.5)
        assert count == 2
        assert seen == [1.0, 2.0]

    def test_run_max_events(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, "e")
        assert q.run(lambda e: None, max_events=2) == 2
        assert len(q) == 1

    def test_clear_keeps_time(self):
        q = EventQueue()
        q.schedule(10.0, "x")
        q.schedule(20.0, "y")
        assert q.clear() == 2
        assert q.now == 0.0
        assert not q

    def test_advance_to(self):
        q = EventQueue()
        q.advance_to(4.0)
        assert q.now == 4.0
        with pytest.raises(ValueError):
            q.advance_to(1.0)
