"""Tests for the lemma checkers: they must pass on honest runs (many
adversaries) and fire on doctored runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.crash import CrashAdversary
from repro.adversaries.eventual import EventuallyGoodAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.mobile import MobileOmissionAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.core.algorithm import make_processes
from repro.core.invariants import (
    ALL_CHECKS,
    EstimateMonotonicityChecker,
    InvariantViolation,
    check_lemma_3,
    check_lemma_5,
    check_lemma_6,
    check_observation_1,
    make_invariant_hook,
)
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def run_checked(adversary, n, max_rounds=50):
    procs = make_processes(n)
    run = RoundSimulator(
        procs,
        adversary,
        SimulationConfig(max_rounds=max_rounds),
        invariant_hooks=[make_invariant_hook()],
    ).run()
    return run, procs


ADVERSARIES = [
    ("grouped-1", lambda: GroupedSourceAdversary(7, 1, seed=0, noise=0.25)),
    ("grouped-3", lambda: GroupedSourceAdversary(9, 3, seed=1, noise=0.3)),
    ("grouped-star", lambda: GroupedSourceAdversary(8, 2, seed=2, topology="star")),
    ("partition", lambda: PartitionAdversary(7, 3)),
    ("crash", lambda: CrashAdversary(6, {0: 2, 3: 4}, seed=3)),
    ("mobile", lambda: MobileOmissionAdversary(6, 8, seed=4)),
    (
        "eventual",
        lambda: EventuallyGoodAdversary(
            GroupedSourceAdversary(6, 2, seed=5), bad_rounds=4
        ),
    ),
]


class TestCheckersPassOnHonestRuns:
    """The approximation statements hold in ALL runs (the paper's point);
    every adversary — Psrcs-satisfying or not — must pass every check."""

    @pytest.mark.parametrize("name,factory", ADVERSARIES)
    def test_all_lemmas_hold(self, name, factory):
        adversary = factory()
        run, _ = run_checked(adversary, adversary.n)
        assert run.num_rounds >= 1  # no InvariantViolation raised


class TestCheckersFireOnViolations:
    def _honest(self, n=5, rounds=8):
        adv = GroupedSourceAdversary(n, 2, seed=0)
        procs = make_processes(n)
        run = RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=rounds, stop_when_all_decided=False),
        ).run()
        return run, procs

    def test_observation1_owner_missing(self):
        run, procs = self._honest()
        # doctor: remove the owner node
        procs[0].approx.graph.remove_node(0)
        with pytest.raises(InvariantViolation, match="Obs.1"):
            check_observation_1(run, run.num_rounds, procs)

    def test_observation1_stale_label(self):
        run, procs = self._honest()
        procs[0].approx.graph.set_edge(1, 0, run.num_rounds - run.n)
        with pytest.raises(InvariantViolation, match="Obs.1"):
            check_observation_1(run, run.num_rounds, procs)

    def test_lemma3_wrong_pt(self):
        run, procs = self._honest()
        procs[0].pt = procs[0].pt | frozenset({run.n - 1, 0}) - frozenset({0})
        # force a mismatch by removing a member actually timely
        procs[0].pt = frozenset()
        with pytest.raises(InvariantViolation, match="Lemma 3"):
            check_lemma_3(run, run.num_rounds, procs)

    def test_lemma3_wrong_label(self):
        run, procs = self._honest()
        q = next(iter(procs[0].pt))
        procs[0].approx.graph.set_edge(q, 0, run.num_rounds - 1)
        with pytest.raises(InvariantViolation, match="Lemma 3"):
            check_lemma_3(run, run.num_rounds, procs)

    def test_lemma5_missing_component_edge(self):
        run, procs = self._honest(rounds=12)
        # doctor a process in a non-trivial SCC: drop one intra-SCC edge
        from repro.graphs.scc import scc_of

        skel = run.skeleton(run.num_rounds)
        victim = None
        for p in procs:
            comp = scc_of(skel, p.pid)
            if len(comp) > 1:
                victim = p
                comp_nodes = comp
                break
        assert victim is not None
        for u in comp_nodes:
            for v in skel.successors(u):
                if v in comp_nodes and victim.approx.graph.has_edge(u, v):
                    victim.approx.graph.remove_edge(u, v)
        with pytest.raises(InvariantViolation, match="Lemma 5"):
            check_lemma_5(run, run.num_rounds, procs)

    def test_lemma6_fabricated_edge(self):
        run, procs = self._honest()
        # fabricate an edge that was never timely at its label round
        stable = run.stable_skeleton()
        fake = None
        for u in range(run.n):
            for v in range(run.n):
                if u != v and not run.skeleton(1).has_edge(u, v):
                    fake = (u, v)
                    break
            if fake:
                break
        if fake is None:
            pytest.skip("skeleton too dense to fabricate")
        procs[0].approx.graph.set_edge(fake[0], fake[1], 1)
        procs[0].approx.graph.add_node(0)
        with pytest.raises(InvariantViolation, match="Lemma 6"):
            check_lemma_6(run, run.num_rounds, procs)

    def test_lemma6_label_out_of_range(self):
        run, procs = self._honest()
        procs[0].approx.graph.set_edge(1, 0, run.num_rounds + 5)
        with pytest.raises(InvariantViolation, match="Lemma 6"):
            check_lemma_6(run, run.num_rounds, procs)


class TestMonotonicityChecker:
    def test_passes_on_honest_run(self):
        adv = GroupedSourceAdversary(6, 2, seed=7, noise=0.2)
        procs = make_processes(6)
        checker = EstimateMonotonicityChecker()
        RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=40),
            invariant_hooks=[checker],
        ).run()

    def test_detects_increase(self):
        adv = GroupedSourceAdversary(5, 1, seed=0)
        procs = make_processes(5)
        checker = EstimateMonotonicityChecker()
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=3, stop_when_all_decided=False)
        ).run()
        checker(run, 3, procs)
        procs[0].estimate = 999  # doctor an increase
        with pytest.raises(InvariantViolation, match="Obs.2"):
            checker(run, 4, procs)

    def test_detects_decided_estimate_divergence(self):
        adv = GroupedSourceAdversary(5, 1, seed=0)
        procs = make_processes(5)
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=30)
        ).run()
        checker = EstimateMonotonicityChecker()
        procs[0].estimate = -1  # decided value is 0
        with pytest.raises(InvariantViolation, match="deviates"):
            checker(run, run.num_rounds, procs)


class TestHookFactory:
    def test_named_subset(self):
        hook = make_invariant_hook("observation1", "lemma6")
        adv = GroupedSourceAdversary(5, 2, seed=0)
        procs = make_processes(5)
        RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=20), invariant_hooks=[hook]
        ).run()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_invariant_hook("lemma99")

    def test_all_checks_registry(self):
        assert set(ALL_CHECKS) == {
            "observation1",
            "lemma3",
            "lemma5",
            "lemma6",
            "lemma7",
            "theorem8",
        }
