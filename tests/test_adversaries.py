"""Tests for all adversaries: interface contracts plus per-adversary
semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.base import RecordedAdversary, ReplayAdversary
from repro.adversaries.crash import CrashAdversary
from repro.adversaries.eventual import EventuallyGoodAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.mobile import MobileOmissionAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.adversaries.static import ScheduleAdversary, StaticAdversary
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random


ALL_ADVERSARIES = [
    lambda: StaticAdversary(4, DiGraph.complete(range(4))),
    lambda: ScheduleAdversary(
        4, [DiGraph.complete(range(4))], tail=DiGraph(nodes=range(4))
    ),
    lambda: GroupedSourceAdversary(6, num_groups=2, seed=1, noise=0.3),
    lambda: PartitionAdversary(6, 3),
    lambda: EventuallyGoodAdversary(
        GroupedSourceAdversary(5, num_groups=1), bad_rounds=3
    ),
    lambda: CrashAdversary(5, {1: 2}, seed=0),
    lambda: MobileOmissionAdversary(5, per_round_omissions=4, seed=0),
]


@pytest.mark.parametrize("factory", ALL_ADVERSARIES)
class TestContract:
    """Every adversary obeys the interface contract."""

    def test_nodes_exact(self, factory):
        adv = factory()
        for r in (1, 2, 5, 9):
            assert adv.graph(r).nodes() == frozenset(range(adv.n))

    def test_deterministic_per_round(self, factory):
        adv = factory()
        for r in (1, 3, 7):
            assert adv.graph(r) == adv.graph(r)

    def test_stable_edges_present_every_round(self, factory):
        adv = factory()
        stable = adv.declared_stable_graph()
        if stable is None:
            pytest.skip("no declaration")
        for r in range(1, 15):
            g = adv.graph(r)
            for u, v in stable.iter_edges():
                assert g.has_edge(u, v), f"round {r} lost stable edge {(u, v)}"

    def test_declaration_is_exact_over_long_prefix(self, factory):
        # Intersecting a long prefix must converge exactly to the declared
        # stable skeleton (the adversaries are built to make this true).
        adv = factory()
        stable = adv.declared_stable_graph()
        if stable is None:
            pytest.skip("no declaration")
        inter = adv.graph(1).copy()
        for r in range(2, 40):
            inter = inter.intersection(adv.graph(r))
        assert inter == stable


class TestStatic:
    def test_same_graph_every_round(self):
        g = DiGraph.complete(range(3))
        adv = StaticAdversary(3, g)
        assert adv.graph(1) == adv.graph(100)

    def test_self_loops_added(self):
        g = DiGraph(nodes=range(3))
        adv = StaticAdversary(3, g)
        assert all(adv.graph(1).has_edge(i, i) for i in range(3))

    def test_wrong_nodes_rejected(self):
        with pytest.raises(ValueError):
            StaticAdversary(3, DiGraph(nodes=range(4)))


class TestSchedule:
    def test_schedule_then_tail(self):
        g1 = DiGraph.complete(range(2))
        g2 = DiGraph(nodes=range(2))
        adv = ScheduleAdversary(2, [g1], tail=g2)
        assert adv.graph(1) == g1.with_self_loops()
        assert adv.graph(2) == g2.with_self_loops()
        assert adv.graph(50) == g2.with_self_loops()

    def test_tail_defaults_to_last(self):
        g1 = DiGraph.complete(range(2))
        adv = ScheduleAdversary(2, [g1])
        assert adv.graph(7) == g1

    def test_needs_something(self):
        with pytest.raises(ValueError):
            ScheduleAdversary(2, [])

    def test_round_one_indexed(self):
        adv = ScheduleAdversary(2, [DiGraph.complete(range(2))])
        with pytest.raises(ValueError):
            adv.graph(0)

    def test_stable_is_intersection(self):
        g1 = DiGraph(nodes=range(2), edges=[(0, 1)])
        g2 = DiGraph(nodes=range(2), edges=[(1, 0)])
        adv = ScheduleAdversary(2, [g1], tail=g2)
        stable = adv.declared_stable_graph()
        assert not stable.has_edge(0, 1)
        assert not stable.has_edge(1, 0)
        assert stable.has_edge(0, 0)  # self-loops survive


class TestGrouped:
    def test_partition_validation(self):
        with pytest.raises(ValueError):
            GroupedSourceAdversary(6, num_groups=2, groups=[[0, 1], [2, 3]])
        with pytest.raises(ValueError):
            GroupedSourceAdversary(4, num_groups=2, groups=[[0, 1, 2, 3]])
        with pytest.raises(ValueError):
            GroupedSourceAdversary(4, num_groups=0)
        with pytest.raises(ValueError):
            GroupedSourceAdversary(4, num_groups=2, topology="torus")
        with pytest.raises(ValueError):
            GroupedSourceAdversary(4, num_groups=2, noise=1.5)
        with pytest.raises(ValueError):
            GroupedSourceAdversary(4, num_groups=2, quiet_period=0)

    def test_sources_cover_groups(self):
        adv = GroupedSourceAdversary(9, num_groups=3)
        stable = adv.declared_stable_graph()
        for group, source in zip(adv.groups, adv.sources):
            for member in group:
                assert stable.has_edge(source, member)

    @pytest.mark.parametrize("topology", ["star", "cycle", "clique"])
    def test_root_component_count(self, topology):
        from repro.graphs.condensation import count_root_components

        adv = GroupedSourceAdversary(12, num_groups=3, topology=topology)
        # star: roots are the singleton sources; cycle/clique: whole groups.
        assert count_root_components(adv.declared_stable_graph()) == 3

    def test_quiet_rounds_are_noise_free(self):
        adv = GroupedSourceAdversary(
            8, num_groups=2, seed=3, noise=0.5, quiet_period=4
        )
        assert adv.graph(4) == adv.declared_stable_graph()
        assert adv.graph(8) == adv.declared_stable_graph()

    def test_noise_adds_edges(self):
        adv = GroupedSourceAdversary(8, num_groups=2, seed=3, noise=0.5)
        noisy = adv.graph(1)
        assert noisy.number_of_edges() > adv.declared_stable_graph().number_of_edges()

    def test_group_of(self):
        adv = GroupedSourceAdversary(6, num_groups=2)
        assert adv.group_of(0) == 0
        assert adv.group_of(5) == 1
        with pytest.raises(KeyError):
            adv.group_of(99)

    def test_two_source_witness(self):
        adv = GroupedSourceAdversary(6, num_groups=2)
        p, q, q2 = adv.two_source_for({0, 1, 5})
        stable = adv.declared_stable_graph()
        assert stable.has_edge(p, q) and stable.has_edge(p, q2)
        assert q != q2

    def test_two_source_witness_unavailable(self):
        adv = GroupedSourceAdversary(6, num_groups=2)
        with pytest.raises(ValueError):
            adv.two_source_for({0, 3})  # one per group

    def test_explicit_groups(self):
        adv = GroupedSourceAdversary(
            5, num_groups=2, groups=[[4, 0], [1, 2, 3]]
        )
        assert adv.sources == [4, 1]

    def test_extra_stable_edges(self):
        adv = GroupedSourceAdversary(
            6, num_groups=2, extra_stable_edges=[(0, 3)]
        )
        assert adv.declared_stable_graph().has_edge(0, 3)


class TestPartition:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            PartitionAdversary(4, 4)  # k < n required
        with pytest.raises(ValueError):
            PartitionAdversary(4, 0)
        with pytest.raises(ValueError):
            PartitionAdversary(4, 2, loners=[0], source=0)
        with pytest.raises(ValueError):
            PartitionAdversary(4, 3, loners=[1])  # wrong count

    def test_pt_structure(self):
        adv = PartitionAdversary(6, 3)
        stable = adv.declared_stable_graph()
        for p in adv.loners:
            assert stable.predecessors(p) == frozenset({p})
        for p in range(6):
            if p not in adv.loners:
                assert stable.predecessors(p) == frozenset({p, adv.source})

    def test_static_run(self):
        adv = PartitionAdversary(5, 2)
        assert adv.graph(1) == adv.graph(33)

    def test_forced_decisions(self):
        adv = PartitionAdversary(7, 4)
        assert adv.forced_decision_count() == 4
        assert len(adv.isolated_deciders()) == 4


class TestEventual:
    def test_bad_then_good(self):
        good = GroupedSourceAdversary(4, num_groups=1)
        adv = EventuallyGoodAdversary(good, bad_rounds=3)
        only_loops = adv.base_graph()
        assert adv.graph(1) == only_loops
        assert adv.graph(3) == only_loops
        assert adv.graph(4) == good.graph(4)
        assert adv.holds_from_round() == 4

    def test_zero_bad_rounds(self):
        good = GroupedSourceAdversary(4, num_groups=1)
        adv = EventuallyGoodAdversary(good, bad_rounds=0)
        assert adv.graph(1) == good.graph(1)
        assert adv.declared_stable_graph() == good.declared_stable_graph()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EventuallyGoodAdversary(GroupedSourceAdversary(3, 1), bad_rounds=-1)

    def test_stable_is_intersection(self):
        good = GroupedSourceAdversary(4, num_groups=1, topology="clique")
        adv = EventuallyGoodAdversary(good, bad_rounds=2)
        stable = adv.declared_stable_graph()
        # only the self-loops survive the isolated prefix
        assert stable.number_of_edges() == 4

    def test_custom_bad_graph(self):
        good = GroupedSourceAdversary(4, num_groups=1, topology="clique")
        bad = DiGraph(nodes=range(4), edges=[(0, 1)])
        adv = EventuallyGoodAdversary(good, bad_rounds=2, bad_graph=bad)
        assert adv.graph(1).has_edge(0, 1)
        assert adv.declared_stable_graph().has_edge(0, 1)


class TestCrash:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashAdversary(3, {5: 1})
        with pytest.raises(ValueError):
            CrashAdversary(3, {0: 0})
        with pytest.raises(ValueError):
            CrashAdversary(2, {0: 1, 1: 1})  # nobody survives

    def test_before_crash_full_delivery(self):
        adv = CrashAdversary(4, {2: 3}, seed=0)
        g = adv.graph(1)
        assert all(g.has_edge(2, v) for v in range(4))

    def test_after_crash_silent(self):
        adv = CrashAdversary(4, {2: 3}, seed=0)
        g = adv.graph(4)
        assert g.successors(2) == frozenset({2})  # only the self-loop

    def test_clean_crash_round(self):
        adv = CrashAdversary(4, {2: 3}, seed=0, clean=True)
        g = adv.graph(3)
        assert g.successors(2) == frozenset({2})

    def test_partial_delivery_deterministic(self):
        adv = CrashAdversary(6, {1: 2}, seed=9)
        assert adv.graph(2) == adv.graph(2)

    def test_stable_skeleton_is_survivor_complete(self):
        adv = CrashAdversary(4, {0: 1, 3: 5}, seed=0)
        stable = adv.declared_stable_graph()
        for u in (1, 2):
            assert all(stable.has_edge(u, v) for v in range(4))
        assert stable.successors(0) == frozenset({0})
        assert adv.f == 2
        assert adv.survivors == frozenset({1, 2})


class TestMobile:
    def test_validation(self):
        with pytest.raises(ValueError):
            MobileOmissionAdversary(3, -1)
        with pytest.raises(ValueError):
            MobileOmissionAdversary(3, 1, sweep_period=0)

    def test_core_protected(self):
        core = DiGraph(nodes=range(5), edges=[(0, 1), (0, 2)])
        adv = MobileOmissionAdversary(5, per_round_omissions=20, core=core, seed=1)
        for r in range(1, 20):
            g = adv.graph(r)
            assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_omission_budget_respected(self):
        adv = MobileOmissionAdversary(6, per_round_omissions=3, seed=2)
        full = 36  # complete graph with self-loops
        for r in (1, 2, 3, 5, 6):
            missing = full - adv.graph(r).number_of_edges()
            if r % adv.sweep_period == 0:
                continue
            assert missing <= 3

    def test_sweep_round_is_core_only(self):
        adv = MobileOmissionAdversary(5, per_round_omissions=2, seed=0,
                                      sweep_period=4)
        assert adv.graph(4) == adv.declared_stable_graph()


class TestRecordedAndReplay:
    def test_recorded_caches(self):
        inner = GroupedSourceAdversary(5, num_groups=2, seed=0, noise=0.4)
        rec = RecordedAdversary(inner)
        g1 = rec.graph(3)
        assert rec.graph(3) is g1
        assert rec.recorded_rounds() == [3]
        assert rec.declared_stable_graph() == inner.declared_stable_graph()

    def test_replay_repeats_tail(self):
        g1 = DiGraph.complete(range(2))
        g2 = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1)])
        adv = ReplayAdversary(2, [g1, g2])
        assert adv.graph(1) == g1
        assert adv.graph(2) == g2
        assert adv.graph(9) == g2

    def test_replay_stable_inferred(self):
        g1 = DiGraph.complete(range(2))
        g2 = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1)])
        adv = ReplayAdversary(2, [g1, g2])
        assert adv.declared_stable_graph() == g2

    def test_replay_needs_graphs(self):
        with pytest.raises(ValueError):
            ReplayAdversary(2, [])
