"""The registered differential fuzz family: deterministic grids, clean
seeded budgets, and shrinking repros for intentionally-broken kernels."""

import json
from dataclasses import replace

import pytest

import repro.experiments.fuzz as fuzz_module
from repro.engine.registry import get_family, run_family
from repro.engine.scenarios import ScenarioSpec
from repro.experiments.fuzz import (
    _base_spec,
    _case_dict,
    _shrink,
    run_fuzz_case,
)


def test_grid_is_deterministic_and_salted():
    family = get_family("fuzz")
    a = family.grid({"seeds": 8})
    b = family.grid({"seeds": 8})
    assert a == b
    assert [s.scenario_id for s in a] == [s.scenario_id for s in b]
    salted = family.grid({"seeds": 8, "salt": 1})
    assert a != salted
    # Cases are prefixes: a bigger budget extends, never reshuffles.
    assert family.grid({"seeds": 4}) == a[:4]


def test_grid_cases_are_tagged_and_varied():
    family = get_family("fuzz")
    grid = family.grid({"seeds": 30})
    assert all(s.opt("family") == "fuzz" for s in grid)
    assert [s.opt("case") for s in grid] == list(range(30))
    # The draw actually explores the scenario space.
    assert len({s.adversary for s in grid}) >= 3
    assert len({s.n for s in grid}) >= 3


def test_base_spec_strips_fuzz_bookkeeping():
    family = get_family("fuzz")
    spec = family.grid({"seeds": 1})[0]
    base = _base_spec(spec)
    assert base.opt("family") is None
    assert base.opt("case") is None
    assert base.opt("siblings") is None
    assert base.n == spec.n and base.seed == spec.seed


def test_seeded_budget_runs_clean():
    results = run_family("fuzz", {"seeds": 6})
    assert len(results) == 6
    assert all(r.ok for r in results)
    assert all(r.extra("engines") >= 2 for r in results)
    family = get_family("fuzz")
    text, code = family.render(results)
    assert code == 0
    assert "6 differential cases" in text
    assert "0 diverge" in text


def test_forced_fast_backend_rejected():
    family = get_family("fuzz")
    assert not family.supports_backend("vectorized")
    assert not family.supports_backend("batched")
    assert family.supports_backend("reference")


def test_broken_kernel_caught_and_shrunk(monkeypatch):
    """An intentionally-broken batch path must be flagged as a
    differential mismatch and shrunk to a minimal printed repro."""
    real = fuzz_module.execute_scenario_batch

    def broken(specs, width=None, compact=True, recorder=None):
        results = real(specs, width=width, compact=compact,
                       recorder=recorder)
        # Corrupt the first lane's round count: a subtle off-by-one of
        # the kind a real kernel bug would produce.
        first = results[0]
        if first.ok:
            results[0] = replace(first, num_rounds=first.num_rounds + 1)
        return results

    monkeypatch.setattr(fuzz_module, "execute_scenario_batch", broken)
    spec = get_family("fuzz").grid({"seeds": 1})[0]
    result = run_fuzz_case(spec)
    assert result.status == "error"
    assert "differential mismatch" in result.error
    assert "batched" in result.error
    # The minimal repro is machine-readable JSON...
    payload = result.error.split("minimal repro: ", 1)[1]
    minimal = json.loads(payload)
    # ...still failing...
    assert fuzz_module._case_fails(minimal)
    # ...and actually minimized: the kernel is broken for every case,
    # so the shrinker must reach the floor of each greedy pass.
    assert minimal["siblings"] == 0
    assert minimal["width"] is None
    assert minimal["compact"] is True
    assert minimal["noise"] in (0, 0.3)
    assert minimal["n"] <= spec.n


def test_shrink_respects_evaluation_budget(monkeypatch):
    calls = {"n": 0}

    def always_fails(case):
        calls["n"] += 1
        return True

    monkeypatch.setattr(fuzz_module, "_case_fails", always_fails)
    spec = get_family("fuzz").grid({"seeds": 1})[0]
    case = _case_dict(_base_spec(spec), 2, 3, False)
    _shrink(case)
    assert calls["n"] <= fuzz_module._SHRINK_BUDGET


def test_healthy_shrinker_finds_nothing():
    # On a healthy engine no case fails, so _case_fails is False and a
    # hypothetical shrink would be a no-op (guards the polarity).
    spec = get_family("fuzz").grid({"seeds": 1})[0]
    case = _case_dict(_base_spec(spec), 0, None, True)
    assert not fuzz_module._case_fails(case)


def test_fuzz_campaign_via_cli(tmp_path, capsys):
    from repro.cli import main

    store = tmp_path / "fuzz.jsonl"
    code = main(
        ["campaign", "run", "--family", "fuzz", "--seeds", "3",
         "--store", str(store), "--no-progress", "--contracts"]
    )
    try:
        assert code == 0
        assert store.exists()
        out = capsys.readouterr().out
        assert "state: ok" in out
    finally:
        from repro.engine import contracts

        contracts.deactivate()


def test_fuzz_subcommand_renders_verdict(capsys):
    from repro.cli import main

    code = main(["fuzz", "--seeds", "2", "--no-progress"])
    assert code == 0
    out = capsys.readouterr().out
    assert "FUZZ: 2 differential cases" in out
    assert "all engines byte-identical" in out
