"""Scenario grid DSL: content-hash ids, canonical expansion, registries."""

from __future__ import annotations

import pytest

from repro.adversaries.crash import CrashAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.baselines.floodmin import FloodMinProcess
from repro.core.algorithm import SkeletonAgreementProcess
from repro.engine.scenarios import (
    ScenarioGrid,
    ScenarioSpec,
    agreement_grid,
    expand_grids,
    termination_grid,
)


class TestScenarioSpec:
    def test_id_is_stable_and_content_addressed(self):
        a = ScenarioSpec(n=6, k=2, seed=3, noise=0.1)
        b = ScenarioSpec(n=6, k=2, seed=3, noise=0.1)
        assert a == b
        assert a.scenario_id == b.scenario_id
        assert len(a.scenario_id) == 12
        assert a.scenario_id != ScenarioSpec(n=6, k=2, seed=4).scenario_id

    def test_id_canonical_for_numerically_equal_values(self):
        # noise=0 and noise=0.0 compare equal, so they must be the same
        # scenario (resume would otherwise re-execute stored work when a
        # campaign is driven from the CLI, where argparse yields floats).
        assert (
            ScenarioSpec(n=5, noise=0).scenario_id
            == ScenarioSpec(n=5, noise=0.0).scenario_id
        )
        assert (
            ScenarioSpec(n=5, options=(("f", 2),)).scenario_id
            == ScenarioSpec(n=5, options=(("f", 2.0),)).scenario_id
        )
        assert (
            ScenarioSpec(n=5, noise=0.5).scenario_id
            != ScenarioSpec(n=5, noise=0).scenario_id
        )

    def test_id_independent_of_option_order(self):
        a = ScenarioSpec(n=6, options=(("f", 2), ("horizon", 3)))
        b = ScenarioSpec(n=6, options=(("horizon", 3), ("f", 2)))
        assert a == b
        assert a.scenario_id == b.scenario_id

    def test_roundtrip_dict(self):
        spec = ScenarioSpec(
            n=8, k=3, num_groups=2, seed=5, noise=0.25, topology="star",
            algorithm="floodmin", adversary="crash", max_rounds=40,
            options=(("f", 3),),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        # Extra keys (e.g. the store's "id") are ignored.
        data = spec.to_dict()
        data["id"] = "whatever"
        assert ScenarioSpec.from_dict(data) == spec

    def test_opt_and_with_options(self):
        spec = ScenarioSpec(n=6).with_options(f=2)
        assert spec.opt("f") == 2
        assert spec.opt("absent", "dflt") == "dflt"
        assert spec.with_options(f=9).opt("f") == 9

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            ScenarioSpec(n=6, algorithm="nope")
        with pytest.raises(ValueError, match="unknown adversary"):
            ScenarioSpec(n=6, adversary="nope")

    def test_resolved_max_rounds(self):
        assert ScenarioSpec(n=10).resolved_max_rounds() == 80  # 6n+20
        assert ScenarioSpec(n=10, max_rounds=7).resolved_max_rounds() == 7
        assert (
            ScenarioSpec(n=10, algorithm="floodmin").resolved_max_rounds()
            == 80
        )

    def test_builders_dispatch(self):
        grouped = ScenarioSpec(n=6, num_groups=2, topology="star")
        adv = grouped.build_adversary()
        assert isinstance(adv, GroupedSourceAdversary)
        assert adv.topology == "star" and adv.num_groups == 2

        crash = ScenarioSpec(n=6, adversary="crash").with_options(f=2)
        adv = crash.build_adversary()
        assert isinstance(adv, CrashAdversary) and adv.f == 2

        part = ScenarioSpec(n=6, k=2, adversary="partition").with_options(
            k_env=3
        )
        adv = part.build_adversary()
        assert isinstance(adv, PartitionAdversary) and adv.k == 3

        procs = ScenarioSpec(n=5).build_processes()
        assert len(procs) == 5
        assert all(isinstance(p, SkeletonAgreementProcess) for p in procs)
        procs = ScenarioSpec(n=5, k=2, algorithm="floodmin").with_options(
            f=2
        ).build_processes()
        assert all(isinstance(p, FloodMinProcess) for p in procs)


class TestScenarioGrid:
    def test_scalars_and_sequences(self):
        grid = ScenarioGrid(n=6, seed=range(3), noise=0.1)
        specs = grid.expand()
        assert len(specs) == 3
        assert [s.seed for s in specs] == [0, 1, 2]
        assert all(s.n == 6 and s.noise == 0.1 for s in specs)

    def test_expansion_order_is_canonical(self):
        # Axis declaration order must not matter — only field order does.
        a = ScenarioGrid(seed=range(2), n=[5, 6]).expand()
        b = ScenarioGrid(n=[5, 6], seed=range(2)).expand()
        assert a == b
        assert [(s.n, s.seed) for s in a] == [(5, 0), (5, 1), (6, 0), (6, 1)]

    def test_generator_axes_are_materialized(self):
        specs = ScenarioGrid(n=[5], seed=(s for s in range(3))).expand()
        assert [s.seed for s in specs] == [0, 1, 2]

    def test_unknown_axes_become_options(self):
        specs = ScenarioGrid(n=6, f=[1, 2], algorithm="floodmin").expand()
        assert [s.opt("f") for s in specs] == [1, 2]

    def test_where_constraints_prune(self):
        grid = ScenarioGrid(
            n=[4, 6], k=[2, 5], where=[lambda s: s["k"] < s["n"]]
        )
        assert [(s.n, s.k) for s in grid.expand()] == [(4, 2), (6, 2), (6, 5)]

    def test_requires_n_axis(self):
        with pytest.raises(ValueError, match="'n' axis"):
            ScenarioGrid(k=[2]).expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ScenarioGrid(n=[])

    def test_len_and_json_roundtrip(self):
        grid = ScenarioGrid(n=[5, 6], seed=range(2))
        assert len(grid) == 4
        again = ScenarioGrid.from_json('{"axes": {"n": [5, 6], "seed": [0, 1]}}')
        assert again.expand() == grid.expand()

    def test_expand_grids_dedupes_preserving_order(self):
        g1 = ScenarioGrid(n=[5, 6])
        g2 = ScenarioGrid(n=[6, 7])
        specs = expand_grids([g1, g2])
        assert [s.n for s in specs] == [5, 6, 7]


class TestCanonicalGrids:
    def test_agreement_grid_matches_historical_nesting(self):
        specs = agreement_grid(
            ns=[6, 8], ks=[2, 3], seeds=[0, 1], noises=(0.15,)
        ).expand()
        expected = [
            (n, k, m, seed)
            for n in [6, 8]
            for k in [2, 3]
            if k < n
            for m in range(1, k + 1)
            for seed in [0, 1]
        ]
        assert [(s.n, s.k, s.num_groups, s.seed) for s in specs] == expected

    def test_termination_grid_shape(self):
        specs = termination_grid(ns=[4, 8], seeds=[0, 1, 2])
        assert len(specs) == 6
        assert all(s.k == s.num_groups == 2 for s in specs)

    def test_termination_grid_clamps_small_n(self):
        # The historical sweep clamps m to n (never drops the scenario).
        specs = termination_grid(ns=[1, 4], seeds=[0], num_groups=2)
        assert [(s.n, s.k, s.num_groups) for s in specs] == [
            (1, 1, 1),
            (4, 2, 2),
        ]
