"""Tests for Psrc / Psrcs(k): unit cases, naive-vs-conflict cross-
validation, and hypothesis property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.predicates.psrcs import (
    Psrc,
    Psrcs,
    conflict_graph,
    timely_neighborhoods,
    two_sources_of,
)


def skeleton_from_pt(pt: dict[int, set[int]]) -> DiGraph:
    """Build a stable skeleton whose in-neighborhoods are the given PT
    sets."""
    g = DiGraph(nodes=sorted(pt))
    for q, sources in pt.items():
        for p in sources:
            g.add_edge(p, q)
    return g


class TestConflictGraph:
    def test_self_loop_only_pt_gives_no_conflicts(self):
        # PT(q) = {q} for all q: no shared sources.
        g = skeleton_from_pt({0: {0}, 1: {1}, 2: {2}})
        adj = conflict_graph(g)
        assert all(not vs for vs in adj.values())

    def test_shared_source_conflict(self):
        g = skeleton_from_pt({0: {0, 9}, 1: {1, 9}, 2: {2}, 9: {9}})
        adj = conflict_graph(g)
        assert 1 in adj[0] and 0 in adj[1]
        assert not adj[2]

    def test_figure1_conflicts(self, figure1_stable):
        adj = conflict_graph(figure1_stable)
        # p1~p2 share each other; p4 (id 3) and p6 (id 5) share nothing.
        assert 1 in adj[0]
        assert 5 not in adj[3]

    def test_timely_neighborhoods(self, figure1_stable):
        pt = timely_neighborhoods(figure1_stable)
        assert pt[5] == frozenset({5, 1, 4})  # p6 hears p2, p5, itself


class TestPsrc:
    def test_needs_two(self):
        with pytest.raises(ValueError):
            Psrc(0, {1})

    def test_holds_with_witness(self):
        g = skeleton_from_pt({0: {0, 9}, 1: {1, 9}, 9: {9}})
        result = Psrc(9, {0, 1}).check_skeleton(g)
        assert result.holds
        assert result.witness == (9, 0, 1)

    def test_fails_single_receiver(self):
        g = skeleton_from_pt({0: {0, 9}, 1: {1}, 9: {9}})
        assert not Psrc(9, {0, 1}).check_skeleton(g).holds

    def test_source_may_be_receiver(self):
        # The paper: p is not required to be distinct from q, q'.
        g = skeleton_from_pt({0: {0}, 1: {0, 1}})
        assert Psrc(0, {0, 1}).check_skeleton(g).holds


class TestPsrcs:
    def test_k_validated(self):
        with pytest.raises(ValueError):
            Psrcs(0)
        with pytest.raises(ValueError):
            Psrcs(2, method="bogus")

    def test_vacuous_when_n_le_k(self):
        g = skeleton_from_pt({0: {0}, 1: {1}})
        assert Psrcs(2).check_skeleton(g).holds
        assert Psrcs(5).check_skeleton(g).holds

    def test_all_isolated_fails(self):
        g = skeleton_from_pt({i: {i} for i in range(5)})
        for k in range(1, 5):
            result = Psrcs(k).check_skeleton(g)
            assert not result.holds
            assert len(result.witness) == k + 1

    def test_single_source_star_satisfies_all_k(self):
        n = 6
        pt = {q: {q, 0} for q in range(n)}
        g = skeleton_from_pt(pt)
        for k in range(1, n):
            assert Psrcs(k).check_skeleton(g).holds

    def test_figure1_satisfies_psrcs3(self, figure1_stable):
        # The Figure 1 caption's claim.
        assert Psrcs(3).check_skeleton(figure1_stable).holds

    def test_figure1_tightest_k(self, figure1_stable):
        # Our concrete instance is even a bit stronger (alpha = 2).
        assert Psrcs(1).tightest_k(figure1_stable) == 2
        assert not Psrcs(1).check_skeleton(figure1_stable).holds
        assert Psrcs(2).check_skeleton(figure1_stable).holds

    def test_violation_witness_is_sourceless(self):
        g = skeleton_from_pt({i: {i} for i in range(4)})
        result = Psrcs(2).check_skeleton(g)
        assert not result.holds
        assert two_sources_of(g, result.witness) == []

    def test_monotone_in_k(self):
        rng = np.random.default_rng(3)
        for seed in range(5):
            g = gnp_random(8, 0.25, np.random.default_rng(seed), self_loops=True)
            held = False
            for k in range(1, 8):
                now = Psrcs(k).check_skeleton(g).holds
                if held:
                    assert now  # once it holds it holds for larger k
                held = held or now

    def test_grouped_adversary_guarantee(self):
        # The pigeonhole construction satisfies Psrcs(m) by design.
        for n, m, topology in [(9, 3, "cycle"), (8, 2, "star"), (10, 4, "clique")]:
            adv = GroupedSourceAdversary(n, num_groups=m, topology=topology)
            stable = adv.declared_stable_graph()
            assert Psrcs(m).check_skeleton(stable).holds

    def test_partition_adversary_boundary(self):
        # Theorem 2's construction: Psrcs(k) holds, Psrcs(k-1) fails.
        for n, k in [(6, 3), (8, 4), (5, 2)]:
            adv = PartitionAdversary(n, k)
            stable = adv.declared_stable_graph()
            assert Psrcs(k).check_skeleton(stable).holds
            assert not Psrcs(k - 1).check_skeleton(stable).holds

    @pytest.mark.parametrize("seed", range(12))
    def test_naive_matches_conflict(self, seed):
        rng = np.random.default_rng(seed)
        g = gnp_random(8, 0.2, rng, self_loops=True)
        for k in range(1, 6):
            naive = Psrcs(k, method="naive").check_skeleton(g).holds
            fast = Psrcs(k, method="conflict").check_skeleton(g).holds
            assert naive == fast, f"k={k} seed={seed}"

    def test_two_sources_certificates(self, figure1_stable):
        certs = two_sources_of(figure1_stable, {0, 1, 5})
        # p2 (id 1) is a 2-source of itself/p1 and of p6.
        assert any(c[0] == 1 for c in certs)
        for p, q, q2 in certs:
            pt = timely_neighborhoods(figure1_stable)
            assert p in pt[q] and p in pt[q2]

    def test_check_adversary(self):
        adv = GroupedSourceAdversary(6, num_groups=2)
        assert Psrcs(2).check_adversary(adv).holds

    def test_check_adversary_requires_declaration(self):
        class NoDecl:
            n = 3

            def declared_stable_graph(self):
                return None

        with pytest.raises(ValueError):
            Psrcs(1).check_adversary(NoDecl())


@st.composite
def stable_skeletons(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    g = DiGraph(nodes=range(n))
    for q in range(n):
        g.add_edge(q, q)  # self-delivery
        extra = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), max_size=3)
        )
        for p in extra:
            g.add_edge(p, q)
    return g


class TestPsrcsProperties:
    @given(stable_skeletons(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_naive_equals_conflict(self, g, k):
        naive = Psrcs(k, method="naive").check_skeleton(g).holds
        fast = Psrcs(k).check_skeleton(g).holds
        assert naive == fast

    @given(stable_skeletons())
    @settings(max_examples=60, deadline=None)
    def test_tightest_k_is_boundary(self, g):
        pred = Psrcs(1)
        k_star = pred.tightest_k(g)
        assert Psrcs(k_star).check_skeleton(g).holds
        if k_star > 1:
            assert not Psrcs(k_star - 1).check_skeleton(g).holds

    @given(stable_skeletons(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_violation_witness_valid(self, g, k):
        result = Psrcs(k).check_skeleton(g)
        if not result.holds:
            assert len(result.witness) == k + 1
            assert two_sources_of(g, result.witness) == []


class TestMatrixChecker:
    """check_skeleton_matrix (the vectorized backend's entry point) must
    agree with the set-based checker on the same skeleton."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_set_checker_on_random_skeletons(self, seed, k):
        from repro.graphs.generators import to_adjacency

        rng = np.random.default_rng(seed)
        g = gnp_random(9, 0.25, rng)
        matrix = to_adjacency(g, 9)
        assert (
            Psrcs(k).check_skeleton_matrix(matrix).holds
            == Psrcs(k).check_skeleton(g).holds
        )

    def test_matches_on_grouped_adversary(self):
        for m, k in ((1, 1), (2, 2), (3, 3), (3, 2)):
            adv = GroupedSourceAdversary(9, num_groups=m, seed=0)
            want = Psrcs(k).check_skeleton(adv.declared_stable_graph()).holds
            got = Psrcs(k).check_skeleton_matrix(
                adv.declared_stable_matrix()
            ).holds
            assert got == want == (m <= k)

    def test_vacuous_when_n_at_most_k(self):
        matrix = np.zeros((3, 3), dtype=bool)
        assert Psrcs(3).check_skeleton_matrix(matrix).holds
        assert Psrcs(5).check_skeleton_matrix(matrix).holds
