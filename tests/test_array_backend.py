"""Unit tests for :mod:`repro.rounds.array_backend`.

The namespace layer is what lets the batched kernel run unchanged on
NumPy, CuPy or torch: these tests pin the resolution rules (aliases,
the ``REPRO_DEVICE`` environment variable, eager validation at the CLI
boundary), the strict test namespace's allowlist, and the install-hint
errors for absent optional libraries — all without requiring any GPU
library to be present.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rounds.array_backend import (
    DEVICE_ENV,
    KernelNamespace,
    activate_device,
    resolve_namespace,
)


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(DEVICE_ENV, raising=False)
        ns = resolve_namespace()
        assert isinstance(ns, KernelNamespace)
        assert ns.name == "numpy"
        assert ns.is_numpy

    @pytest.mark.parametrize("alias", ["numpy", "np", "cpu", ""])
    def test_numpy_aliases(self, alias):
        assert resolve_namespace(alias).name == "numpy"

    def test_env_var_selects_the_namespace(self, monkeypatch):
        monkeypatch.setenv(DEVICE_ENV, "strict")
        assert resolve_namespace().name == "strict"

    def test_explicit_argument_beats_the_env(self, monkeypatch):
        monkeypatch.setenv(DEVICE_ENV, "strict")
        assert resolve_namespace("numpy").name == "numpy"

    def test_unknown_device_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown device"):
            resolve_namespace("tpu")

    def test_passthrough_of_a_resolved_namespace(self):
        ns = resolve_namespace("strict")
        assert resolve_namespace(ns) is ns

    @pytest.mark.parametrize("device", ["cupy", "torch"])
    def test_missing_optional_library_hints_install(self, device):
        pytest.importorskip  # the container has neither library
        for absent in (device,):
            try:
                __import__(absent)
            except ImportError:
                with pytest.raises(RuntimeError, match="install"):
                    resolve_namespace(device)
                return
        pytest.skip(f"{device} is installed here")


class TestActivateDevice:
    def test_sets_and_clears_the_env(self, monkeypatch):
        monkeypatch.delenv(DEVICE_ENV, raising=False)
        import os

        activate_device("strict")
        assert os.environ[DEVICE_ENV] == "strict"
        assert resolve_namespace().name == "strict"
        # None defers to the env (pool workers re-resolve through it) …
        assert activate_device(None).name == "strict"
        # … while an explicit numpy/cpu choice clears it back to default.
        activate_device("cpu")
        assert DEVICE_ENV not in os.environ
        assert resolve_namespace().name == "numpy"

    def test_validates_eagerly(self, monkeypatch):
        monkeypatch.delenv(DEVICE_ENV, raising=False)
        import os

        with pytest.raises(ValueError):
            activate_device("not-a-device")
        # A failed activation must not leave a poisoned env behind.
        assert os.environ.get(DEVICE_ENV) in (None, "")


class TestStrictNamespace:
    def test_standard_names_resolve(self):
        xp = resolve_namespace("strict").xp
        for name in ("concat", "permute_dims", "astype", "take_along_axis",
                     "nonzero", "argmax", "where", "matmul", "bool", "int64"):
            assert getattr(xp, name) is getattr(np, name)

    def test_nonstandard_names_are_rejected(self):
        xp = resolve_namespace("strict").xp
        for name in ("concatenate", "amax", "copyto", "packbits"):
            with pytest.raises(AttributeError, match="Array-API"):
                getattr(xp, name)

    def test_host_seams_are_noops_on_cpu(self):
        ns = resolve_namespace("strict")
        a = np.arange(6).reshape(2, 3)
        assert ns.from_host(a) is a
        assert ns.to_host(a) is a


class TestExtensionOps:
    """The three fused ops every namespace must provide, checked against
    the straightforward NumPy formulation."""

    def _pt_labels(self, rng, S=3, n=5):
        pt = rng.random((S, n, n)) < 0.4
        labels = rng.integers(0, 7, size=(S, n, n, n)).astype(np.int32)
        return pt, labels

    @pytest.mark.parametrize("device", ["numpy", "strict"])
    def test_masked_sender_max(self, device):
        ns = resolve_namespace(device)
        rng = np.random.default_rng(7)
        pt, labels = self._pt_labels(rng)
        S, n = pt.shape[0], pt.shape[1]
        expected = np.zeros((S, n, n, n), dtype=np.int32)
        for s in range(S):
            for p in range(n):
                for q in range(n):
                    if pt[s, p, q]:
                        expected[s, p] = np.maximum(
                            expected[s, p], labels[s, q]
                        )
        out = ns.masked_sender_max(
            labels, pt, np.zeros_like(expected)
        )
        assert np.array_equal(np.asarray(out), expected)

    @pytest.mark.parametrize("device", ["numpy", "strict"])
    def test_bool_matmul(self, device):
        ns = resolve_namespace(device)
        rng = np.random.default_rng(11)
        a = rng.random((4, 6, 6)) < 0.3
        b = rng.random((4, 6, 6)) < 0.3
        assert np.array_equal(
            np.asarray(ns.bool_matmul(a, b)), np.matmul(a, b)
        )

    @pytest.mark.parametrize("device", ["numpy", "strict"])
    def test_batched_closure(self, device):
        from repro.graphs.matrices import batched_transitive_closure

        ns = resolve_namespace(device)
        rng = np.random.default_rng(13)
        stack = rng.random((5, 7, 7)) < 0.25
        expected = batched_transitive_closure(
            stack, reflexive=True, fixed_iterations=True
        )
        assert np.array_equal(
            np.asarray(ns.batched_closure(stack)), expected
        )


def test_cli_rejects_unknown_device(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "campaign", "run", "--store", str(tmp_path / "j.jsonl"),
            "--device", "not-a-device", "--no-progress",
            "-n", "5", "-k", "2", "--seeds", "1", "--noise", "0.1",
        ]
    )
    assert code == 2
    assert "device" in capsys.readouterr().out


def test_cli_missing_library_is_a_clean_exit(tmp_path, capsys):
    """A known device whose library is absent must produce the install
    hint and exit 2 — not a traceback (DeviceUnavailableError is caught
    at the same CLI boundary as unknown devices)."""
    pytest.importorskip  # the container ships without cupy
    try:
        import cupy  # noqa: F401
    except ImportError:
        pass
    else:
        pytest.skip("cupy is installed here")
    from repro.cli import main

    code = main(
        [
            "campaign", "run", "--store", str(tmp_path / "j.jsonl"),
            "--device", "cupy", "--no-progress",
            "-n", "5", "-k", "2", "--seeds", "1", "--noise", "0.1",
        ]
    )
    assert code == 2
    assert "install" in capsys.readouterr().out


def test_cli_device_strict_runs_green(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv(DEVICE_ENV, raising=False)
    store = tmp_path / "j.jsonl"
    code = main(
        [
            "campaign", "run", "--store", str(store),
            "--device", "strict", "--backend", "batched",
            "--pack-widths", "--no-progress",
            "-n", "5", "6", "-k", "2", "--seeds", "2", "--noise", "0.1",
        ]
    )
    assert code == 0
    assert "state: ok" in capsys.readouterr().out
    monkeypatch.delenv(DEVICE_ENV, raising=False)
