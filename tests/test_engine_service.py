"""End-to-end tests for the campaign service daemon.

The daemon's whole value proposition is that it changes *where*
campaigns run without changing *what* they produce: journal and
canonical-summary bytes of a served campaign must be identical to a
one-shot serial ``campaign run`` of the same grid — including when two
campaigns share the daemon's pool concurrently, when an injected fault
kills a pool worker mid-campaign, and across a SIGTERM interrupt plus
resubmit (resume-by-hash).  Every test boots a real ``campaign serve``
subprocess through :mod:`daemon_harness` and talks to it over HTTP,
exactly like a user.

All tests carry the ``daemon`` marker: ``tests/conftest.py`` arms a
per-test SIGALRM timeout so a hung daemon fails fast.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from daemon_harness import daemon, repro_env
from test_batched_equivalence import HETERO_GRID

from repro.engine.campaign import Campaign
from repro.engine.faults import FaultPlan
from repro.engine.scenarios import ScenarioGrid
from repro.engine.store import ResultStore

pytestmark = pytest.mark.daemon

GRID_B_AXES = {"axes": {"n": [6, 8], "k": [2], "seed": [0, 1, 2],
                        "noise": [0.0, 0.4]}}


def _solo_run(tmp_path: Path, name: str, scenarios, backend: str):
    """A one-shot in-process serial run: the byte-equality reference."""
    store = tmp_path / f"{name}.jsonl"
    campaign = Campaign(scenarios, store=str(store), backend=backend)
    report = campaign.run(jobs=1)
    summary = tmp_path / f"{name}.summary"
    campaign.write_summary(summary)
    return store, summary, report


def _journal_lines(path: Path) -> list[str]:
    """Journal records, order-normalized: completion order is execution
    shape, record bytes are the contract (the repo-wide idiom)."""
    return sorted(path.read_text(encoding="utf-8").splitlines())


def _submit_specs(client, specs, store: Path, backend: str, **extra) -> dict:
    payload = {
        "specs": [spec.to_dict() for spec in specs],
        "store": str(store),
        "backend": backend,
        **extra,
    }
    return client.submit(payload)


class TestServedEquivalence:
    def test_served_campaign_matches_serial_run_bytes(self, tmp_path):
        """The core acceptance test: HETERO grid via the API == one-shot
        serial run, journal and canonical summary, byte for byte."""
        solo_store, solo_summary, solo_report = _solo_run(
            tmp_path, "solo", HETERO_GRID, "batched"
        )
        with daemon(tmp_path, jobs=2, slots=2) as d:
            health = d.client.health()
            assert health["ok"] and health["pool_workers"] == 2
            served_store = tmp_path / "served.jsonl"
            job = _submit_specs(
                d.client, HETERO_GRID, served_store, "batched"
            )
            final = d.client.wait(job["id"], timeout=120)
            assert final["state"] == "done", final
            assert final["report"]["executed"] == len(HETERO_GRID)
            assert final["status"]["state"] == "ok"
            served_summary = d.client.results_text(job["id"])
            metrics = d.client.metrics()
            assert job["id"] in metrics["campaigns"]
            assert (
                "deterministic"
                in metrics["campaigns"][job["id"]]["metrics"]
            )
        assert _journal_lines(served_store) == _journal_lines(solo_store)
        assert served_summary == solo_summary.read_text(encoding="utf-8")
        # The daemon also flushed a per-campaign telemetry sidecar.
        sidecar = Path(str(served_store) + ".metrics.json")
        assert json.loads(sidecar.read_text())["label"] == "grid"

    def test_concurrent_campaigns_match_their_solo_bytes(self, tmp_path):
        """Two campaigns submitted from two threads share the pool yet
        each journals exactly its solo-run bytes — per-campaign stores
        are fully isolated, only executor capacity is shared."""
        grid_b = ScenarioGrid.from_dict(GRID_B_AXES)
        solo_a_store, solo_a_summary, _ = _solo_run(
            tmp_path, "solo_a", HETERO_GRID, "batched"
        )
        solo_b_store, solo_b_summary, _ = _solo_run(
            tmp_path, "solo_b", grid_b, "batched"
        )
        store_a = tmp_path / "served_a.jsonl"
        store_b = tmp_path / "served_b.jsonl"
        with daemon(tmp_path, jobs=2, slots=2) as d:
            submitted: dict[str, dict] = {}
            errors: list[BaseException] = []

            def submit_a() -> None:
                try:
                    submitted["a"] = _submit_specs(
                        d.client, HETERO_GRID, store_a, "batched"
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            def submit_b() -> None:
                try:
                    submitted["b"] = d.client.submit({
                        "grid": GRID_B_AXES,
                        "store": str(store_b),
                        "backend": "batched",
                    })
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit_a),
                threading.Thread(target=submit_b),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            final_a = d.client.wait(submitted["a"]["id"], timeout=120)
            final_b = d.client.wait(submitted["b"]["id"], timeout=120)
            assert final_a["state"] == "done", final_a
            assert final_b["state"] == "done", final_b
            summary_a = d.client.results_text(submitted["a"]["id"])
            summary_b = d.client.results_text(submitted["b"]["id"])
        assert _journal_lines(store_a) == _journal_lines(solo_a_store)
        assert _journal_lines(store_b) == _journal_lines(solo_b_store)
        assert summary_a == solo_a_summary.read_text(encoding="utf-8")
        assert summary_b == solo_b_summary.read_text(encoding="utf-8")

    def test_submission_validation(self, tmp_path):
        from repro.engine.service import ServiceError

        with daemon(tmp_path) as d:
            with pytest.raises(ServiceError) as excinfo:
                d.client.submit({"store": str(tmp_path / "x.jsonl")})
            assert excinfo.value.code == 400
            with pytest.raises(ServiceError) as excinfo:
                d.client.submit({
                    "family": "no-such-family",
                    "store": str(tmp_path / "x.jsonl"),
                })
            assert excinfo.value.code == 400
            with pytest.raises(ServiceError) as excinfo:
                d.client.job("c9999")
            assert excinfo.value.code == 404


class TestServedRobustness:
    def test_worker_kill_reconverges_to_fault_free_bytes(self, tmp_path):
        """A seeded worker kill during a served campaign: the bounded-
        retry path (singleton splits + generation-aware pool rebuild)
        reconverges to the fault-free journal bytes."""
        specs = [s for s in HETERO_GRID if s.noise in (0.0, 0.5)][:12]
        ids = [s.scenario_id for s in specs]
        fault_seed = next(
            seed for seed in range(500)
            if 1 <= len(
                FaultPlan.from_seed(seed, kill=0.25).victims("kill", ids)
            ) <= 3
        )
        clean_store, clean_summary, _ = _solo_run(
            tmp_path, "clean", specs, "batched"
        )
        ledger = tmp_path / "faults.ledger"
        with daemon(
            tmp_path, jobs=2,
            extra_args=(
                "--faults", f"seed={fault_seed},kill=0.25,ledger={ledger}",
            ),
        ) as d:
            served_store = tmp_path / "faulted.jsonl"
            job = _submit_specs(
                d.client, specs, served_store, "batched", max_retries=2
            )
            final = d.client.wait(job["id"], timeout=150)
            assert final["state"] == "done", final
            served_summary = d.client.results_text(job["id"])
        # The fault actually fired (once-only ledger is non-empty) …
        assert ledger.exists() and ledger.read_text().strip()
        # … and the served campaign still reconverged to clean bytes.
        assert _journal_lines(served_store) == _journal_lines(clean_store)
        assert served_summary == clean_summary.read_text(encoding="utf-8")

    def test_sigterm_mid_campaign_is_resumable_by_resubmit(self, tmp_path):
        """SIGTERM mid-campaign exits 0 with a loadable journal; a later
        submit of the same grid resumes by hash and completes."""
        grid = {"axes": {"n": [16], "k": [2], "seed": list(range(240)),
                         "noise": [0.1]}}
        specs = ScenarioGrid.from_dict(grid).expand()
        store = tmp_path / "interrupted.jsonl"
        with daemon(tmp_path, jobs=2) as d:
            job = d.client.submit({
                "grid": grid, "store": str(store), "backend": "reference",
            })
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store.exists() and store.stat().st_size > 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("campaign journaled nothing within 60s")
            doc = d.client.job(job["id"])
            assert doc["state"] in ("queued", "running", "done")
            rc = d.stop()
        assert rc == 0, d.stderr
        assert "interrupt" in (d.stderr or "")
        # Journal survived and parses cleanly.
        loaded = ResultStore(str(store)).load()
        assert 1 <= len(loaded)
        done_before = len(loaded)
        if done_before == len(specs):  # pragma: no cover — lost the race
            pytest.skip("campaign finished before SIGTERM landed")
        # A fresh daemon resumes the same grid by hash.
        with daemon(tmp_path / "second", jobs=2) as d2:
            job2 = d2.client.submit({
                "grid": grid, "store": str(store), "backend": "batched",
            })
            final = d2.client.wait(job2["id"], timeout=150)
            assert final["state"] == "done", final
            assert final["report"]["skipped"] >= done_before
            assert final["status"]["state"] == "ok"
            assert final["status"]["total"] == len(specs)


class TestConnectExitCodes:
    """`campaign status/report --connect URL` translate daemon states to
    the existing 0/1/2 exit-code contract (the satellite small fix)."""

    def _cli(self, *argv: str, env_extra: dict | None = None):
        return subprocess.run(
            [sys.executable, "-m", "repro", "campaign", *argv],
            env=repro_env(env_extra),
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_status_and_report_translate_daemon_states(self, tmp_path):
        store = tmp_path / "served.jsonl"
        with daemon(tmp_path) as d:
            job = d.client.submit({
                "grid": {"axes": {"n": [5], "k": [1], "seed": [0, 1],
                                  "noise": [0.0]}},
                "store": str(store),
            })
            final = d.client.wait(job["id"], timeout=60)
            assert final["state"] == "done"

            status = self._cli(
                "status", "--connect", d.url, "--store", str(store)
            )
            assert status.returncode == 0, status.stderr
            assert "state: ok" in status.stdout

            report = self._cli(
                "report", "--connect", d.url, "--store", str(store)
            )
            assert report.returncode == 0, report.stderr
            assert "campaign report" in report.stdout

            # A store the daemon never saw falls back to local
            # reconciliation (default grid vs empty store → incomplete).
            unknown = self._cli(
                "status", "--connect", d.url,
                "--store", str(tmp_path / "never-submitted.jsonl"),
            )
            assert unknown.returncode == 1
            assert "reconciling locally" in unknown.stderr
            assert "incomplete" in unknown.stdout

    def test_run_connect_submits_and_falls_back(self, tmp_path):
        store = tmp_path / "via-cli.jsonl"
        with daemon(tmp_path) as d:
            run = self._cli(
                "run", "--connect", d.url, "--store", str(store),
                "-n", "5", "-k", "1", "--seeds", "2", "--noise", "0.0",
                "--no-progress",
            )
            assert run.returncode == 0, run.stderr
            assert "submitted campaign" in run.stderr
            assert "state: ok" in run.stdout
            assert store.exists()
        # Unreachable daemon: transparent in-process fallback, same
        # exit-code contract.
        fallback = self._cli(
            "run", "--connect", "http://127.0.0.1:9",
            "--store", str(tmp_path / "fallback.jsonl"),
            "-n", "5", "-k", "1", "--seeds", "1", "--noise", "0.0",
            "--no-progress",
        )
        assert fallback.returncode == 0, fallback.stderr
        assert "running in-process" in fallback.stderr
        assert "state: ok" in fallback.stdout


class TestHarness:
    def test_harness_tears_down_on_test_failure(self, tmp_path):
        """The context manager guarantees teardown even when the test
        body raises — a failing assertion can't leak a daemon."""
        leaked = None
        with pytest.raises(RuntimeError, match="boom"):
            with daemon(tmp_path) as d:
                leaked = d.proc
                assert d.client.health()["ok"]
                raise RuntimeError("boom")
        assert leaked is not None
        assert leaked.poll() is not None  # subprocess is gone
        assert leaked.returncode == 0  # and it exited cleanly (SIGTERM)

    def test_env_override_reaches_daemon(self, tmp_path):
        """REPRO-style env plumbing: env_extra lands in the daemon
        process (used by the fault drills)."""
        with daemon(
            tmp_path, env_extra={"COLUMNS": "123"}
        ) as d:
            assert d.client.health()["ok"]


@pytest.mark.daemon
class TestPoolAndRemoteMetrics:
    """/metrics exposes a top-level pool/worker section: local pool
    size and generation, plus remote-fleet endpoint liveness."""

    def test_metrics_has_pool_section(self, tmp_path):
        with daemon(tmp_path, jobs=2, slots=2) as d:
            doc = d.client.metrics()
            assert doc["pool"] == {
                "workers": 2, "generation": 0, "slots": 2,
            }
            assert "remote" not in doc  # no fleet configured

    def test_remote_section_probes_configured_fleet(self, tmp_path):
        # Port 1 is never listening: the probe must report the endpoint
        # as configured-but-dead rather than omitting or hanging.
        with daemon(
            tmp_path, extra_args=("--workers", "127.0.0.1:1")
        ) as d:
            doc = d.client.metrics()
            (probe,) = doc["remote"]["endpoints"]
            assert probe["endpoint"] == "127.0.0.1:1"
            assert probe["alive"] is False

    def test_in_process_remote_section_merges_job_fleets(self):
        from repro.engine.service import CampaignService

        service = CampaignService(jobs=1, workers=["127.0.0.1:1"])
        doc = service.metrics_document()
        assert doc["pool"]["workers"] == 1
        endpoints = [e["endpoint"] for e in doc["remote"]["endpoints"]]
        assert endpoints == ["127.0.0.1:1"]
        # Accept endpoints cannot be dial-probed: liveness is None.
        service.workers = ["listen:127.0.0.1:9999"]
        probe = service.metrics_document()["remote"]["endpoints"][0]
        assert probe["alive"] is None
