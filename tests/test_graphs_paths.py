"""Unit and property tests for repro.graphs.paths."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import directed_cycle, gnp_random
from repro.graphs.paths import (
    ancestors,
    descendants,
    eccentricity,
    has_path,
    is_path,
    longest_simple_path_upper_bound,
    reaches,
    shortest_path,
    shortest_path_lengths,
)
from tests.conftest import to_networkx


class TestReachability:
    def test_descendants_includes_source(self):
        g = DiGraph(nodes=[0])
        assert descendants(g, 0) == frozenset({0})

    def test_descendants_chain(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        assert descendants(g, 0) == frozenset({0, 1, 2})
        assert descendants(g, 2) == frozenset({2})

    def test_ancestors_chain(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        assert ancestors(g, 2) == frozenset({0, 1, 2})
        assert ancestors(g, 0) == frozenset({0})

    def test_reaches_is_ancestors(self, diamond):
        assert reaches(diamond, 3) == ancestors(diamond, 3)

    def test_missing_node_raises(self):
        with pytest.raises(KeyError):
            descendants(DiGraph(), 0)
        with pytest.raises(KeyError):
            ancestors(DiGraph(), 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_against_networkx(self, seed):
        rng = np.random.default_rng(seed)
        g = gnp_random(20, 0.1, rng)
        nxg = to_networkx(g)
        for node in [0, 5, 19]:
            assert descendants(g, node) == nx.descendants(nxg, node) | {node}
            assert ancestors(g, node) == nx.ancestors(nxg, node) | {node}


class TestHasPath:
    def test_trivial_self_path(self):
        g = DiGraph(nodes=[0])
        assert has_path(g, 0, 0)

    def test_direct_edge(self):
        g = DiGraph(edges=[(0, 1)])
        assert has_path(g, 0, 1)
        assert not has_path(g, 1, 0)

    def test_missing_nodes_false(self):
        assert not has_path(DiGraph(nodes=[0]), 0, 9)
        assert not has_path(DiGraph(nodes=[0]), 9, 0)

    def test_through_cycle(self):
        g = directed_cycle(5)
        assert has_path(g, 0, 3)
        assert has_path(g, 3, 0)


class TestShortestPath:
    def test_self(self):
        g = DiGraph(nodes=[7])
        assert shortest_path(g, 7, 7) == [7]

    def test_none_when_unreachable(self):
        g = DiGraph(edges=[(0, 1)])
        assert shortest_path(g, 1, 0) is None

    def test_min_hop(self):
        # Two routes 0->3: direct and via 1,2 — BFS must take the direct one.
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 3), (0, 3)])
        assert shortest_path(g, 0, 3) == [0, 3]

    def test_path_is_valid(self, rng):
        g = gnp_random(15, 0.15, rng)
        for target in range(15):
            path = shortest_path(g, 0, target)
            if path is not None:
                assert is_path(g, path) or path == [0]

    def test_lengths_match_networkx(self, rng):
        g = gnp_random(18, 0.12, rng)
        ours = shortest_path_lengths(g, 0)
        theirs = nx.single_source_shortest_path_length(to_networkx(g), 0)
        assert ours == dict(theirs)

    def test_lengths_missing_node(self):
        with pytest.raises(KeyError):
            shortest_path_lengths(DiGraph(), 3)


class TestMisc:
    def test_eccentricity_cycle(self):
        g = directed_cycle(6)
        assert eccentricity(g, 0) == 5

    def test_longest_path_bound(self):
        assert longest_simple_path_upper_bound(DiGraph(nodes=range(6))) == 5
        assert longest_simple_path_upper_bound(DiGraph()) == 0

    def test_is_path_accepts_valid(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        assert is_path(g, [0, 1, 2])

    def test_is_path_rejects_repeats(self):
        g = DiGraph(edges=[(0, 1), (1, 0)])
        assert not is_path(g, [0, 1, 0])

    def test_is_path_rejects_missing_edge(self):
        g = DiGraph(edges=[(0, 1)])
        assert not is_path(g, [1, 0])

    def test_is_path_rejects_empty(self):
        assert not is_path(DiGraph(), [])

    def test_is_path_single_node(self):
        assert is_path(DiGraph(nodes=[0]), [0])


@st.composite
def graph_and_two_nodes(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    g = DiGraph(nodes=range(n), edges=edges)
    a = draw(st.integers(min_value=0, max_value=n - 1))
    b = draw(st.integers(min_value=0, max_value=n - 1))
    return g, a, b


class TestPathProperties:
    @given(graph_and_two_nodes())
    @settings(max_examples=150, deadline=None)
    def test_has_path_iff_shortest_path(self, data):
        g, a, b = data
        assert has_path(g, a, b) == (shortest_path(g, a, b) is not None)

    @given(graph_and_two_nodes())
    @settings(max_examples=150, deadline=None)
    def test_descendants_ancestors_duality(self, data):
        g, a, b = data
        assert (b in descendants(g, a)) == (a in ancestors(g, b))

    @given(graph_and_two_nodes())
    @settings(max_examples=100, deadline=None)
    def test_shortest_path_length_consistency(self, data):
        g, a, b = data
        path = shortest_path(g, a, b)
        if path is not None:
            lengths = shortest_path_lengths(g, a)
            assert lengths[b] == len(path) - 1
