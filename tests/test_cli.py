"""CLI tests (argument parsing and end-to-end subcommand runs)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 9 and args.k == 3 and args.groups == 3

    def test_topology_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "torus"])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "(a) G^∩2" in out
        assert "(h) G^6_p6" in out

    def test_run_success(self, capsys):
        code = main(["run", "-n", "6", "-k", "2", "--groups", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "k-agreement" in out
        assert "root components" in out

    def test_run_star_topology(self, capsys):
        assert main(["run", "-n", "6", "-k", "2", "--groups", "2",
                     "--topology", "star"]) == 0

    def test_theorem2(self, capsys):
        assert main(["theorem2", "-n", "6", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "confirms Theorem 2" in out
        assert "yes" in out

    def test_check_holds(self, capsys):
        assert main(["check", "-n", "9", "-k", "3", "--groups", "3"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "tightest k" in out

    def test_check_violated(self, capsys):
        # 4 groups cannot satisfy Psrcs(2) when built as 4 root components
        code = main(["check", "-n", "8", "-k", "2", "--groups", "4"])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(["sweep", "-n", "6", "-k", "2", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "within their k bound" in out

    def test_ablation(self, capsys):
        code = main(["ablation", "-n", "6", "-k", "2", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper (window=n, prune, PT-min)" in out
        assert "no pruning" in out

    def test_duality(self, capsys):
        code = main(["duality", "-n", "6", "--density", "0.2", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm1 violations" in out

    def test_eventual(self, capsys):
        code = main(["eventual", "-n", "6", "--bad-rounds", "0", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bad_prefix_rounds" in out

    def test_family_subcommands_take_engine_flags(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        code = main(["sweep", "-n", "5", "-k", "2", "--seeds", "1",
                     "--jobs", "2", "--store", store])
        assert code == 0
        assert "within their k bound" in capsys.readouterr().out
        # Resume: the journaled records satisfy the second invocation.
        assert main(["sweep", "-n", "5", "-k", "2", "--seeds", "1",
                     "--store", store]) == 0

    def test_family_backend_rejected_for_custom_runner(self, capsys):
        code = main(["ablation", "-n", "5", "-k", "2", "--seeds", "1",
                     "--backend", "vectorized"])
        assert code == 2
        assert "does not support backend" in capsys.readouterr().out


class TestCampaignCommands:
    GRID = ["-n", "5", "6", "-k", "2", "--seeds", "2", "--noise", "0.1"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_status_report(self, capsys, tmp_path):
        store = str(tmp_path / "journal.jsonl")
        summary = str(tmp_path / "summary.jsonl")
        code = main(
            ["campaign", "run", "--store", store, "--jobs", "2",
             "--summary", summary] + self.GRID
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executed now" in out
        assert "canonical summary" in out

        # Second run resumes: nothing left to execute.
        assert main(["campaign", "run", "--store", store] + self.GRID) == 0
        out = capsys.readouterr().out
        assert "already complete (skipped)  8" in out

        assert main(["campaign", "status", "--store", store] + self.GRID) == 0
        out = capsys.readouterr().out
        assert "complete              yes" in out

        code = main(
            ["campaign", "report", "--store", store, "--limit", "3"]
            + self.GRID
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Psrcs(k)" in out
        assert "0 violated their k bound" in out

    def test_status_on_empty_store_fails(self, capsys, tmp_path):
        store = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "status", "--store", store] + self.GRID) == 1
        assert "missing               8" in capsys.readouterr().out

    def test_report_on_partial_store_fails(self, capsys, tmp_path):
        # A half-executed grid must not report green even when every
        # stored scenario is clean.
        store = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "run", "--store", store] + self.GRID) == 0
        capsys.readouterr()
        bigger = ["-n", "5", "6", "-k", "2", "--seeds", "3",
                  "--noise", "0.1"]
        assert main(
            ["campaign", "report", "--store", store] + bigger
        ) == 1
        assert "/12 scenarios stored" in capsys.readouterr().out

    def test_status_on_error_records_fails(self, capsys, tmp_path):
        # Errors are terminal (resume won't retry), so a fully journaled
        # but failed campaign must not exit green — mirrors `run`.
        from repro.engine import ResultStore, agreement_grid
        from repro.engine.executor import ScenarioResult

        store = ResultStore(tmp_path / "journal.jsonl")
        grid = agreement_grid(
            ns=[5, 6], ks=[2], seeds=range(2), noises=[0.1]
        )
        for spec in grid.expand():
            store.append(ScenarioResult.failure(spec, "boom"))
        path = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "status", "--store", path] + self.GRID) == 1
        out = capsys.readouterr().out
        assert "errors                8" in out
        assert "complete              yes" in out

    def test_grid_json_override(self, capsys, tmp_path):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text('{"axes": {"n": [5], "seed": [0, 1]}}')
        store = str(tmp_path / "journal.jsonl")
        code = main(
            ["campaign", "run", "--store", store,
             "--grid-json", str(grid_file)]
        )
        assert code == 0
        assert "scenarios in grid           2" in capsys.readouterr().out

    def test_empty_grid_is_nothing_to_do_not_green(self, capsys, tmp_path):
        # -k 7 -n 5 prunes every scenario (k < n constraint): the store
        # is empty but consistent — that must exit 2 ("nothing to do"),
        # distinguishable from both success (0) and a half-executed
        # grid (1).
        store = str(tmp_path / "journal.jsonl")
        empty = ["-n", "5", "-k", "7", "--seeds", "1"]
        assert main(["campaign", "status", "--store", store] + empty) == 2
        assert "nothing-to-do" in capsys.readouterr().out
        assert main(["campaign", "report", "--store", store] + empty) == 2
        assert "nothing-to-do" in capsys.readouterr().out

    def test_report_says_half_executed(self, capsys, tmp_path):
        store = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "run", "--store", store] + self.GRID) == 0
        capsys.readouterr()
        bigger = ["-n", "5", "6", "-k", "2", "--seeds", "3",
                  "--noise", "0.1"]
        assert main(["campaign", "report", "--store", store] + bigger) == 1
        out = capsys.readouterr().out
        assert "half-executed grid" in out


class TestCampaignFamilies:
    def test_run_and_report_family(self, capsys, tmp_path):
        store = str(tmp_path / "duality.jsonl")
        code = main(
            ["campaign", "run", "--store", store, "--family", "duality",
             "-n", "6", "--density", "0.2", "--seeds", "2", "--jobs", "2"]
        )
        assert code == 0
        assert "state: ok" in capsys.readouterr().out

        code = main(
            ["campaign", "report", "--store", store, "--family", "duality",
             "-n", "6", "--density", "0.2", "--seeds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "family duality" in out

    def test_report_aggregate_family(self, capsys, tmp_path):
        store = str(tmp_path / "duality.jsonl")
        args = ["--store", store, "--family", "duality",
                "-n", "6", "--density", "0.2", "--seeds", "2"]
        assert main(["campaign", "run"] + args) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--aggregate"] + args) == 0
        out = capsys.readouterr().out
        assert "mean rc" in out and "Thm1 violations" in out

    def test_report_aggregate_generic_percentiles(self, capsys, tmp_path):
        # Without a family aggregator the store-native latency rollup is
        # printed — the same percentile table distributions.py builds.
        store = str(tmp_path / "journal.jsonl")
        grid = ["-n", "6", "-k", "2", "--seeds", "3", "--noise", "0.1"]
        assert main(["campaign", "run", "--store", store] + grid) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "report", "--aggregate", "--store", store] + grid
        ) == 0
        out = capsys.readouterr().out
        assert "p50_decide" in out and "bound_viol" in out

    def test_unknown_family_exits_2(self, capsys, tmp_path):
        code = main(
            ["campaign", "run", "--store", str(tmp_path / "j.jsonl"),
             "--family", "bogus"]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "unknown experiment family" in out
        assert not out.startswith('"')  # no KeyError repr-quoting

    def test_aggregate_on_undecided_store_is_red_not_a_crash(
        self, capsys, tmp_path
    ):
        # max_rounds=2 cuts every run before any decision: the latency
        # rollup has nothing to summarize, which must exit 1 with a
        # message, not traceback.
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(
            '{"axes": {"n": [6], "seed": [0, 1], "max_rounds": [2]}}'
        )
        store = str(tmp_path / "journal.jsonl")
        flags = ["--store", store, "--grid-json", str(grid_file)]
        assert main(["campaign", "run"] + flags) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--aggregate"] + flags) == 1
        assert "cannot aggregate" in capsys.readouterr().out

    def test_family_figure1_through_campaign(self, capsys, tmp_path):
        store = str(tmp_path / "fig1.jsonl")
        assert main(
            ["campaign", "run", "--store", store, "--family", "figure1"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "report", "--store", store, "--family", "figure1"]
        ) == 0
        assert "confirms" in capsys.readouterr().out
