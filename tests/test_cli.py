"""CLI tests (argument parsing and end-to-end subcommand runs)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 9 and args.k == 3 and args.groups == 3

    def test_topology_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "torus"])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "(a) G^∩2" in out
        assert "(h) G^6_p6" in out

    def test_run_success(self, capsys):
        code = main(["run", "-n", "6", "-k", "2", "--groups", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "k-agreement" in out
        assert "root components" in out

    def test_run_star_topology(self, capsys):
        assert main(["run", "-n", "6", "-k", "2", "--groups", "2",
                     "--topology", "star"]) == 0

    def test_theorem2(self, capsys):
        assert main(["theorem2", "-n", "6", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "confirms Theorem 2" in out
        assert "yes" in out

    def test_check_holds(self, capsys):
        assert main(["check", "-n", "9", "-k", "3", "--groups", "3"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "tightest k" in out

    def test_check_violated(self, capsys):
        # 4 groups cannot satisfy Psrcs(2) when built as 4 root components
        code = main(["check", "-n", "8", "-k", "2", "--groups", "4"])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(["sweep", "-n", "6", "-k", "2", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "within their k bound" in out

    def test_ablation(self, capsys):
        code = main(["ablation", "-n", "6", "-k", "2", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper (window=n, prune, PT-min)" in out
        assert "no pruning" in out

    def test_duality(self, capsys):
        code = main(["duality", "-n", "6", "--density", "0.2", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm1 violations" in out


class TestCampaignCommands:
    GRID = ["-n", "5", "6", "-k", "2", "--seeds", "2", "--noise", "0.1"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_status_report(self, capsys, tmp_path):
        store = str(tmp_path / "journal.jsonl")
        summary = str(tmp_path / "summary.jsonl")
        code = main(
            ["campaign", "run", "--store", store, "--jobs", "2",
             "--summary", summary] + self.GRID
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executed now" in out
        assert "canonical summary" in out

        # Second run resumes: nothing left to execute.
        assert main(["campaign", "run", "--store", store] + self.GRID) == 0
        out = capsys.readouterr().out
        assert "already complete (skipped)  8" in out

        assert main(["campaign", "status", "--store", store] + self.GRID) == 0
        out = capsys.readouterr().out
        assert "complete              yes" in out

        code = main(
            ["campaign", "report", "--store", store, "--limit", "3"]
            + self.GRID
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Psrcs(k)" in out
        assert "0 violated their k bound" in out

    def test_status_on_empty_store_fails(self, capsys, tmp_path):
        store = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "status", "--store", store] + self.GRID) == 1
        assert "missing               8" in capsys.readouterr().out

    def test_report_on_partial_store_fails(self, capsys, tmp_path):
        # A half-executed grid must not report green even when every
        # stored scenario is clean.
        store = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "run", "--store", store] + self.GRID) == 0
        capsys.readouterr()
        bigger = ["-n", "5", "6", "-k", "2", "--seeds", "3",
                  "--noise", "0.1"]
        assert main(
            ["campaign", "report", "--store", store] + bigger
        ) == 1
        assert "/12 scenarios stored" in capsys.readouterr().out

    def test_status_on_error_records_fails(self, capsys, tmp_path):
        # Errors are terminal (resume won't retry), so a fully journaled
        # but failed campaign must not exit green — mirrors `run`.
        from repro.engine import ResultStore, agreement_grid
        from repro.engine.executor import ScenarioResult

        store = ResultStore(tmp_path / "journal.jsonl")
        grid = agreement_grid(
            ns=[5, 6], ks=[2], seeds=range(2), noises=[0.1]
        )
        for spec in grid.expand():
            store.append(ScenarioResult.failure(spec, "boom"))
        path = str(tmp_path / "journal.jsonl")
        assert main(["campaign", "status", "--store", path] + self.GRID) == 1
        out = capsys.readouterr().out
        assert "errors                8" in out
        assert "complete              yes" in out

    def test_grid_json_override(self, capsys, tmp_path):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text('{"axes": {"n": [5], "seed": [0, 1]}}')
        store = str(tmp_path / "journal.jsonl")
        code = main(
            ["campaign", "run", "--store", store,
             "--grid-json", str(grid_file)]
        )
        assert code == 0
        assert "scenarios in grid           2" in capsys.readouterr().out
