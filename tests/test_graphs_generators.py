"""Tests for graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    bidirectional_chain,
    complete_graph,
    directed_cycle,
    empty_graph,
    from_adjacency,
    gnp_random,
    in_star,
    layered_dag,
    out_star,
    random_strongly_connected,
    random_tournament,
    to_adjacency,
    union_of_cliques,
)
from repro.graphs.scc import is_strongly_connected


class TestDeterministic:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 0

    def test_empty_graph_self_loops(self):
        g = empty_graph(4, self_loops=True)
        assert g.number_of_edges() == 4
        assert all(g.has_edge(i, i) for i in range(4))

    def test_complete(self):
        g = complete_graph(5, self_loops=False)
        assert g.number_of_edges() == 20

    def test_cycle_strongly_connected(self):
        assert is_strongly_connected(directed_cycle(7))

    def test_cycle_edges(self):
        g = directed_cycle(3)
        assert g.edges() == frozenset({(0, 1), (1, 2), (2, 0)})

    def test_bidirectional_chain(self):
        g = bidirectional_chain(4)
        assert is_strongly_connected(g)
        assert g.number_of_edges() == 6

    def test_in_star(self):
        g = in_star(4, center=2)
        assert g.predecessors(2) == frozenset({0, 1, 3})
        assert g.out_degree(2) == 0

    def test_out_star(self):
        g = out_star(4, center=1)
        assert g.successors(1) == frozenset({0, 2, 3})
        assert g.in_degree(1) == 0

    def test_union_of_cliques(self):
        g = union_of_cliques([[0, 1], [2, 3, 4]], self_loops=False)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert g.number_of_edges() == 2 + 6


class TestRandom:
    def test_gnp_bounds(self):
        rng = np.random.default_rng(0)
        g = gnp_random(10, 0.0, rng, self_loops=False)
        assert g.number_of_edges() == 0
        g = gnp_random(10, 1.0, rng, self_loops=True)
        assert g.number_of_edges() == 100

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            gnp_random(5, 1.5, np.random.default_rng(0))

    def test_gnp_reproducible(self):
        g1 = gnp_random(15, 0.3, np.random.default_rng(42))
        g2 = gnp_random(15, 0.3, np.random.default_rng(42))
        assert g1 == g2

    def test_gnp_self_loop_flag(self):
        rng = np.random.default_rng(1)
        g = gnp_random(8, 0.5, rng, self_loops=True)
        assert all(g.has_edge(i, i) for i in range(8))

    def test_gnp_density_plausible(self):
        rng = np.random.default_rng(7)
        g = gnp_random(40, 0.25, rng, self_loops=False)
        expected = 0.25 * 40 * 39
        assert 0.6 * expected < g.number_of_edges() < 1.4 * expected

    def test_tournament(self):
        rng = np.random.default_rng(3)
        g = random_tournament(8, rng)
        for u in range(8):
            for v in range(u + 1, 8):
                assert g.has_edge(u, v) != g.has_edge(v, u)

    def test_tournament_seeded_stream_regression(self):
        # Pins the vectorized implementation's deterministic output: one
        # batched Bernoulli draw in row-major upper-triangular pair order,
        # which consumes the generator stream exactly like the historical
        # per-pair loop (``Generator.random(k)`` draws the same doubles as
        # ``k`` scalar ``random()`` calls).
        g = random_tournament(5, np.random.default_rng(42))
        assert sorted(g.iter_edges()) == [
            (0, 2),
            (1, 0),
            (1, 2),
            (2, 4),
            (3, 0),
            (3, 1),
            (3, 2),
            (3, 4),
            (4, 0),
            (4, 1),
        ]

    def test_tournament_matches_scalar_stream(self):
        # The batched draw must consume the RNG identically to per-pair
        # scalar draws (same seeded edge sets as the pre-vectorization
        # implementation).
        for seed in range(5):
            expected = np.random.default_rng(seed)
            got = random_tournament(7, np.random.default_rng(seed))
            for u in range(7):
                for v in range(u + 1, 7):
                    if expected.random() < 0.5:
                        assert got.has_edge(u, v) and not got.has_edge(v, u)
                    else:
                        assert got.has_edge(v, u) and not got.has_edge(u, v)

    def test_tournament_trivial_sizes(self):
        assert random_tournament(0, np.random.default_rng(0)).number_of_edges() == 0
        g1 = random_tournament(1, np.random.default_rng(0))
        assert g1.number_of_nodes() == 1 and g1.number_of_edges() == 0

    def test_random_strongly_connected(self):
        for seed in range(5):
            g = random_strongly_connected(12, 0.05, np.random.default_rng(seed))
            assert is_strongly_connected(g)

    def test_layered_dag(self):
        rng = np.random.default_rng(5)
        g = layered_dag([3, 4, 2], rng)
        assert g.number_of_nodes() == 9
        # every non-first-layer node has a parent
        for v in range(3, 9):
            assert g.in_degree(v) >= 1
        # no intra-layer or backward edges
        for u, v in g.iter_edges():
            layer_u = 0 if u < 3 else (1 if u < 7 else 2)
            layer_v = 0 if v < 3 else (1 if v < 7 else 2)
            assert layer_v == layer_u + 1


class TestAdjacency:
    def test_roundtrip(self):
        rng = np.random.default_rng(9)
        g = gnp_random(12, 0.3, rng)
        assert from_adjacency(to_adjacency(g)) == g

    def test_from_adjacency_validates_shape(self):
        with pytest.raises(ValueError):
            from_adjacency(np.zeros((2, 3)))

    def test_to_adjacency_explicit_n(self):
        g = DiGraph(edges=[(0, 1)])
        arr = to_adjacency(g, n=4)
        assert arr.shape == (4, 4)
        assert arr[0, 1] and arr.sum() == 1

    def test_to_adjacency_empty(self):
        assert to_adjacency(DiGraph()).shape == (0, 0)
