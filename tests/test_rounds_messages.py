"""Tests for round messages."""

from __future__ import annotations

import pytest

from repro.graphs.labeled import RoundLabeledDigraph
from repro.rounds.messages import Message, _jsonable


class TestMessage:
    def test_immutability(self):
        msg = Message(sender=0, round_no=1)
        with pytest.raises(AttributeError):
            msg.sender = 5

    def test_defaults(self):
        msg = Message(sender=2, round_no=3)
        assert msg.kind == "prop"
        assert msg.payload is None

    def test_bit_size_positive(self):
        assert Message(sender=0, round_no=1).bit_size() > 0

    def test_bit_size_grows_with_payload(self):
        small = Message(sender=0, round_no=1, payload={"x": 1})
        big = Message(sender=0, round_no=1, payload={"x": list(range(100))})
        assert big.bit_size() > small.bit_size()

    def test_bit_size_multiple_of_8(self):
        msg = Message(sender=0, round_no=1, payload="hello")
        assert msg.bit_size() % 8 == 0

    def test_bit_size_handles_graph_payload(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 3)])
        msg = Message(sender=0, round_no=1, payload={"graph": g})
        assert msg.bit_size() > 0

    def test_equality(self):
        a = Message(sender=0, round_no=1, payload={"x": 1})
        b = Message(sender=0, round_no=1, payload={"x": 1})
        assert a == b


class TestJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert _jsonable(value) == value

    def test_sets_sorted(self):
        assert _jsonable({3, 1, 2}) == [1, 2, 3]

    def test_nested(self):
        assert _jsonable({"a": (1, 2), "b": frozenset({5})}) == {
            "a": [1, 2],
            "b": [5],
        }

    def test_to_dict_objects(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 2)])
        out = _jsonable(g)
        assert out == g.to_dict()

    def test_fallback_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert _jsonable(Opaque()) == "<opaque>"
