"""Baseline algorithm tests: FloodMin, flooding consensus, LocalMin."""

from __future__ import annotations

import pytest

from repro.adversaries.crash import CrashAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.adversaries.static import StaticAdversary
from repro.analysis.properties import check_agreement_properties
from repro.baselines.floodmin import FloodMinProcess, make_floodmin_processes
from repro.baselines.flooding import make_flooding_processes
from repro.baselines.local_min import make_local_min_processes
from repro.graphs.digraph import DiGraph
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def simulate(procs, adversary, max_rounds=30):
    return RoundSimulator(
        procs, adversary, SimulationConfig(max_rounds=max_rounds)
    ).run()


class TestFloodMin:
    def test_validation(self):
        with pytest.raises(ValueError):
            FloodMinProcess(0, 3, 0, f=1, k=0)
        with pytest.raises(ValueError):
            FloodMinProcess(0, 3, 0, f=-1, k=1)
        with pytest.raises(ValueError):
            make_floodmin_processes(3, 1, 1, values=[1])

    def test_decision_round(self):
        # FloodMin decides at round floor(f/k) + 1.
        p = FloodMinProcess(0, 5, 0, f=7, k=2)
        assert p.decision_round == 4

    def test_no_faults_decides_min_in_one_round(self):
        n = 5
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        procs = make_floodmin_processes(n, f=0, k=1, values=[4, 2, 9, 7, 5])
        run = simulate(procs, adv)
        assert run.decision_values() == {2}
        assert all(d.round_no == 1 for d in run.decisions.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_k_agreement_under_crashes(self, seed):
        # the classic guarantee: <= f crashes → <= k values
        n, f, k = 7, 4, 2
        crash_rounds = {i + 1: (i % 3) + 1 for i in range(f)}
        adv = CrashAdversary(n, crash_rounds, seed=seed)
        procs = make_floodmin_processes(n, f=f, k=k)
        run = simulate(procs, adv)
        report = check_agreement_properties(run, k)
        assert report.all_hold, report.summary()

    def test_breaks_under_partitioning(self):
        # Under the Theorem-2 adversary FloodMin still "terminates" but the
        # loners decide their own values — with enough loners the count
        # exceeds what FloodMin was configured for.  This is the BASELINE
        # experiment's point: the crash model does not cover Psrcs systems.
        n, k = 8, 2
        adv = PartitionAdversary(n, 5)  # 4 loners
        procs = make_floodmin_processes(n, f=2, k=k)
        run = simulate(procs, adv)
        assert len(run.decision_values()) > k

    def test_validity_always(self):
        n = 6
        adv = CrashAdversary(n, {0: 1, 1: 2}, seed=1)
        procs = make_floodmin_processes(n, f=2, k=2)
        run = simulate(procs, adv)
        assert check_agreement_properties(run, 2).validity.holds


class TestFloodingConsensus:
    def test_consensus_under_crashes(self):
        n, f = 6, 3
        adv = CrashAdversary(n, {0: 1, 1: 2, 2: 3}, seed=2)
        procs = make_flooding_processes(n, f=f)
        run = simulate(procs, adv)
        report = check_agreement_properties(run, 1)
        assert report.all_hold, report.summary()

    def test_decides_global_min_without_faults(self):
        n = 4
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        procs = make_flooding_processes(n, f=1, values=[3, 0, 2, 1])
        run = simulate(procs, adv)
        assert run.decision_values() == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            make_flooding_processes(3, f=-1)
        with pytest.raises(ValueError):
            make_flooding_processes(3, f=1, values=[1, 2])

    def test_breaks_under_partitioning(self):
        adv = PartitionAdversary(6, 4)
        procs = make_flooding_processes(6, f=1)
        run = simulate(procs, adv)
        assert len(run.decision_values()) > 1  # consensus violated


class TestLocalMin:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_local_min_processes(3, horizon=0)
        with pytest.raises(ValueError):
            make_local_min_processes(3, horizon=2, values=[0])

    def test_decides_at_horizon(self):
        n = 4
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        procs = make_local_min_processes(n, horizon=2)
        run = simulate(procs, adv)
        assert all(d.round_no == 2 for d in run.decisions.values())

    def test_short_horizon_violates_agreement(self):
        # On a directed cycle the min needs n-1 rounds; a horizon of 1
        # leaves processes with different minima.
        from repro.graphs.generators import directed_cycle

        n = 6
        adv = StaticAdversary(n, directed_cycle(n))
        procs = make_local_min_processes(n, horizon=1)
        run = simulate(procs, adv)
        assert len(run.decision_values()) > 1

    def test_long_horizon_converges_in_one_component(self):
        adv = GroupedSourceAdversary(6, num_groups=1, topology="clique")
        procs = make_local_min_processes(6, horizon=10)
        run = simulate(procs, adv, max_rounds=15)
        assert run.decision_values() == {0}


class TestAsyncKSet:
    def test_validation(self):
        from repro.baselines.async_kset import (
            AsyncKSetProcess,
            make_async_kset_processes,
        )

        with pytest.raises(ValueError):
            AsyncKSetProcess(0, 3, 0, f=3)
        with pytest.raises(ValueError):
            AsyncKSetProcess(0, 3, 0, f=-1)
        with pytest.raises(ValueError):
            make_async_kset_processes(3, 1, values=[0])

    def test_no_faults_immediate_consensus(self):
        from repro.baselines.async_kset import make_async_kset_processes

        n = 5
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        procs = make_async_kset_processes(n, f=0, values=[4, 1, 3, 2, 0])
        run = simulate(procs, adv)
        assert run.decision_values() == {0}
        assert all(d.round_no == 1 for d in run.decisions.values())

    @pytest.mark.parametrize("seed", range(6))
    def test_k_agreement_under_crashes(self, seed):
        from repro.baselines.async_kset import make_async_kset_processes

        # f crashes, configured for f: at most f + 1 <= k values for k = f+1.
        n, f = 7, 2
        adv = CrashAdversary(n, {0: 1, 1: 1}, seed=seed)
        procs = make_async_kset_processes(n, f=f)
        run = simulate(procs, adv)
        report = check_agreement_properties(run, f + 1)
        assert report.all_hold, report.summary()

    def test_deadlocks_under_partitioning(self):
        from repro.baselines.async_kset import make_async_kset_processes

        # Psrcs(4) partition run: loners never hear n - f processes —
        # the liveness failure complementary to FloodMin's safety failure.
        n = 8
        adv = PartitionAdversary(n, 4)
        procs = make_async_kset_processes(n, f=2)
        run = simulate(procs, adv, max_rounds=40)
        assert not run.all_decided()
        assert set(run.undecided()) >= set(adv.loners)

    def test_collects_across_rounds(self):
        from repro.adversaries.mobile import MobileOmissionAdversary
        from repro.baselines.async_kset import make_async_kset_processes

        # Heavy per-round omissions: the f=0 quorum (all n proposals)
        # cannot arrive in round 1, but different senders get through in
        # different rounds, so the cumulative collection eventually fills.
        n = 5
        adv = MobileOmissionAdversary(n, per_round_omissions=10, seed=1)
        procs = make_async_kset_processes(n, f=0)
        run = simulate(procs, adv, max_rounds=30)
        assert run.all_decided()
        assert max(d.round_no for d in run.decisions.values()) > 1
        assert run.decision_values() == {0}
